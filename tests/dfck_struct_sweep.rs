//! Cross-crate integration tests for the structure-family exhaustive
//! crash-point sweeper (`bench::dfck_struct`): Treiber stack, linked-list
//! set and bucketed hash map, every variant, every crash point of the
//! canonical pair workloads (resize-crossing for the maps),
//! single and nested (crash-during-recovery) schedules, per-process *and*
//! full-system crash semantics, flush auditor armed — mirroring
//! `tests/dfck_sweep.rs` for the non-queue shapes.

use bench::dfck_struct::{sweep, sweep_plan, sweep_system, StructVariant, StructWorkload};
use capsules::BoundaryStyle;
use pmem::PMem;
use structs::{
    GeneralSet, GeneralStack, ListSet, NormalizedSet, NormalizedStack, StructHandle,
    TreiberStack,
};

fn pair_for(variant: StructVariant) -> StructWorkload {
    if variant.is_stack() {
        StructWorkload::stack_pair()
    } else if variant.is_map() {
        // The map's pair analogue additionally crosses a bucket-array resize
        // inside the swept window (tiny bucket array, sixth insert trips the
        // grow trigger), so these sweeps enumerate every crash point of the
        // freeze/copy/promote migration too.
        StructWorkload::map_resize()
    } else {
        StructWorkload::set_pair()
    }
}

#[test]
fn every_struct_variant_passes_the_pair_sweep_at_every_crash_point() {
    for variant in StructVariant::all() {
        let report = sweep(variant, &pair_for(variant), None);
        assert!(
            report.passed(),
            "{} pair sweep: {:?}",
            report.variant.label(),
            report.violations
        );
        // The range really was enumerated (count from Stats, not a constant).
        assert!(report.crash_points > 0);
        assert_eq!(report.replays, report.crash_points + 1);
        assert!(report.crashes_injected >= report.crash_points);
    }
}

#[test]
fn every_struct_variant_passes_the_nested_crash_during_recovery_sweep() {
    for variant in StructVariant::all() {
        let report = sweep(variant, &pair_for(variant), Some(0));
        assert!(
            report.passed(),
            "{} nested sweep: {:?}",
            report.variant.label(),
            report.violations
        );
        if variant.detectable() {
            assert!(
                report.recovery_crashes > 0,
                "{}: no nested crash landed inside recovery",
                report.variant.label()
            );
        }
    }
}

/// Full-system crash sweeps: every injected crash also rolls unflushed cache
/// lines back, so the sweep verifies the stack's and the set's flush
/// placement (node-before-publish, mark/link targets after) on top of the
/// recoverable-CAS layer's durable-announcement discipline. The armed flush
/// auditor's flags count as violations via `passed()`.
#[test]
fn system_crash_pair_sweep_passes_for_every_struct_variant() {
    for variant in StructVariant::all() {
        for nested in [None, Some(0)] {
            let report = sweep_system(variant, &pair_for(variant), nested);
            assert!(
                report.passed(),
                "{} system sweep (nested={nested:?}): {:?}",
                report.variant.label(),
                report.violations
            );
            assert!(report.crash_points > 0);
            assert_eq!(report.audit_flags, 0);
            if variant.detectable() && nested.is_some() {
                assert!(
                    report.recovery_crashes > 0,
                    "{}: no nested crash landed inside recovery",
                    report.variant.label()
                );
            }
        }
    }
}

/// Depth-2 nested schedules on the two detectable constructions of each
/// shape's hardest protocol: the set's two-CAS remove (General) and the
/// stack's simulator path (Normalized), under both crash flavours.
#[test]
fn depth2_nested_crash_schedules_pass_on_set_general_and_stack_normalized() {
    for (variant, workload) in [
        (StructVariant::SetGeneral, StructWorkload::set_pair()),
        (StructVariant::StackNormalized, StructWorkload::stack_pair()),
    ] {
        for system in [false, true] {
            let report = sweep_plan(variant, &workload, &[0, 0], system);
            assert!(
                report.passed(),
                "{} depth-2 sweep (system={system}): {:?}",
                report.variant.label(),
                report.violations
            );
            assert!(
                report.recovery_crashes > report.crash_points,
                "{} (system={system}): depth-2 schedules should interrupt recovery \
                 more than once per swept point ({} vs {})",
                report.variant.label(),
                report.recovery_crashes,
                report.crash_points
            );
        }
    }
}

/// Crash-free op-for-op equivalence across each shape's three constructions
/// (the structure-family mirror of `tests/queue_equivalence.rs`): identical
/// seeded scripts must yield identical returns and identical final drains on
/// the plain, General and Normalized implementations.
#[test]
fn all_three_constructions_of_each_shape_agree_op_for_op() {
    for shape_is_stack in [true, false] {
        let w = if shape_is_stack {
            StructWorkload::stack_seeded(11, 40)
        } else {
            StructWorkload::set_seeded(11, 40)
        };
        let run = |which: usize| -> (Vec<Option<u64>>, Vec<u64>) {
            let mem = PMem::with_threads(1);
            let t = mem.thread(0);
            let plain_stack;
            let general_stack;
            let normalized_stack;
            let plain_set;
            let general_set;
            let normalized_set;
            let mut h: Box<dyn StructHandle + '_> = match (shape_is_stack, which) {
                (true, 0) => {
                    plain_stack = TreiberStack::new(&t);
                    Box::new(plain_stack.handle(&t))
                }
                (true, 1) => {
                    general_stack = GeneralStack::new(&t, 1, true, BoundaryStyle::General);
                    Box::new(general_stack.handle(&t))
                }
                (true, _) => {
                    normalized_stack = NormalizedStack::new(&t, 1, true, false);
                    Box::new(normalized_stack.handle(&t))
                }
                (false, 0) => {
                    plain_set = ListSet::new(&t);
                    Box::new(plain_set.handle(&t))
                }
                (false, 1) => {
                    general_set = GeneralSet::new(&t, 1, true, BoundaryStyle::General);
                    Box::new(general_set.handle(&t))
                }
                (false, _) => {
                    normalized_set = NormalizedSet::new(&t, 1, true, false);
                    Box::new(normalized_set.handle(&t))
                }
            };
            for &v in &w.prefill {
                let _ = h.apply(if shape_is_stack {
                    structs::StructOp::Push(v)
                } else {
                    structs::StructOp::Insert(v)
                });
            }
            let rets: Vec<Option<u64>> = w.ops.iter().map(|&op| h.apply(op)).collect();
            let drained = h.drain_up_to(w.prefill.len() + w.ops.len() + 1);
            assert!(!drained.truncated);
            (rets, drained.items)
        };
        let reference = run(0);
        for which in 1..3 {
            assert_eq!(
                run(which),
                reference,
                "construction {which} diverges from plain (stack={shape_is_stack})"
            );
        }
    }
}

#[test]
fn seeded_multi_op_sweep_is_exact_for_detectable_struct_variants() {
    for variant in [
        StructVariant::StackGeneral,
        StructVariant::StackNormalized,
        StructVariant::SetGeneral,
        StructVariant::SetNormalized,
        StructVariant::MapGeneral,
        StructVariant::MapNormalized,
    ] {
        let workload = if variant.is_stack() {
            StructWorkload::stack_seeded(7, 6)
        } else {
            StructWorkload::set_seeded(7, 6)
        };
        let report = sweep(variant, &workload, None);
        assert!(
            report.passed(),
            "{} multi sweep: {:?}",
            report.variant.label(),
            report.violations
        );
    }
}
