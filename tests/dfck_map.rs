//! Cross-crate integration tests for the detectable hash map: the
//! three-construction equivalence check (plain / General / Normalized agree
//! op-for-op across resizes) and the interleaved (schedule × crash point)
//! sweeps that race scheduled pids against the resize trigger — including a
//! three-pid multi-victim row where two processes crash in the same replay.
//!
//! The single-threaded resize-window sweeps (single, nested, PPM, system)
//! run through `tests/dfck_struct_sweep.rs`, which picks the resize-crossing
//! pair workload for every map variant; this file adds the map-only checks.

use bench::dfck_struct::{
    sweep_interleaved, sweep_interleaved_multi, ConcStructWorkload, StructVariant, StructWorkload,
};
use capsules::BoundaryStyle;
use pmem::PMem;
use structs::{DetMap, GeneralDetMap, MapConfig, NormalizedDetMap, StructHandle};

/// Crash-free op-for-op equivalence across the map's three constructions, on
/// a seeded workload long enough that the tiny bucket array resizes several
/// times: identical returns and identical final drains, so the capsule and
/// simulator transformations provably preserve the bucketed protocol.
#[test]
fn all_three_map_constructions_agree_op_for_op_across_resizes() {
    let w = StructWorkload::set_seeded_full(13, 60, 6, 0);
    let run = |which: usize| -> (Vec<Option<u64>>, Vec<u64>) {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let plain;
        let general;
        let normalized;
        let mut h: Box<dyn StructHandle + '_> = match which {
            0 => {
                plain = DetMap::new(&t, MapConfig::tiny());
                Box::new(plain.handle(&t))
            }
            1 => {
                general = GeneralDetMap::new(&t, 1, MapConfig::tiny(), true, BoundaryStyle::General);
                Box::new(general.handle(&t))
            }
            _ => {
                normalized = NormalizedDetMap::new(&t, 1, MapConfig::tiny(), true, false);
                Box::new(normalized.handle(&t))
            }
        };
        for &k in &w.prefill {
            let _ = h.apply(structs::StructOp::Insert(k));
        }
        let rets: Vec<Option<u64>> = w.ops.iter().map(|&op| h.apply(op)).collect();
        let drained = h.drain_up_to(w.prefill.len() + w.ops.len() + 1);
        assert!(!drained.truncated);
        (rets, drained.items)
    };
    let reference = run(0);
    for which in 1..3 {
        assert_eq!(
            run(which),
            reference,
            "map construction {which} diverges from plain"
        );
    }
}

/// Interleaved sweeps for both detectable map constructions: two scheduled
/// pids race inserts (which trip the resize trigger on the tiny bucket
/// array) and removes while the victim crashes at every enumerated point,
/// under per-process and full-system semantics plus a nested schedule.
#[test]
fn interleaved_map_sweeps_pass_for_both_detectable_constructions() {
    let w = ConcStructWorkload::map_pair(2);
    let seeds = [1, 2];
    for variant in [StructVariant::MapGeneral, StructVariant::MapNormalized] {
        for (nested, system) in [(&[] as &[u64], false), (&[], true), (&[0u64][..], false)] {
            let report = sweep_interleaved(variant, &w, &seeds, nested, system);
            assert!(
                report.passed(),
                "{} interleaved (nested={nested:?} system={system}): {:?}",
                report.variant.label(),
                report.violations
            );
            assert!(report.crash_points > 0);
            assert!(report.crashes_injected > 0);
            assert_eq!(report.audit_flags, 0);
        }
    }
}

/// The widest row: three scheduled pids on the General map, every replay
/// crashing the victim *and* a co-victim, so one process's capsule recovery
/// races a peer that is itself mid-recovery over a half-migrated bucket
/// array.
#[test]
fn three_pid_multi_victim_interleaved_map_sweep_is_exact() {
    let w = ConcStructWorkload::map_pair(3);
    let report = sweep_interleaved_multi(StructVariant::MapGeneral, &w, &[1, 2], &[], 3, false);
    assert!(
        report.passed(),
        "Map-General 3-pid multi-victim: {:?}",
        report.violations
    );
    assert!(report.crash_points > 0);
    assert!(
        report.covictim_crashes > 0,
        "the co-victim schedule never fired"
    );
}
