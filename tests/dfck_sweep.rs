//! Cross-crate integration tests for the `dfck` exhaustive crash-point sweeper:
//! every queue variant, every crash point of an enqueue/dequeue pair, single and
//! nested (crash-during-recovery) schedules, checked against the exactly-once /
//! durable-linearizability oracle. The crash-point counts come from
//! [`pmem::Stats::crash_points`], so the sweeps automatically track any change to
//! the instruction footprint of the queues.

use bench::dfck::{sweep, sweep_plan, sweep_system, SweepVariant, Workload};
use capsules::{BoundaryStyle, CapsuleRuntime, CapsuleStep};
use pmem::{CrashPlan, PMem};
use queues::{Durability, GeneralQueue, NormalizedQueue, QueueHandle};

#[test]
fn every_variant_passes_the_pair_sweep_at_every_crash_point() {
    for variant in SweepVariant::all() {
        let report = sweep(variant, &Workload::pair(), None);
        assert!(
            report.passed(),
            "{} pair sweep: {:?}",
            report.variant.label(),
            report.violations
        );
        // The range really was enumerated (one injected crash per swept point),
        // and the count came from Stats, not a constant.
        assert!(report.crash_points > 0);
        assert_eq!(report.replays, report.crash_points + 1);
        assert!(report.crashes_injected >= report.crash_points);
    }
}

#[test]
fn every_variant_passes_the_nested_crash_during_recovery_sweep() {
    for variant in SweepVariant::all() {
        let report = sweep(variant, &Workload::pair(), Some(0));
        assert!(
            report.passed(),
            "{} nested sweep: {:?}",
            report.variant.label(),
            report.violations
        );
        if variant.detectable() {
            assert!(
                report.recovery_crashes > 0,
                "{}: no nested crash landed inside recovery",
                report.variant.label()
            );
        }
    }
}

/// Full-system crash sweeps (every injected crash also rolls unflushed cache
/// lines back) for **every** variant: since the recoverable-CAS layer adopted
/// the durable-announcement flush discipline (DESIGN.md §7), the capsule
/// variants pass alongside MSQ-Izraelevitz and LogQueue. Each replay also runs
/// with the flush-order auditor armed; `passed()` covers its flags too.
#[test]
fn system_crash_pair_sweep_passes_for_every_variant() {
    for variant in SweepVariant::all() {
        for nested in [None, Some(0)] {
            let report = sweep_system(variant, &Workload::pair(), nested);
            assert!(
                report.passed(),
                "{} system sweep (nested={nested:?}): {:?}",
                report.variant.label(),
                report.violations
            );
            assert!(report.crash_points > 0);
            assert_eq!(report.audit_flags, 0);
            if variant.detectable() && nested.is_some() {
                assert!(
                    report.recovery_crashes > 0,
                    "{}: no nested crash landed inside recovery",
                    report.variant.label()
                );
            }
        }
    }
}

/// Depth-2 nested schedules (`[k, m, n]`: crash at point `k`, again `m` points
/// into the triggered recovery, and a third time `n` points into the
/// recovery-of-recovery), smoke-tested on the two recovery disciplines the
/// issue names: the LogQueue's log-replay recovery and the Normalized
/// simulator's frame recovery — under per-process *and* full-system crashes.
#[test]
fn depth2_nested_crash_schedules_pass_on_log_queue_and_normalized() {
    for variant in [SweepVariant::LogQueue, SweepVariant::Normalized] {
        for system in [false, true] {
            let report = sweep_plan(variant, &Workload::pair(), &[0, 0], system);
            assert!(
                report.passed(),
                "{} depth-2 sweep (system={system}): {:?}",
                report.variant.label(),
                report.violations
            );
            // Three schedule elements per replay: the nested elements must
            // actually have interrupted recovery (recovery-of-recovery runs).
            assert!(
                report.recovery_crashes > report.crash_points,
                "{} (system={system}): depth-2 schedules should interrupt recovery \
                 more than once per swept point ({} vs {})",
                report.variant.label(),
                report.recovery_crashes,
                report.crash_points
            );
        }
    }
}

#[test]
fn seeded_multi_op_sweep_is_exact_for_detectable_variants() {
    let workload = Workload::seeded(7, 6);
    for variant in [SweepVariant::General, SweepVariant::Normalized, SweepVariant::LogQueue] {
        let report = sweep(variant, &workload, None);
        assert!(
            report.passed(),
            "{} multi sweep: {:?}",
            report.variant.label(),
            report.violations
        );
    }
}

/// Deterministic regression for the recovery-interrupted path of
/// `CapsuleRuntime::run_op` at the queue level, for both the CAS-Read (General)
/// and Normalized constructions: a scripted `CrashPlan` crashes inside an
/// enqueue and then again at the first instruction of the resulting recovery;
/// the operation must still be exactly-once and the nested crash must be
/// visible in `CapsuleMetrics::recovery_crashes`.
#[test]
fn nested_crash_during_recovery_is_invisible_for_both_simulators() {
    pmem::install_quiet_crash_hook();
    #[derive(Clone, Copy)]
    enum Which {
        General,
        Normalized,
    }
    // Run the scenario on a fresh machine: enqueue(1), then enqueue(2) with the
    // given crash schedule, then enqueue(3); returns the drained history, the
    // crash count, and the crash points the schedule-window enqueue consumed
    // crash-free (so the caller can derive a mid-operation crash point from
    // Stats instead of hard-coding one).
    let run = |which: Which, plan: Option<CrashPlan>| -> (Vec<u64>, u64, u64) {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let general;
        let normalized;
        let mut h: Box<dyn QueueHandle + '_> = match which {
            Which::General => {
                general = GeneralQueue::new(&t, 1, Durability::Manual, BoundaryStyle::General);
                Box::new(general.handle(&t))
            }
            Which::Normalized => {
                normalized = NormalizedQueue::new(&t, 1, Durability::Manual, false);
                Box::new(normalized.handle(&t))
            }
        };
        h.enqueue(1);
        let _ = t.take_stats();
        if let Some(p) = plan {
            t.set_crash_schedule(p);
        }
        h.enqueue(2);
        let window = t.stats();
        t.disarm_crashes();
        h.enqueue(3);
        (h.drain(), t.stats().crashes, window.crash_points)
    };
    for (which, label) in [(Which::General, "General"), (Which::Normalized, "Normalized")] {
        // Learn where "mid-enqueue" is from the crash-free run, then crash
        // there and again at the first instruction of the triggered recovery.
        let (history, _, points) = run(which, None);
        assert_eq!(history, vec![1, 2, 3], "{label}: crash-free baseline");
        let k = points / 2;
        let (history, crashes, _) = run(which, Some(CrashPlan::new(vec![k, 0])));
        assert_eq!(history, vec![1, 2, 3], "{label}: history must be exact");
        assert_eq!(crashes, 2, "{label}: both crashes must have fired");
    }
    // The metrics-level assertion needs runtime access, which `QueueHandle`
    // does not expose; check it for the General queue directly, again deriving
    // the crash point from a crash-free measurement.
    let probe = PMem::with_threads(1);
    let t = probe.thread(0);
    let q = GeneralQueue::new(&t, 1, Durability::Manual, BoundaryStyle::General);
    let mut h = q.handle(&t);
    let _ = t.take_stats();
    h.enqueue(1);
    let k = t.stats().crash_points / 2;
    let mem = PMem::with_threads(1);
    let t = mem.thread(0);
    let q = GeneralQueue::new(&t, 1, Durability::Manual, BoundaryStyle::General);
    let mut h = q.handle(&t);
    t.set_crash_schedule(CrashPlan::new(vec![k, 0]));
    h.enqueue(1);
    t.disarm_crashes();
    let metrics = h.runtime_mut().metrics();
    assert!(metrics.recoveries >= 1);
    assert_eq!(
        metrics.recovery_crashes, 1,
        "the second schedule element must interrupt the recovery itself"
    );
}

/// The capsule runtime's own nested-recovery counter, driven through the raw
/// `run_op` API (mirrors runtime.rs's recovery-interrupted retry loop).
#[test]
fn run_op_survives_arbitrarily_deep_nested_recovery_crashes() {
    pmem::install_quiet_crash_hook();
    let mem = PMem::with_threads(1);
    let t = mem.thread(0);
    let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::General, 1);
    rt.set_local(0, 7);
    // One crash in the body, then five consecutive crashes each hitting the
    // first instruction of a recovery attempt.
    t.set_crash_schedule(CrashPlan::new(vec![10, 0, 0, 0, 0, 0]));
    let out = rt.run_op(0, |rt| {
        let probe = rt.thread().alloc(1);
        for _ in 0..8 {
            let _ = rt.thread().read(probe);
        }
        CapsuleStep::Done(rt.local(0))
    });
    t.disarm_crashes();
    assert_eq!(out, 7);
    assert_eq!(rt.metrics().recovery_crashes, 5);
}
