//! Stress tests for the relaxed atomic orderings in `pmem::arena` (DESIGN.md §5).
//!
//! The simulator's hot path was moved from blanket `SeqCst` to per-site
//! release/acquire (word accesses) and relaxed (durable copies, allocation
//! cursor) orderings. These tests hammer the invariants that relaxation must
//! not break, with plain `std::thread` concurrency and high iteration counts:
//!
//! * the linearizable-counter invariant (CAS atomicity + visibility),
//! * the publication invariant (release/acquire hand-off of initialised records),
//! * the disjoint-allocation invariant (relaxed bump cursor still hands out
//!   non-overlapping, writable ranges),
//! * the quiescent crash/rollback round-trip on a multi-segment arena.
//!
//! They are probabilistic (no model checker in the offline workspace), so they
//! aim for many cheap racy iterations rather than few big ones.

use pmem::{MemConfig, Mode, PAddr, PMem};

/// Worker count for the stress tests. The container running tier-1 may be
/// single-core; oversubscribing still interleaves via the scheduler.
const THREADS: usize = 4;

#[test]
fn relaxed_orderings_keep_cas_counter_linearizable() {
    const PER_THREAD: u64 = 30_000;
    let mem = PMem::with_threads(THREADS);
    let counter = mem.thread(0).alloc(1);
    std::thread::scope(|s| {
        for pid in 0..THREADS {
            let mem = &mem;
            s.spawn(move || {
                let t = mem.thread(pid);
                for _ in 0..PER_THREAD {
                    loop {
                        let v = t.read(counter);
                        if t.cas(counter, v, v + 1) {
                            break;
                        }
                    }
                }
            });
        }
    });
    assert_eq!(
        mem.peek(counter),
        THREADS as u64 * PER_THREAD,
        "lost or duplicated CAS increments under relaxed orderings"
    );
}

#[test]
fn release_acquire_publication_hands_off_initialised_records() {
    // Producer threads allocate a record, fill its fields, then publish its
    // address with a CAS on a shared mailbox word; a consumer that acquires the
    // address must observe every field initialised. This is exactly the
    // happens-before edge the Acquire/Release substitution must preserve
    // (a Michael–Scott enqueue publishing a node is this pattern).
    const ROUNDS: u64 = 10_000;
    const FIELDS: u64 = 4;
    let mem = PMem::with_threads(2);
    let mailbox = mem.thread(0).alloc(1);
    std::thread::scope(|s| {
        let producer = {
            let mem = &mem;
            s.spawn(move || {
                let t = mem.thread(0);
                for round in 1..=ROUNDS {
                    let rec = t.alloc(FIELDS);
                    for f in 0..FIELDS {
                        t.write(rec.offset(f), round * 100 + f);
                    }
                    // Publish; the consumer empties the mailbox, so wait until
                    // it has taken the previous record (yield, not spin — the
                    // test box may be single-core).
                    while !t.cas(mailbox, 0, rec.to_raw()) {
                        std::thread::yield_now();
                    }
                }
            })
        };
        let consumer = {
            let mem = &mem;
            s.spawn(move || {
                let t = mem.thread(1);
                for _ in 1..=ROUNDS {
                    let raw = loop {
                        let raw = t.read(mailbox);
                        if raw != 0 && t.cas(mailbox, raw, 0) {
                            break raw;
                        }
                        std::thread::yield_now();
                    };
                    let rec = PAddr::from_raw(raw);
                    let first = t.read(rec);
                    assert!(first >= 100, "uninitialised field published: {first}");
                    let round = first / 100;
                    for f in 0..FIELDS {
                        assert_eq!(
                            t.read(rec.offset(f)),
                            round * 100 + f,
                            "field {f} of round {round} not visible after acquire"
                        );
                    }
                }
            })
        };
        producer.join().unwrap();
        consumer.join().unwrap();
    });
}

#[test]
fn relaxed_alloc_cursor_hands_out_disjoint_writable_ranges() {
    // Each thread allocates many small records and stamps every word with a
    // thread-unique signature; if any two allocations overlapped (or a segment
    // were published un-initialised), some signature would be clobbered.
    const ALLOCS_PER_THREAD: u64 = 2_000;
    const WORDS_PER_ALLOC: u64 = 3;
    let mem = PMem::with_threads(THREADS);
    let all: Vec<(usize, Vec<PAddr>)> = std::thread::scope(|s| {
        (0..THREADS)
            .map(|pid| {
                let mem = &mem;
                s.spawn(move || {
                    let t = mem.thread(pid);
                    let mut mine = Vec::with_capacity(ALLOCS_PER_THREAD as usize);
                    for i in 0..ALLOCS_PER_THREAD {
                        let rec = t.alloc(WORDS_PER_ALLOC);
                        for f in 0..WORDS_PER_ALLOC {
                            t.write(rec.offset(f), signature(pid, i, f));
                        }
                        mine.push(rec);
                    }
                    (pid, mine)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    let t = mem.thread(0);
    for (pid, records) in &all {
        for (i, rec) in records.iter().enumerate() {
            for f in 0..WORDS_PER_ALLOC {
                assert_eq!(
                    t.read(rec.offset(f)),
                    signature(*pid, i as u64, f),
                    "allocation overlap clobbered pid {pid} record {i} word {f}"
                );
            }
        }
    }
}

fn signature(pid: usize, alloc: u64, field: u64) -> u64 {
    ((pid as u64 + 1) << 48) | (alloc << 8) | field
}

#[test]
fn quiescent_crash_rollback_round_trips_across_segments() {
    // Multi-segment arena: persisted values survive a full-system crash, and
    // unflushed values roll back — including in the second segment, where the
    // segment-sliced rollback/persist walk (rather than per-word `word()`
    // resolution) does the work.
    let seg_words = pmem::arena::SEGMENT_WORDS as u64;
    let mem = PMem::new(MemConfig::new(THREADS).mode(Mode::SharedCache));
    let big = mem.thread(0).alloc(seg_words * 2);
    // Spread THREADS workers over both segments of the allocation (the last two
    // spots land in the second segment).
    let spots: Vec<PAddr> = (0..THREADS as u64)
        .map(|i| big.offset(i * (seg_words / 2) + i * 8))
        .collect();
    std::thread::scope(|s| {
        for (pid, &spot) in spots.iter().enumerate() {
            let mem = &mem;
            s.spawn(move || {
                let t = mem.thread(pid);
                t.write(spot, 1_000 + pid as u64);
                t.persist(spot);
                // Same line, written after the flush: must be lost by the crash.
                t.write(spot.offset(1), 2_000 + pid as u64);
            });
        }
    });
    // Workers joined: quiescent. Crash the whole machine.
    mem.crash_all();
    for (pid, &spot) in spots.iter().enumerate() {
        assert_eq!(
            mem.peek(spot),
            1_000 + pid as u64,
            "persisted word of pid {pid} lost by rollback"
        );
        assert_eq!(
            mem.peek(spot.offset(1)),
            0,
            "unflushed word of pid {pid} survived rollback"
        );
        assert!(mem.take_crashed(pid));
    }
    // And a second round after the crash still works (watermark / segment cache
    // state is still sound after rollback).
    let t = mem.thread(0);
    t.write(spots[0], 7);
    t.persist(spots[0]);
    mem.crash_all();
    assert_eq!(mem.peek(spots[0]), 7);
}
