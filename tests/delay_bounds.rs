//! Cross-crate integration test: the delay bounds the paper proves, checked
//! empirically on the simulator's instruction counters.
//!
//! * computation delay — the transformed queues execute at most a constant factor
//!   more instructions per operation than the untransformed MSQ, and the factor
//!   does not grow with the number of operations (Theorem 5.1 / 6.2 / 7.1),
//! * recovery delay — recovery of a transformed queue takes the same number of
//!   instructions whether the queue holds 10 elements or 10 000, whereas the
//!   LogQueue's recovery grows linearly (the §10 discussion).

use capsules::BoundaryStyle;
use delayfree::{DelayReport, RecoveryProbe};
use pmem::{MemConfig, Mode, PMem};
use queues::{Durability, GeneralQueue, LogQueue, MsQueue, NormalizedQueue, QueueHandle};

fn steps_per_op<H: QueueHandle>(mem: &PMem, mut handle: H, ops: u64) -> (pmem::Stats, u64) {
    let t = mem.thread(0);
    let before = t.stats();
    for i in 0..ops {
        handle.enqueue(i);
        let _ = handle.dequeue();
    }
    (mem.thread(0).stats().since(&before), ops * 2)
}

#[test]
fn computation_delay_is_a_constant_factor() {
    for ops in [200u64, 2_000] {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let msq = MsQueue::new(&t);
        let (base_stats, base_ops) = steps_per_op(&mem, msq.handle(&t), ops);

        let general = GeneralQueue::new(&t, 1, Durability::Manual, BoundaryStyle::General);
        let (gen_stats, gen_ops) = steps_per_op(&mem, general.handle(&t), ops);
        let gen_report = DelayReport::compare(&base_stats, base_ops, &gen_stats, gen_ops);

        let normalized = NormalizedQueue::new(&t, 1, Durability::Manual, false);
        let (norm_stats, norm_ops) = steps_per_op(&mem, normalized.handle(&t), ops);
        let norm_report = DelayReport::compare(&base_stats, base_ops, &norm_stats, norm_ops);

        // Constant-factor bound: generous ceiling, but crucially independent of `ops`.
        assert!(
            gen_report.computation_delay < 20.0,
            "general delay {} too large",
            gen_report.computation_delay
        );
        assert!(
            norm_report.computation_delay < 20.0,
            "normalized delay {} too large",
            norm_report.computation_delay
        );
        // The normalized transformation is the cheaper of the two (fewer boundaries).
        assert!(
            norm_report.simulated_steps_per_op <= gen_report.simulated_steps_per_op,
            "normalized ({}) should not exceed general ({})",
            norm_report.simulated_steps_per_op,
            gen_report.simulated_steps_per_op
        );
    }
}

#[test]
fn computation_delay_does_not_grow_with_history_length() {
    let mem = PMem::with_threads(1);
    let t = mem.thread(0);
    let q = GeneralQueue::new(&t, 1, Durability::Manual, BoundaryStyle::General);
    let mut h = q.handle(&t);
    let window = |h: &mut dyn FnMut()| {
        let before = t.stats();
        h();
        t.stats().since(&before)
    };
    let early = window(&mut || {
        for i in 0..200 {
            h.enqueue(i);
            let _ = h.dequeue();
        }
    });
    // Run a long history, then measure again: per-op cost must be unchanged.
    for i in 0..5_000 {
        h.enqueue(i);
        let _ = h.dequeue();
    }
    let late = window(&mut || {
        for i in 0..200 {
            h.enqueue(i);
            let _ = h.dequeue();
        }
    });
    let ratio = late.steps() as f64 / early.steps() as f64;
    assert!(
        (0.8..1.2).contains(&ratio),
        "per-op cost drifted with history length: ratio {ratio}"
    );
}

#[test]
fn transformed_queue_recovery_is_constant_logqueue_recovery_is_linear() {
    let recovery_of_general = |n: u64| {
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        let q = GeneralQueue::new(&mem.thread(0), 1, Durability::Manual, BoundaryStyle::General);
        {
            let t = mem.thread(0);
            let mut h = q.handle(&t);
            for i in 0..n {
                h.enqueue(i);
            }
        }
        mem.crash_all();
        let t = mem.thread(0);
        let probe = RecoveryProbe::before(&t);
        let _h = q.attach_handle(&t);
        probe.after(&t)
    };
    let recovery_of_log = |n: u64| {
        pmem::install_quiet_crash_hook();
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        let t = mem.thread(0);
        let q = LogQueue::new(&t, 1);
        let mut h = q.handle(&t);
        for i in 0..n {
            h.enqueue(i);
        }
        // Interrupt one more enqueue mid-flight (after its log entry is persisted
        // but before it is marked done), so recovery actually has work to do.
        t.set_crash_policy(pmem::CrashPolicy::Countdown(12));
        let _ = pmem::catch_crash(|| h.enqueue(n));
        t.disarm_crashes();
        mem.crash_all();
        let t = mem.thread(0);
        let before = t.stats().recovery_steps;
        let _ = q.recover(&t);
        t.stats().recovery_steps - before
    };

    let small = 50;
    let large = 5_000;
    let general_small = recovery_of_general(small);
    let general_large = recovery_of_general(large);
    assert_eq!(
        general_small, general_large,
        "capsule-based recovery must not depend on queue length"
    );
    let log_small = recovery_of_log(small);
    let log_large = recovery_of_log(large);
    assert!(
        log_large > log_small * 20,
        "LogQueue recovery should grow with queue length ({log_small} -> {log_large})"
    );
    assert!(
        general_large < log_large / 10,
        "transformed-queue recovery ({general_large}) should be far below LogQueue's ({log_large})"
    );
}

#[test]
fn normalized_recovery_is_also_constant() {
    let recover = |n: u64| {
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        let q = NormalizedQueue::new(&mem.thread(0), 1, Durability::Manual, false);
        {
            let t = mem.thread(0);
            let mut h = q.handle(&t);
            for i in 0..n {
                h.enqueue(i);
            }
        }
        mem.crash_all();
        let t = mem.thread(0);
        let probe = RecoveryProbe::before(&t);
        let _h = q.attach_handle(&t);
        probe.after(&t)
    };
    assert_eq!(recover(10), recover(2_000));
}
