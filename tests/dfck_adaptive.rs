//! dfck coverage for the contention-adaptive fast path (DESIGN.md §11).
//!
//! The adaptive capsule variants route every uncontended operation through a
//! plain-CAS fast path that writes minimal durable evidence, and demote to the
//! full capsule simulator when the contention policy trips. That split creates
//! three new crash surfaces the exhaustive sweeps must pin:
//!
//! * **(a) mid-fast-path, before the evidence write** — covered by the
//!   single-thread sweeps: with the fast path on (the default), every
//!   operation runs fast, so the full `k = 0..N` enumeration necessarily
//!   crashes before, inside, and after the evidence write. `fast_ops > 0` in
//!   the report proves the fast route was actually swept (counted, never
//!   guessed).
//! * **(b) the fast→slow demotion boundary** and **(c) slow-path helping
//!   after a fast-path success** — demotion needs a genuinely lost CAS, i.e.
//!   instruction-level interleaving, and the production policy (two
//!   consecutive losses) never trips inside the short scheduled windows. The
//!   sensitized workloads ([`ConcWorkload::sensitized`]) inject a
//!   threshold-1 policy so *any* lost fast-path CAS demotes; the interleaved
//!   (seed × crash point) sweep then crashes every victim instruction —
//!   including the demotion boundary itself and the slow-path window that
//!   runs after the same replay's earlier fast-path successes.
//!   `demotions > 0` proves the boundary was reached.
//!
//! All three sites are swept under both crash flavours (per-process PPM and
//! full-system cache-dropping), and the slow-path-pinned workloads keep the
//! simulator-only route's single-thread coverage alive now that the fast
//! path is the default.

use bench::dfck::{conc_replay, sweep, sweep_interleaved, sweep_system, ConcWorkload, SweepVariant,
    Workload};
use bench::sweep::VictimPlans;

fn adaptive_variants() -> Vec<SweepVariant> {
    SweepVariant::all().into_iter().filter(|v| v.adaptive_capable()).collect()
}

/// Site (a): with the fast path on (default), the single-thread pair sweep
/// enumerates every crash point of the fast route — including the points
/// before the durable evidence write — and passes the exactly-once oracle
/// under both crash flavours. `fast_ops > 0` proves the fast path ran;
/// `demotions == 0` proves an uncontended replay never demotes, i.e. the
/// coverage really is of the *fast* route, not the simulator.
#[test]
fn adaptive_fast_path_survives_every_single_thread_crash_point() {
    for variant in adaptive_variants() {
        for (flavour, report) in [
            ("ppm", sweep(variant, &Workload::pair(), None)),
            ("system", sweep_system(variant, &Workload::pair(), None)),
        ] {
            assert!(
                report.passed(),
                "{} pair/{flavour} adaptive sweep: {:?}",
                report.variant.label(),
                report.violations
            );
            assert_eq!(report.audit_flags, 0, "{}/{flavour}", report.variant.label());
            assert!(report.crash_points > 0);
            assert!(
                report.fast_ops > 0,
                "{}/{flavour}: fast path never ran — site (a) not covered",
                report.variant.label()
            );
            assert_eq!(
                report.demotions, 0,
                "{}/{flavour}: an uncontended single-thread sweep must not demote",
                report.variant.label()
            );
        }
    }
}

/// The slow-path-pinned workloads keep dedicated simulator-route coverage:
/// with the fast path off, the same sweep exercises only the full capsule
/// machinery (`fast_ops == 0`), so the simulator's crash surface does not
/// regress behind the now-default fast route.
#[test]
fn slow_path_workloads_pin_the_simulator_route() {
    for variant in adaptive_variants() {
        let w = Workload::pair().slow_path();
        assert_eq!(w.name, "pair-slow");
        for (flavour, report) in
            [("ppm", sweep(variant, &w, None)), ("system", sweep_system(variant, &w, None))]
        {
            assert!(
                report.passed(),
                "{} {}/{flavour}: {:?}",
                report.variant.label(),
                w.name,
                report.violations
            );
            assert_eq!(
                report.fast_ops, 0,
                "{}/{flavour}: slow-path workload must not touch the fast route",
                report.variant.label()
            );
        }
    }
}

/// Sites (b) and (c): the sensitized (threshold-1) interleaved sweep demotes
/// at least one operation per replayed schedule, and the victim's full crash
/// point range — which the engine enumerates exhaustively — therefore crashes
/// the fast→slow demotion boundary and the slow-path window that follows the
/// replay's earlier fast-path successes. Checked per adaptive variant under
/// both crash flavours; the linearization oracle plus the detectable
/// exactly-once checks must hold at every cell.
#[test]
fn sensitized_interleaved_sweeps_crash_the_demotion_boundary() {
    let w = ConcWorkload::pair(2).sensitized();
    assert_eq!(w.name, "conc-pair-trip1");
    for variant in adaptive_variants() {
        for system in [false, true] {
            let report = sweep_interleaved(variant, &w, &[1], &[], system);
            assert!(
                report.passed(),
                "{} {} (system={system}): {:?}",
                variant.label(),
                w.name,
                report.violations
            );
            assert_eq!(report.audit_flags, 0, "{} (system={system})", variant.label());
            assert!(report.crash_points > 0);
            assert!(
                report.fast_ops > 0,
                "{} (system={system}): site (c) needs fast-path successes in the window",
                variant.label()
            );
            assert!(
                report.demotions > 0,
                "{} (system={system}): the sensitized policy must demote — \
                 sites (b)/(c) not covered",
                variant.label()
            );
        }
    }
}

/// The sensitized replay is as deterministic as every other scheduled replay:
/// same (variant, workload, seed, plan, flavour) tuple ⇒ bit-identical record,
/// including the new fast-path/demotion telemetry.
#[test]
fn sensitized_replays_are_deterministic_and_demote() {
    let w = ConcWorkload::pair(2).sensitized();
    for variant in adaptive_variants() {
        let r = conc_replay(variant, &w, 1, &VictimPlans::baseline(1), false);
        let again = conc_replay(variant, &w, 1, &VictimPlans::baseline(1), false);
        assert_eq!(r, again, "{variant:?}: sensitized replay must be deterministic");
        assert!(r.demotions > 0, "{variant:?}: threshold-1 pair interleaving must demote");
        assert!(r.fast_ops > 0, "{variant:?}: the non-demoted ops stay on the fast path");
    }
}

/// The production-threshold interleaved rows stay green too — and since the
/// default policy's two-loss streak never trips inside these short windows,
/// their telemetry shows all-fast execution. This is the "interleaved
/// 2-thread row per adaptive variant" of the default matrix, pinned here so
/// the bin's default output can't silently lose it.
#[test]
fn default_policy_interleaved_rows_stay_all_fast() {
    let w = ConcWorkload::pair(2);
    for variant in adaptive_variants() {
        let report = sweep_interleaved(variant, &w, &[1], &[], false);
        assert!(report.passed(), "{} conc-pair: {:?}", variant.label(), report.violations);
        assert!(report.fast_ops > 0, "{}: adaptive default must run fast", variant.label());
        assert_eq!(
            report.demotions, 0,
            "{}: production threshold tripped in a short window — update DESIGN.md §11 \
             and the sensitized-row rationale if the policy changed",
            variant.label()
        );
    }
}
