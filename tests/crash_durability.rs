//! Cross-crate integration test: durable linearizability and detectability under
//! full-system crashes and per-process crash injection, for every durable queue.

use capsules::BoundaryStyle;
use pmem::{install_quiet_crash_hook, CrashPolicy, MemConfig, Mode, PMem};
use queues::{Durability, GeneralQueue, LogQueue, NormalizedQueue, QueueHandle};
use romulus::RomulusQueue;
use std::collections::HashSet;

/// After a full-system crash, the durable state must contain every element whose
/// enqueue completed (the operation returned before the crash) and no duplicates.
fn check_durable_after_crash<F, H>(make: F)
where
    F: Fn(&PMem) -> H,
    H: FnOnce(&PMem, &[u64]) -> Vec<u64>,
{
    let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
    let values: Vec<u64> = (1..=64).collect();
    let drained = make(&mem)(&mem, &values);
    assert_eq!(drained, values, "completed enqueues must survive the crash in order");
}

#[test]
fn general_queue_is_durably_linearizable() {
    check_durable_after_crash(|mem| {
        let q = GeneralQueue::new(&mem.thread(0), 1, Durability::Manual, BoundaryStyle::General);
        move |mem: &PMem, values: &[u64]| {
            {
                let t = mem.thread(0);
                let mut h = q.handle(&t);
                for &v in values {
                    h.enqueue(v);
                }
            }
            mem.crash_all();
            let t = mem.thread(0);
            let mut h = q.attach_handle(&t);
            let mut out = Vec::new();
            while let Some(v) = h.dequeue() {
                out.push(v);
            }
            out
        }
    });
}

#[test]
fn normalized_queue_is_durably_linearizable() {
    check_durable_after_crash(|mem| {
        let q = NormalizedQueue::new(&mem.thread(0), 1, Durability::Manual, true);
        move |mem: &PMem, values: &[u64]| {
            {
                let t = mem.thread(0);
                let mut h = q.handle(&t);
                for &v in values {
                    h.enqueue(v);
                }
            }
            mem.crash_all();
            let t = mem.thread(0);
            let mut h = q.attach_handle(&t);
            let mut out = Vec::new();
            while let Some(v) = h.dequeue() {
                out.push(v);
            }
            out
        }
    });
}

#[test]
fn log_queue_is_durably_linearizable() {
    check_durable_after_crash(|mem| {
        let q = LogQueue::new(&mem.thread(0), 1);
        move |mem: &PMem, values: &[u64]| {
            {
                let t = mem.thread(0);
                let mut h = q.handle(&t);
                for &v in values {
                    h.enqueue(v);
                }
            }
            mem.crash_all();
            let t = mem.thread(0);
            let _ = q.recover(&t);
            let mut h = q.handle(&t);
            let mut out = Vec::new();
            while let Some(v) = h.dequeue() {
                out.push(v);
            }
            out
        }
    });
}

#[test]
fn romulus_queue_is_durably_linearizable() {
    check_durable_after_crash(|mem| {
        let q = RomulusQueue::new(&mem.thread(0), 256);
        move |mem: &PMem, values: &[u64]| {
            {
                let t = mem.thread(0);
                let mut h = q.handle(&t);
                for &v in values {
                    h.enqueue(v);
                }
            }
            mem.crash_all();
            let t = mem.thread(0);
            q.recover(&t);
            let mut h = q.handle(&t);
            let mut out = Vec::new();
            while let Some(v) = h.dequeue() {
                out.push(v);
            }
            out
        }
    });
}

/// Concurrent producers with per-process crash injection: after the dust settles,
/// no element is lost and none is duplicated (the exactly-once guarantee of the
/// transformations' detectability).
#[test]
fn concurrent_mixed_workload_with_crashes_is_exactly_once() {
    install_quiet_crash_hook();
    const THREADS: usize = 4;
    const PER_THREAD: u64 = 400;
    for optimised in [false, true] {
        let mem = PMem::new(MemConfig::new(THREADS).mode(Mode::SharedCache));
        let q = NormalizedQueue::new(&mem.thread(0), THREADS, Durability::Manual, optimised);
        let popped: Vec<Vec<u64>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|pid| {
                    let mem = &mem;
                    let q = &q;
                    s.spawn(move || {
                        let t = mem.thread(pid);
                        let mut h = q.handle(&t);
                        t.set_crash_policy(CrashPolicy::Random {
                            prob: 0.003,
                            seed: 0xFEED + pid as u64,
                        });
                        let mut mine = Vec::new();
                        for i in 0..PER_THREAD {
                            h.enqueue((pid as u64) << 32 | i);
                            if i % 3 == 0 {
                                if let Some(v) = h.dequeue() {
                                    mine.push(v);
                                }
                            }
                        }
                        t.disarm_crashes();
                        mine
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let t = mem.thread(0);
        let mut h = q.handle(&t);
        let mut all: Vec<u64> = popped.into_iter().flatten().collect();
        while let Some(v) = h.dequeue() {
            all.push(v);
        }
        let unique: HashSet<u64> = all.iter().copied().collect();
        assert_eq!(unique.len(), all.len(), "duplicate delivery (optimised={optimised})");
        assert_eq!(
            all.len(),
            THREADS * PER_THREAD as usize,
            "lost elements (optimised={optimised})"
        );
    }
}

/// Repeatedly crash the whole system at different instants during a single-threaded
/// run and verify the durable state is always a consistent prefix: dequeue order is
/// FIFO and every drained value had been enqueued by a completed operation.
#[test]
fn crash_at_every_phase_leaves_consistent_state() {
    install_quiet_crash_hook();
    for crash_after in [1u64, 3, 7, 15, 40, 90, 200] {
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        let q = GeneralQueue::new(&mem.thread(0), 1, Durability::Manual, BoundaryStyle::General);
        let mut completed = Vec::new();
        {
            let t = mem.thread(0);
            let mut h = q.handle(&t);
            t.set_crash_policy(CrashPolicy::Countdown(crash_after * 10));
            for i in 1..=60u64 {
                // Crash injection may interrupt an operation; the capsule runtime
                // finishes it transparently, so if enqueue returns it completed.
                h.enqueue(i);
                completed.push(i);
                if t.stats().crashes > 0 {
                    break;
                }
            }
            t.disarm_crashes();
        }
        mem.crash_all();
        let t = mem.thread(0);
        let mut h = q.attach_handle(&t);
        let mut drained = Vec::new();
        while let Some(v) = h.dequeue() {
            drained.push(v);
        }
        // Every completed enqueue must be present, in order; at most one extra
        // element (an in-flight enqueue that became durable before the crash) may
        // follow.
        assert!(
            drained.len() >= completed.len() && drained.len() <= completed.len() + 1,
            "crash_after={crash_after}: {} completed but {} drained",
            completed.len(),
            drained.len()
        );
        assert_eq!(&drained[..completed.len()], &completed[..]);
    }
}
