//! Cross-crate integration test: every queue variant in the workspace — the plain
//! MSQ, both transformations (and their -Opt configurations), the LogQueue and the
//! Romulus queue — is observationally equivalent to a reference FIFO model on the
//! same operation script, with and without the Izraelevitz construction.

use capsules::BoundaryStyle;
use delayfree_integration_tests::{model, random_script, run_script, Op};
use pmem::{MemConfig, Mode, PMem, ThreadOptions};
use queues::{Durability, GeneralQueue, LogQueue, MsQueue, NormalizedQueue, QueueHandle};
use romulus::RomulusQueue;

fn scripts() -> Vec<Vec<Op>> {
    vec![
        vec![Op::Dequeue, Op::Enqueue(1), Op::Enqueue(2), Op::Dequeue, Op::Dequeue, Op::Dequeue],
        (1..=100).map(Op::Enqueue).chain((0..120).map(|_| Op::Dequeue)).collect(),
        random_script(2_000, 7),
        random_script(2_000, 1234),
    ]
}

#[test]
fn msq_matches_model() {
    for script in scripts() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let q = MsQueue::new(&t);
        assert_eq!(run_script(&mut q.handle(&t), &script), model(&script));
    }
}

#[test]
fn izraelevitz_msq_matches_model() {
    for script in scripts() {
        let mem = PMem::with_threads(1);
        let t = mem.thread_with(0, ThreadOptions { izraelevitz: true });
        let q = MsQueue::new(&t);
        assert_eq!(run_script(&mut q.handle(&t), &script), model(&script));
    }
}

#[test]
fn general_and_general_opt_match_model() {
    for style in [BoundaryStyle::General, BoundaryStyle::Compact] {
        for script in scripts() {
            let mem = PMem::with_threads(1);
            let t = mem.thread(0);
            let q = GeneralQueue::new(&t, 1, Durability::Manual, style);
            assert_eq!(
                run_script(&mut q.handle(&t), &script),
                model(&script),
                "style {style:?}"
            );
        }
    }
}

#[test]
fn normalized_and_normalized_opt_match_model() {
    for optimised in [false, true] {
        for script in scripts() {
            let mem = PMem::with_threads(1);
            let t = mem.thread(0);
            let q = NormalizedQueue::new(&t, 1, Durability::Manual, optimised);
            assert_eq!(
                run_script(&mut q.handle(&t), &script),
                model(&script),
                "optimised {optimised}"
            );
        }
    }
}

#[test]
fn log_queue_matches_model() {
    for script in scripts() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let q = LogQueue::new(&t, 1);
        assert_eq!(run_script(&mut q.handle(&t), &script), model(&script));
    }
}

#[test]
fn romulus_queue_matches_model() {
    for script in scripts() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let q = RomulusQueue::new(&t, script.len() as u64 + 8);
        let mut h = q.handle(&t);
        let mut out = Vec::new();
        for op in &script {
            match op {
                Op::Enqueue(v) => h.enqueue(*v),
                Op::Dequeue => out.push(h.dequeue()),
            }
        }
        assert_eq!(out, model(&script));
    }
}

#[test]
fn private_cache_model_needs_no_data_flushes_for_correctness() {
    // In the private-cache PPM model every store is immediately durable, so even
    // Durability::None queues (which issue no data-structure flushes at all — the
    // only flushes left are the capsule boundaries' own, which are no-ops in this
    // model) survive a crash with their full contents.
    let mem = PMem::new(MemConfig::new(1).mode(Mode::PrivateCache));
    let t = mem.thread(0);
    let q = GeneralQueue::new(&t, 1, Durability::None, BoundaryStyle::General);
    {
        let mut h = q.handle(&t);
        for i in 1..=50 {
            h.enqueue(i);
        }
    }
    let flushes_without_manual_durability = t.stats().flushes;
    mem.crash_all();
    let t = mem.thread(0);
    let mut h = q.handle(&t);
    for i in 1..=50 {
        assert_eq!(h.dequeue(), Some(i));
    }
    assert_eq!(h.dequeue(), None);
    // Sanity: the manual-durability configuration issues strictly more flushes for
    // the same work (the ones this model made unnecessary).
    let mem2 = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
    let t2 = mem2.thread(0);
    let q2 = GeneralQueue::new(&t2, 1, Durability::Manual, BoundaryStyle::General);
    {
        let mut h = q2.handle(&t2);
        for i in 1..=50 {
            h.enqueue(i);
        }
    }
    assert!(t2.stats().flushes > flushes_without_manual_durability);
}
