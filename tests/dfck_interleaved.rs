//! Cross-crate integration tests for the *interleaved* dfck sweep: queue and
//! structure variants driven by 2–4 scheduled processes under the
//! deterministic [`pmem`] thread scheduler, with the crash-point sweep
//! generalized from (crash point) to (interleaving seed × crash point). The
//! tests pin the three properties the layer promises:
//!
//! 1. **Determinism** — the same (seed, workload, crash plan) reproduces a
//!    bit-identical replay record (timed history, drain, scheduler
//!    fingerprint, crash bookkeeping).
//! 2. **Coverage** — distinct seeds produce distinct interleavings (the
//!    seeded budget perturbation actually moves the preemption points).
//! 3. **Correctness** — bounded full sweeps pass the linearization oracle
//!    with zero violations and zero audit flags, under per-process and
//!    full-system crashes, single and nested — including the multi-victim
//!    sweeps where a co-victim pid crashes in the same replay, and the
//!    4-thread full-system path where the scheduler delivers the kill to
//!    parked peers at their next yield (skipping peers whose `FinishGuard`
//!    already deregistered them).

use std::collections::BTreeSet;

use bench::dfck::{
    conc_replay, sweep_interleaved, sweep_interleaved_multi, ConcWorkload, SweepVariant,
};
use bench::dfck_struct::{
    conc_replay as struct_conc_replay, sweep_interleaved as struct_sweep_interleaved,
    ConcStructWorkload, StructVariant,
};
use bench::sweep::VictimPlans;
use pmem::CrashPlan;

/// The same (variant, workload, seed, victim, plan, system) tuple must
/// reproduce the replay record exactly — history timestamps, drain order,
/// scheduler fingerprint, and every crash counter. Checked crash-free and
/// with a scripted mid-operation crash, under both crash semantics.
#[test]
fn scheduled_replays_are_bit_identical_for_the_same_seed() {
    let w = ConcWorkload::pair(2);
    for variant in [SweepVariant::IzraelevitzMsq, SweepVariant::General, SweepVariant::LogQueue] {
        for system in [false, true] {
            let baseline = conc_replay(variant, &w, 5, &VictimPlans::baseline(1), system);
            let again = conc_replay(variant, &w, 5, &VictimPlans::baseline(1), system);
            assert_eq!(baseline, again, "{variant:?} (system={system}): crash-free replay");
            // Crash the victim mid-window at a point the baseline proved
            // reachable, and require the same determinism.
            let k = baseline.victim_crash_points / 2;
            let plans = VictimPlans::scripted(1, CrashPlan::nested(k, &[]));
            let crashed = conc_replay(variant, &w, 5, &plans, system);
            let crashed_again = conc_replay(variant, &w, 5, &plans, system);
            assert_eq!(
                crashed, crashed_again,
                "{variant:?} (system={system}): crashed replay at k={k}"
            );
            assert!(crashed.victim_crashes >= 1, "{variant:?}: the scripted crash must fire");
        }
    }
}

/// The structure-side scheduled replay has the same determinism guarantee,
/// including at three scheduled processes.
#[test]
fn scheduled_struct_replays_are_bit_identical_for_the_same_seed() {
    for threads in [2usize, 3] {
        let stack = ConcStructWorkload::stack_pair(threads);
        let set = ConcStructWorkload::set_pair(threads);
        for (variant, w) in [
            (StructVariant::StackGeneral, &stack),
            (StructVariant::SetNormalized, &set),
        ] {
            let victim = threads - 1;
            let baseline = struct_conc_replay(variant, w, 9, &VictimPlans::baseline(victim), true);
            let again = struct_conc_replay(variant, w, 9, &VictimPlans::baseline(victim), true);
            assert_eq!(baseline, again, "{variant:?} t{threads}: crash-free replay");
            let k = baseline.victim_crash_points / 2;
            let plans = VictimPlans::scripted(victim, CrashPlan::nested(k, &[]));
            let crashed = struct_conc_replay(variant, w, 9, &plans, true);
            let crashed_again = struct_conc_replay(variant, w, 9, &plans, true);
            assert_eq!(crashed, crashed_again, "{variant:?} t{threads}: crashed replay");
        }
    }
}

/// Eight seeds must produce eight *distinct* interleavings (scheduler trace
/// fingerprints) for every queue variant and for the structure family's
/// representative — the seeded budget perturbation is the whole point of the
/// seed dimension, so colliding fingerprints would silently collapse the
/// sweep's coverage.
#[test]
fn eight_seeds_yield_eight_distinct_interleavings_per_variant() {
    let seeds: Vec<u64> = (1..=8).collect();
    let w = ConcWorkload::pair(2);
    for variant in SweepVariant::all() {
        let fingerprints: BTreeSet<u64> = seeds
            .iter()
            .map(|&s| {
                conc_replay(variant, &w, s, &VictimPlans::baseline((s % 2) as usize), false)
                    .fingerprint
            })
            .collect();
        assert_eq!(
            fingerprints.len(),
            seeds.len(),
            "{variant:?}: seeds must map to distinct interleavings"
        );
    }
    let sw = ConcStructWorkload::stack_pair(2);
    let fingerprints: BTreeSet<u64> = seeds
        .iter()
        .map(|&s| {
            struct_conc_replay(
                StructVariant::StackGeneral,
                &sw,
                s,
                &VictimPlans::baseline((s % 2) as usize),
                false,
            )
            .fingerprint
        })
        .collect();
    assert_eq!(fingerprints.len(), seeds.len(), "Stack-General: distinct interleavings");
}

/// Three scheduled processes: distinct seeds still give distinct
/// interleavings, and each replay is reproducible (the sweep matrix defaults
/// to two threads; this pins the 3-thread path the `DF_DFCK_CONC_THREADS`
/// knob exposes).
#[test]
fn three_thread_replays_are_deterministic_and_seed_sensitive() {
    let w = ConcWorkload::pair(3);
    let seeds: Vec<u64> = (1..=4).collect();
    let fingerprints: BTreeSet<u64> = seeds
        .iter()
        .map(|&s| {
            let plans = VictimPlans::baseline((s % 3) as usize);
            let r = conc_replay(SweepVariant::General, &w, s, &plans, false);
            let again = conc_replay(SweepVariant::General, &w, s, &plans, false);
            assert_eq!(r, again, "seed {s}: 3-thread replay must be deterministic");
            r.fingerprint
        })
        .collect();
    assert_eq!(fingerprints.len(), seeds.len());
}

/// Bounded full interleaved sweeps — every (seed × crash point) cell — pass
/// the linearization oracle for the non-detectable MSQ, the detectable
/// LogQueue, and the detectable Stack-General, under per-process and
/// full-system crashes.
#[test]
fn bounded_interleaved_sweeps_pass_the_linearization_oracle() {
    let seeds = [1u64, 2];
    let w = ConcWorkload::pair(2);
    for variant in [SweepVariant::IzraelevitzMsq, SweepVariant::LogQueue] {
        for system in [false, true] {
            let report = sweep_interleaved(variant, &w, &seeds, &[], system);
            assert!(
                report.passed(),
                "{variant:?} (system={system}): {:?}",
                report.violations
            );
            assert_eq!(report.audit_flags, 0);
            assert_eq!(report.distinct_interleavings, seeds.len() as u64);
            assert!(report.crash_points > 0);
            // One crash-free baseline plus one replay per crash point, per seed.
            assert_eq!(report.replays, report.crash_points + seeds.len() as u64);
            assert!(report.crashes_injected >= report.crash_points);
            // Single-victim sweeps never touch a co-victim.
            assert_eq!(report.covictim_gap, None);
            assert_eq!(report.covictim_crashes, 0);
        }
    }
    let sw = ConcStructWorkload::stack_pair(2);
    for system in [false, true] {
        let report = struct_sweep_interleaved(StructVariant::StackGeneral, &sw, &seeds, &[], system);
        assert!(
            report.passed(),
            "Stack-General (system={system}): {:?}",
            report.violations
        );
        assert_eq!(report.audit_flags, 0);
        assert_eq!(report.distinct_interleavings, seeds.len() as u64);
        assert!(report.recoveries > 0, "detectable variant must run recovery actions");
    }
}

/// Nested (crash-during-recovery) schedules compose with the scheduled
/// window: a detectable variant swept with `[k, 0]` plans must interrupt its
/// own recovery and still pass the oracle.
#[test]
fn nested_crash_schedules_compose_with_scheduling() {
    let w = ConcWorkload::pair(2);
    let report = sweep_interleaved(SweepVariant::General, &w, &[3], &[0], true);
    assert!(report.passed(), "General nested /system: {:?}", report.violations);
    assert!(
        report.recovery_crashes > 0,
        "the nested schedule element must land inside recovery"
    );
}

/// Multi-victim replays: a co-victim pid armed with its own single-crash plan
/// fires in the same scheduled replay as the victim's scripted crash, the
/// record is bit-reproducible, and the bounded sweep still passes the
/// exactly-once linearization oracle with both schedules verified live.
#[test]
fn multi_victim_sweeps_crash_two_pids_and_pass_the_oracle() {
    let w = ConcWorkload::pair(2);
    // Replay-level: both pids crash in one deterministic replay.
    let plans = VictimPlans::scripted(0, CrashPlan::once(2)).with_covictim(1, CrashPlan::once(2));
    let r = conc_replay(SweepVariant::General, &w, 4, &plans, false);
    let again = conc_replay(SweepVariant::General, &w, 4, &plans, false);
    assert_eq!(r, again, "multi-victim replay must be deterministic");
    assert!(r.victim_crashes >= 1, "victim plan must fire");
    assert!(r.covictim_crashes >= 1, "co-victim plan must fire");
    // Sweep-level: every (seed × crash point) cell with a co-victim crash in
    // the mix passes the oracle, and the engine counted the co-victim fires.
    let seeds = [1u64, 2];
    for variant in [SweepVariant::General, SweepVariant::LogQueue] {
        let report = sweep_interleaved_multi(variant, &w, &seeds, &[], 2, false);
        assert!(report.passed(), "{variant:?} /mv: {:?}", report.violations);
        assert_eq!(report.covictim_gap, Some(2));
        assert!(
            report.covictim_crashes > 0,
            "{variant:?}: co-victim schedule never fired"
        );
        assert!(
            report.crashes_injected > report.crash_points,
            "{variant:?}: two-pid replays must inject more crashes than a single-victim sweep"
        );
    }
}

/// Four scheduled threads, full-system crash: the scheduler must deliver the
/// kill to every *parked* peer at its next yield — the victim's crash raises
/// [`pmem::CrashSignal`] on the three peers through the scheduler, so the
/// whole replay records more crashed pids than the victim alone — and the
/// delivery is bit-deterministic.
#[test]
fn four_thread_system_crash_kills_parked_peers_at_their_next_yield() {
    let w = ConcWorkload::pair(4);
    let baseline = conc_replay(SweepVariant::General, &w, 11, &VictimPlans::baseline(0), true);
    assert_eq!(baseline.crashes, 0);
    let k = baseline.victim_crash_points / 2;
    let plans = VictimPlans::scripted(0, CrashPlan::nested(k, &[]));
    let crashed = conc_replay(SweepVariant::General, &w, 11, &plans, true);
    let again = conc_replay(SweepVariant::General, &w, 11, &plans, true);
    assert_eq!(crashed, again, "4-thread kill delivery must be deterministic");
    assert!(crashed.victim_crashes >= 1, "the scripted crash must fire");
    assert!(
        crashed.crashes > crashed.victim_crashes,
        "a full-system crash at 4 threads must kill parked peers too \
         (victim {} vs total {})",
        crashed.victim_crashes,
        crashed.crashes
    );
    // Exactly-once still holds: the detectable variant completes every
    // operation despite three peers being killed mid-window.
    assert!(
        crashed.history.iter().all(|t| t.end != u64::MAX),
        "a detectable variant must complete every operation"
    );
}

/// Four scheduled threads, crash scripted at the victim's *last* crash point:
/// by then some peers have finished their windows and deregistered via the
/// scheduler's `FinishGuard` — kill delivery must skip them (or the replay
/// would hang waiting on a finished thread) and still satisfy the oracle.
/// Swept both mid-window and at the boundary for determinism.
#[test]
fn four_thread_kill_delivery_skips_finished_peers() {
    let w = ConcWorkload::pair(4);
    let baseline = conc_replay(SweepVariant::General, &w, 13, &VictimPlans::baseline(2), true);
    let n = baseline.victim_crash_points;
    assert!(n > 1);
    for k in [n - 1, n / 2] {
        let plans = VictimPlans::scripted(2, CrashPlan::nested(k, &[]));
        let crashed = conc_replay(SweepVariant::General, &w, 13, &plans, true);
        let again = conc_replay(SweepVariant::General, &w, 13, &plans, true);
        assert_eq!(crashed, again, "k={k}: late-window kill must be deterministic");
        assert!(crashed.victim_crashes >= 1, "k={k}: the scripted crash must fire");
        assert!(
            crashed.crashes <= 4,
            "k={k}: each pid can crash at most once for a single scripted system crash"
        );
    }
}

/// Distinct seeds stay distinct at four scheduled threads (the fingerprint
/// check of the 2-thread matrix, at the widest scheduled width the kill-path
/// tests use).
#[test]
fn four_thread_fingerprints_are_seed_sensitive() {
    let w = ConcWorkload::pair(4);
    let seeds: Vec<u64> = (1..=6).collect();
    let fingerprints: BTreeSet<u64> = seeds
        .iter()
        .map(|&s| {
            conc_replay(SweepVariant::General, &w, s, &VictimPlans::baseline((s % 4) as usize), false)
                .fingerprint
        })
        .collect();
    assert_eq!(fingerprints.len(), seeds.len(), "4-thread interleavings must stay distinct");
}
