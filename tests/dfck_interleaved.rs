//! Cross-crate integration tests for the *interleaved* dfck sweep: queue and
//! structure variants driven by 2–3 scheduled processes under the
//! deterministic [`pmem`] thread scheduler, with the crash-point sweep
//! generalized from (crash point) to (interleaving seed × crash point). The
//! tests pin the three properties the layer promises:
//!
//! 1. **Determinism** — the same (seed, workload, crash plan) reproduces a
//!    bit-identical replay record (timed history, drain, scheduler
//!    fingerprint, crash bookkeeping).
//! 2. **Coverage** — distinct seeds produce distinct interleavings (the
//!    seeded budget perturbation actually moves the preemption points).
//! 3. **Correctness** — bounded full sweeps pass the linearization oracle
//!    with zero violations and zero audit flags, under per-process and
//!    full-system crashes, single and nested.

use std::collections::BTreeSet;

use bench::dfck::{conc_replay, sweep_interleaved, ConcWorkload, SweepVariant};
use bench::dfck_struct::{
    conc_replay as struct_conc_replay, sweep_interleaved as struct_sweep_interleaved,
    ConcStructWorkload, StructVariant,
};
use pmem::CrashPlan;

/// The same (variant, workload, seed, victim, plan, system) tuple must
/// reproduce the replay record exactly — history timestamps, drain order,
/// scheduler fingerprint, and every crash counter. Checked crash-free and
/// with a scripted mid-operation crash, under both crash semantics.
#[test]
fn scheduled_replays_are_bit_identical_for_the_same_seed() {
    let w = ConcWorkload::pair(2);
    for variant in [SweepVariant::IzraelevitzMsq, SweepVariant::General, SweepVariant::LogQueue] {
        for system in [false, true] {
            let baseline = conc_replay(variant, &w, 5, 1, None, system);
            let again = conc_replay(variant, &w, 5, 1, None, system);
            assert_eq!(baseline, again, "{variant:?} (system={system}): crash-free replay");
            // Crash the victim mid-window at a point the baseline proved
            // reachable, and require the same determinism.
            let k = baseline.victim_crash_points / 2;
            let plan = CrashPlan::nested(k, &[]);
            let crashed = conc_replay(variant, &w, 5, 1, Some(&plan), system);
            let crashed_again = conc_replay(variant, &w, 5, 1, Some(&plan), system);
            assert_eq!(
                crashed, crashed_again,
                "{variant:?} (system={system}): crashed replay at k={k}"
            );
            assert!(crashed.victim_crashes >= 1, "{variant:?}: the scripted crash must fire");
        }
    }
}

/// The structure-side scheduled replay has the same determinism guarantee,
/// including at three scheduled processes.
#[test]
fn scheduled_struct_replays_are_bit_identical_for_the_same_seed() {
    for threads in [2usize, 3] {
        let stack = ConcStructWorkload::stack_pair(threads);
        let set = ConcStructWorkload::set_pair(threads);
        for (variant, w) in [
            (StructVariant::StackGeneral, &stack),
            (StructVariant::SetNormalized, &set),
        ] {
            let baseline = struct_conc_replay(variant, w, 9, threads - 1, None, true);
            let again = struct_conc_replay(variant, w, 9, threads - 1, None, true);
            assert_eq!(baseline, again, "{variant:?} t{threads}: crash-free replay");
            let k = baseline.victim_crash_points / 2;
            let plan = CrashPlan::nested(k, &[]);
            let crashed = struct_conc_replay(variant, w, 9, threads - 1, Some(&plan), true);
            let crashed_again = struct_conc_replay(variant, w, 9, threads - 1, Some(&plan), true);
            assert_eq!(crashed, crashed_again, "{variant:?} t{threads}: crashed replay");
        }
    }
}

/// Eight seeds must produce eight *distinct* interleavings (scheduler trace
/// fingerprints) for every queue variant and for the structure family's
/// representative — the seeded budget perturbation is the whole point of the
/// seed dimension, so colliding fingerprints would silently collapse the
/// sweep's coverage.
#[test]
fn eight_seeds_yield_eight_distinct_interleavings_per_variant() {
    let seeds: Vec<u64> = (1..=8).collect();
    let w = ConcWorkload::pair(2);
    for variant in SweepVariant::all() {
        let fingerprints: BTreeSet<u64> = seeds
            .iter()
            .map(|&s| conc_replay(variant, &w, s, (s % 2) as usize, None, false).fingerprint)
            .collect();
        assert_eq!(
            fingerprints.len(),
            seeds.len(),
            "{variant:?}: seeds must map to distinct interleavings"
        );
    }
    let sw = ConcStructWorkload::stack_pair(2);
    let fingerprints: BTreeSet<u64> = seeds
        .iter()
        .map(|&s| {
            struct_conc_replay(StructVariant::StackGeneral, &sw, s, (s % 2) as usize, None, false)
                .fingerprint
        })
        .collect();
    assert_eq!(fingerprints.len(), seeds.len(), "Stack-General: distinct interleavings");
}

/// Three scheduled processes: distinct seeds still give distinct
/// interleavings, and each replay is reproducible (the sweep matrix defaults
/// to two threads; this pins the 3-thread path the `DF_DFCK_CONC_THREADS`
/// knob exposes).
#[test]
fn three_thread_replays_are_deterministic_and_seed_sensitive() {
    let w = ConcWorkload::pair(3);
    let seeds: Vec<u64> = (1..=4).collect();
    let fingerprints: BTreeSet<u64> = seeds
        .iter()
        .map(|&s| {
            let r = conc_replay(SweepVariant::General, &w, s, (s % 3) as usize, None, false);
            let again = conc_replay(SweepVariant::General, &w, s, (s % 3) as usize, None, false);
            assert_eq!(r, again, "seed {s}: 3-thread replay must be deterministic");
            r.fingerprint
        })
        .collect();
    assert_eq!(fingerprints.len(), seeds.len());
}

/// Bounded full interleaved sweeps — every (seed × crash point) cell — pass
/// the linearization oracle for the non-detectable MSQ, the detectable
/// LogQueue, and the detectable Stack-General, under per-process and
/// full-system crashes.
#[test]
fn bounded_interleaved_sweeps_pass_the_linearization_oracle() {
    let seeds = [1u64, 2];
    let w = ConcWorkload::pair(2);
    for variant in [SweepVariant::IzraelevitzMsq, SweepVariant::LogQueue] {
        for system in [false, true] {
            let report = sweep_interleaved(variant, &w, &seeds, &[], system);
            assert!(
                report.passed(),
                "{variant:?} (system={system}): {:?}",
                report.violations
            );
            assert_eq!(report.audit_flags, 0);
            assert_eq!(report.distinct_interleavings, seeds.len() as u64);
            assert!(report.crash_points > 0);
            // One crash-free baseline plus one replay per crash point, per seed.
            assert_eq!(report.replays, report.crash_points + seeds.len() as u64);
            assert!(report.crashes_injected >= report.crash_points);
        }
    }
    let sw = ConcStructWorkload::stack_pair(2);
    for system in [false, true] {
        let report = struct_sweep_interleaved(StructVariant::StackGeneral, &sw, &seeds, &[], system);
        assert!(
            report.passed(),
            "Stack-General (system={system}): {:?}",
            report.violations
        );
        assert_eq!(report.audit_flags, 0);
        assert_eq!(report.distinct_interleavings, seeds.len() as u64);
        assert!(report.recoveries > 0, "detectable variant must run recovery actions");
    }
}

/// Nested (crash-during-recovery) schedules compose with the scheduled
/// window: a detectable variant swept with `[k, 0]` plans must interrupt its
/// own recovery and still pass the oracle.
#[test]
fn nested_crash_schedules_compose_with_scheduling() {
    let w = ConcWorkload::pair(2);
    let report = sweep_interleaved(SweepVariant::General, &w, &[3], &[0], true);
    assert!(report.passed(), "General nested /system: {:?}", report.violations);
    assert!(
        report.recovery_crashes > 0,
        "the nested schedule element must land inside recovery"
    );
}
