//! Shared helpers for the cross-crate integration tests.

use queues::QueueHandle;

/// Drive any queue handle through a scripted sequence of operations and return the
/// dequeue results, so different variants can be compared op-for-op.
pub fn run_script<H: QueueHandle>(handle: &mut H, script: &[Op]) -> Vec<Option<u64>> {
    let mut out = Vec::new();
    for op in script {
        match op {
            Op::Enqueue(v) => handle.enqueue(*v),
            Op::Dequeue => out.push(handle.dequeue()),
        }
    }
    out
}

/// One scripted queue operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Enqueue this value.
    Enqueue(u64),
    /// Dequeue (recording the result).
    Dequeue,
}

/// The reference model: what a correct FIFO queue returns for the script.
pub fn model(script: &[Op]) -> Vec<Option<u64>> {
    let mut q = std::collections::VecDeque::new();
    let mut out = Vec::new();
    for op in script {
        match op {
            Op::Enqueue(v) => q.push_back(*v),
            Op::Dequeue => out.push(q.pop_front()),
        }
    }
    out
}

/// A deterministic pseudo-random script mixing enqueues and dequeues.
pub fn random_script(len: usize, seed: u64) -> Vec<Op> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..len)
        .map(|i| {
            if next() % 3 == 0 {
                Op::Dequeue
            } else {
                Op::Enqueue(i as u64)
            }
        })
        .collect()
}
