//! Regression tests for the recoverable-CAS durable flush discipline
//! (DESIGN.md §7): under full-system crashes, announcement/descriptor lines
//! must be durable *before* the publishing CAS, or `check_recovery` re-applies
//! a CAS that already took effect (the duplicate-element bug the `dfck`
//! full-system sweep exposed in PR 3, recorded in ROADMAP.md).
//!
//! The deterministic reproduction pins a [`CrashPlan`] to the exact window the
//! sweep found: *after* the publishing CAS and the caller's `persist` of the
//! object word, so the rollback keeps the installed triple durable while
//! reverting its volatile recovery evidence. The crash point is derived from a
//! crash-free measurement (never hard-coded), so the test tracks instruction
//! footprint changes automatically.

use pmem::{
    catch_crash, install_quiet_crash_hook, CrashPlan, MemConfig, Mode, PMem, PThread,
};
use queues::{Durability, GeneralQueue, NormalizedQueue, QueueHandle};
use rcas::{check_recovery, IndirectRcas, RcasSpace};

fn shared_cache(threads: usize) -> PMem {
    PMem::new(MemConfig::new(threads).mode(Mode::SharedCache))
}

/// One "increment" operation in the shape the capsule transformation produces:
/// CAS with a persisted sequence number, persist the object word, and — after a
/// crash — consult `checkRecovery` before deciding whether to re-execute; a
/// stale-expected failure restarts the operation with a fresh sequence number
/// (exactly what `GeneralQueueHandle` does via `rt.boundary(E_START)`).
fn recover_and_finish(space: &RcasSpace, t: &PThread<'_>, x: pmem::PAddr) -> u64 {
    if !check_recovery(space, t, x, 1) {
        // The protocol believes CAS #1 never happened: repeat it.
        if !space.cas(t, x, 0, 1, 1) {
            // Stale expected value — the transformed operation restarts from its
            // read capsule and retries with the next sequence number.
            let v = space.read(t, x);
            assert!(space.cas(t, x, v, v + 1, 2));
        }
    }
    t.persist(x);
    space.read(t, x)
}

/// Crash-free instruction count of `cas + persist`, measured on an identical
/// machine, so the pinned schedule fires at the first crash point *after* the
/// persist completed.
fn measure_cas_persist_points(durable: bool) -> u64 {
    let mem = shared_cache(1);
    let t = mem.thread(0);
    let space = RcasSpace::with_default_layout(&t, 1).with_durability(durable);
    let x = space.create(&t, 0).addr();
    mem.persist_everything();
    let _ = t.take_stats();
    assert!(space.cas(&t, x, 0, 1, 1));
    t.persist(x);
    t.stats().crash_points
}

/// Run the increment with a crash pinned between the persisted publish and the
/// next instruction, then a full-system power failure, then recovery. Returns
/// the final value: 1 is exactly-once, 2 is the duplicate.
fn pinned_publish_crash_scenario(durable: bool) -> u64 {
    install_quiet_crash_hook();
    let n = measure_cas_persist_points(durable);
    let mem = shared_cache(1);
    let t = mem.thread(0);
    let space = RcasSpace::with_default_layout(&t, 1).with_durability(durable);
    let x = space.create(&t, 0).addr();
    mem.persist_everything();
    let _ = t.take_stats();
    t.set_crash_schedule(CrashPlan::once(n));
    let outcome = catch_crash(|| {
        assert!(space.cas(&t, x, 0, 1, 1));
        t.persist(x);
        // The schedule fires here: the CAS and its persist are durable, the
        // crash hits the very next instruction.
        let _ = space.read(&t, x);
    });
    assert!(outcome.is_err(), "the pinned schedule must fire");
    t.disarm_crashes();
    mem.crash_all(); // power failure: every unflushed line rolls back
    let _ = mem.take_crashed(0);
    recover_and_finish(&space, &t, x)
}

/// The descriptor/announcement flush gap, reproduced deterministically: without
/// the durable-announcement discipline the rollback reverts the announcement
/// word while the installed triple stays durable, `check_recovery` reports
/// *not done*, and the operation is applied twice.
#[test]
fn pinned_crash_after_publish_duplicates_without_the_flush_discipline() {
    assert_eq!(
        pinned_publish_crash_scenario(false),
        2,
        "without durable announcements the pre-fix duplicate must reproduce \
         (if this now reports 1, the relaxed mode became durable and this \
         regression pin should move into the durable test)"
    );
}

/// Same pinned schedule with the discipline on: the announcement was flushed
/// before the publishing CAS, so recovery sees the success and the increment is
/// exactly-once.
#[test]
fn pinned_crash_after_publish_is_exactly_once_with_the_flush_discipline() {
    assert_eq!(pinned_publish_crash_scenario(true), 1);
}

/// The full window, not just the single pinned point: crash at *every* crash
/// point of `cas + persist` (count from Stats), roll the whole machine back,
/// recover, and require exactly-once every time.
#[test]
fn every_crash_point_of_a_durable_cas_is_exactly_once_under_system_rollback() {
    install_quiet_crash_hook();
    let n = measure_cas_persist_points(true) + 1; // +1 sweeps one point past the persist
    for k in 0..n {
        let mem = shared_cache(1);
        let t = mem.thread(0);
        let space = RcasSpace::with_default_layout(&t, 1).with_durability(true);
        let x = space.create(&t, 0).addr();
        mem.persist_everything();
        let _ = t.take_stats();
        t.set_crash_schedule(CrashPlan::once(k));
        let outcome = catch_crash(|| {
            if space.cas(&t, x, 0, 1, 1) {
                t.persist(x);
            }
            let _ = space.read(&t, x);
        });
        t.disarm_crashes();
        if outcome.is_ok() {
            // k landed past the window; nothing crashed.
            assert_eq!(space.read(&t, x), 1);
            continue;
        }
        mem.crash_all();
        let _ = mem.take_crashed(0);
        assert_eq!(
            recover_and_finish(&space, &t, x),
            1,
            "crash point {k}: the increment must be applied exactly once"
        );
    }
}

/// The indirection-based variant: the ROADMAP item's literal shape. A crash
/// after the pointer CAS was persisted, with `durable_records = false`, rolls
/// the never-flushed descriptor back to zero while `x` durably points at it —
/// a zeroed *live* descriptor. Durable mode must keep both the record and the
/// recovery verdict intact at the same pinned crash point.
#[test]
fn indirect_rcas_durable_mode_closes_the_descriptor_zeroing_window() {
    install_quiet_crash_hook();
    // Returns (value visible after the rollback, recovery verdict for CAS #1).
    let scenario = |durable: bool| -> (u64, bool) {
        // Crash-free measurement of cas + persist on an identical machine.
        let n = {
            let mem = shared_cache(1);
            let t = mem.thread(0);
            let fam = IndirectRcas::new(&t, 1, durable);
            let x = fam.create(&t, 0);
            // Keep the record the CAS below allocates off x's cache line, so
            // the caller's persist(x) cannot accidentally cover it.
            let _ = t.alloc(pmem::LINE_WORDS);
            mem.persist_everything();
            let _ = t.take_stats();
            assert!(fam.cas(&t, x, 0, 7, 1));
            t.persist(x);
            t.stats().crash_points
        };
        let mem = shared_cache(1);
        let t = mem.thread(0);
        let fam = IndirectRcas::new(&t, 1, durable);
        let x = fam.create(&t, 0);
        let _ = t.alloc(pmem::LINE_WORDS); // as in the measurement machine
        mem.persist_everything();
        let _ = t.take_stats();
        t.set_crash_schedule(CrashPlan::once(n));
        let outcome = catch_crash(|| {
            assert!(fam.cas(&t, x, 0, 7, 1));
            t.persist(x);
            let _ = fam.read(&t, x);
        });
        assert!(outcome.is_err(), "the pinned schedule must fire");
        t.disarm_crashes();
        mem.crash_all();
        let _ = mem.take_crashed(0);
        (fam.read(&t, x), fam.check_recovery(&t, x, 1))
    };
    assert_eq!(
        scenario(true),
        (7, true),
        "durable mode: the descriptor survives and the success is recoverable"
    );
    let (value, recovered) = scenario(false);
    assert_eq!(
        value, 0,
        "relaxed mode documents the bug: x durably points at a zeroed record \
         (only sound in the private-cache model; see indirect.rs)"
    );
    assert!(!recovered, "relaxed mode also loses the recovery verdict");
}

/// The flush-order auditor live on *concurrent* durable queues: the exhaustive
/// sweeps arm it single-threaded; here three threads hammer the Manual-flush
/// queues while armed, exercising the cross-thread-read rule for real — the
/// discipline means no thread ever reads a line another thread published
/// before flushing, so the auditor must stay silent.
#[test]
fn auditor_stays_silent_on_concurrent_durable_queues() {
    const THREADS: usize = 3;
    const PER_THREAD: u64 = 300;
    for optimised in [false, true] {
        let mem = shared_cache(THREADS);
        mem.flush_auditor().arm();
        let t0 = mem.thread(0);
        let general = GeneralQueue::new(
            &t0,
            THREADS,
            Durability::Manual,
            if optimised {
                capsules::BoundaryStyle::Compact
            } else {
                capsules::BoundaryStyle::General
            },
        );
        let normalized = NormalizedQueue::new(&t0, THREADS, Durability::Manual, optimised);
        std::thread::scope(|s| {
            for pid in 0..THREADS {
                let mem = &mem;
                let general = &general;
                let normalized = &normalized;
                s.spawn(move || {
                    let t = mem.thread(pid);
                    let mut hg = general.handle(&t);
                    let mut hn = normalized.handle(&t);
                    for i in 0..PER_THREAD {
                        hg.enqueue((pid as u64) << 32 | i);
                        hn.enqueue((pid as u64) << 32 | i);
                        let _ = hg.dequeue();
                        let _ = hn.dequeue();
                    }
                    t.stats().audit_flags
                });
            }
        });
        mem.crash_all(); // the crash-time exposure check, after quiescence
        assert_eq!(
            mem.flush_auditor().flags(),
            0,
            "optimised={optimised}: {:?}",
            mem.flush_auditor().take_reports()
        );
    }
}
