//! Property-based `dfck` workloads: sample (seed, op count, prefill, value
//! base) with the deterministic proptest strategies, build a
//! [`Workload::seeded_full`] from each case, and require the exhaustive
//! crash-point sweep to pass. On a violation the assertion message carries the
//! full sampled tuple, so the failing workload is reproducible with
//! `Workload::seeded_full(seed, ops, prefill, base)` (or `DF_DFCK_SEED`/
//! `DF_DFCK_OPS` on the `dfck` binary for the default prefill).
//!
//! Each case is a full sweep (one replay per crash point), so the case budget
//! is capped below the proptest default; `PROPTEST_CASES` can lower it further
//! but not raise it past the cap (CI time budget).

use bench::dfck::{sweep, sweep_system, SweepVariant, Workload};
use bench::dfck_struct::{self, StructVariant, StructWorkload};
use proptest::prelude::*;

/// Upper bound on sampled property cases (each one is a whole sweep).
const MAX_CASES: u32 = 12;

/// Deterministically sample `n` workload parameter tuples.
fn sample_cases(n: u32) -> Vec<(u64, usize, usize, u64)> {
    let strategy = (1u64..1 << 48, 3usize..9, 0usize..5, 0u64..1 << 20);
    let mut rng = TestRng::deterministic();
    (0..n)
        .map(|case| strategy.sample(&mut rng, case))
        .collect()
}

#[test]
fn sampled_workloads_pass_the_sweep_on_rotating_detectable_variants() {
    let variants = [
        SweepVariant::General,
        SweepVariant::GeneralOpt,
        SweepVariant::Normalized,
        SweepVariant::NormalizedOpt,
        SweepVariant::LogQueue,
    ];
    for (case, &(seed, ops, prefill, base)) in sample_cases(cases().min(MAX_CASES))
        .iter()
        .enumerate()
    {
        let workload = Workload::seeded_full(seed, ops, prefill, base);
        // Rotate the variant per case so the budget covers the whole family,
        // alternating per-process and full-system crash semantics.
        let variant = variants[case % variants.len()];
        let report = if case % 2 == 0 {
            sweep(variant, &workload, None)
        } else {
            sweep_system(variant, &workload, None)
        };
        prop_assert!(
            report.passed(),
            "failing workload: Workload::seeded_full({seed}, {ops}, {prefill}, {base}) \
             on {} (case {case}, system={}): {:?}",
            variant.label(),
            case % 2 == 1,
            report.violations
        );
        prop_assert!(report.crash_points > 0);
    }
}

#[test]
fn sampled_workloads_pass_the_struct_sweep_on_rotating_variants() {
    // The structure family under the same discipline: every sampled tuple
    // builds a stack- and a set-shaped workload via the `seeded_full`
    // generators, swept on a rotating variant, alternating PPM and
    // full-system crash semantics. Failure messages carry the tuple so the
    // case reproduces with `StructWorkload::{stack,set}_seeded_full(...)`.
    let variants = [
        StructVariant::StackGeneral,
        StructVariant::StackNormalized,
        StructVariant::SetGeneral,
        StructVariant::SetNormalized,
        StructVariant::MapGeneral,
        StructVariant::MapNormalized,
        StructVariant::StackIzraelevitz,
        StructVariant::SetIzraelevitz,
        StructVariant::MapIzraelevitz,
    ];
    for (case, &(seed, ops, prefill, base)) in sample_cases(cases().min(MAX_CASES))
        .iter()
        .enumerate()
    {
        let variant = variants[case % variants.len()];
        // Maps share the set's op alphabet, so the set generator drives them
        // too — on the tiny bucket array, where the sampled inserts trip
        // resizes mid-sweep.
        let workload = if variant.is_stack() {
            StructWorkload::stack_seeded_full(seed, ops, prefill, base)
        } else {
            StructWorkload::set_seeded_full(seed, ops, prefill, base)
        };
        let report = if case % 2 == 0 {
            dfck_struct::sweep(variant, &workload, None)
        } else {
            dfck_struct::sweep_system(variant, &workload, None)
        };
        prop_assert!(
            report.passed(),
            "failing workload: {}_seeded_full({seed}, {ops}, {prefill}, {base}) \
             on {} (case {case}, system={}): {:?}",
            if variant.is_stack() { "stack" } else { "set" },
            variant.label(),
            case % 2 == 1,
            report.violations
        );
        prop_assert!(report.crash_points > 0);
    }
}

#[test]
fn sampled_workloads_pass_the_nested_system_sweep_on_the_msq() {
    // The non-detectable variant runs under the forked-model oracle; sample a
    // couple of workloads through the nested full-system schedules too.
    for &(seed, ops, prefill, base) in sample_cases(cases().min(4)).iter() {
        let workload = Workload::seeded_full(seed, ops, prefill, base);
        let report = sweep_system(SweepVariant::IzraelevitzMsq, &workload, Some(0));
        prop_assert!(
            report.passed(),
            "failing workload: Workload::seeded_full({seed}, {ops}, {prefill}, {base}): {:?}",
            report.violations
        );
    }
}
