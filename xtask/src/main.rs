//! `xtask` — repo maintenance tasks, run as `cargo run -p xtask -- <task>`.
//!
//! Tasks:
//!
//! * `lint-static` (default): walk every first-party `.rs` file (the
//!   `crates/`, `tests/`, `examples/` and `xtask/` trees — `third_party/`
//!   mirrors external crates and is exempt) and assert two comment
//!   disciplines that `rustc`/`clippy` cannot check:
//!
//!   1. every `unsafe` block, fn, impl or trait carries a `// SAFETY:`
//!      comment — trailing on the same line or in the contiguous comment
//!      block immediately above — explaining why the invariants hold;
//!   2. every `SeqCst` use site carries a per-site ordering comment (a
//!      comment mentioning `SeqCst` on the line or in the block above)
//!      justifying why the strongest ordering is needed — the simulator's
//!      whole point is modelling *weaker* persist orderings, so an
//!      unexplained `SeqCst` is either load-bearing (document it) or
//!      cargo-culted (weaken it).
//!
//! Exits non-zero listing every violating `file:line`. CI runs this as the
//! `lint-static` step.

use std::path::{Path, PathBuf};

/// First-party source roots, relative to the repo root.
const ROOTS: [&str; 4] = ["crates", "tests", "examples", "xtask"];

fn main() {
    let task = std::env::args().nth(1).unwrap_or_else(|| "lint-static".into());
    match task.as_str() {
        "lint-static" => lint_static(),
        other => {
            eprintln!("xtask: unknown task {other:?} (available: lint-static)");
            std::process::exit(2);
        }
    }
}

fn lint_static() {
    let root = repo_root();
    let mut files = Vec::new();
    for r in ROOTS {
        collect_rs(&root.join(r), &mut files);
    }
    files.sort();
    let mut violations = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(file)
            .unwrap_or_else(|e| panic!("reading {}: {e}", file.display()));
        lint_file(&root, file, &text, &mut violations);
    }
    if violations.is_empty() {
        println!("lint-static: {} files clean", files.len());
        return;
    }
    for v in &violations {
        eprintln!("{v}");
    }
    eprintln!("lint-static: {} violation(s)", violations.len());
    std::process::exit(1);
}

/// The repo root: the directory holding the workspace `Cargo.toml`, found by
/// walking up from this crate's manifest dir (so the lint works from any CWD).
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .expect("xtask sits one level below the workspace root")
        .to_path_buf()
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// One source line split into its code and comment halves. String-literal
/// contents are blanked out of `code` so a literal mentioning the linted
/// tokens (this file's own test inputs, say) is not a use site, and a `//`
/// inside a literal does not start a comment. Line-based: multi-line and raw
/// strings, and block comments, are approximated — none of them hide an
/// `unsafe` or `SeqCst` site in this codebase, and a false positive is fixed
/// by a comment the site should carry anyway.
struct LineView<'a> {
    code: String,
    comment: Option<&'a str>,
}

fn split_line(line: &str) -> LineView<'_> {
    let bytes = line.as_bytes();
    let mut code = Vec::with_capacity(bytes.len());
    let mut in_string = false;
    let mut escaped = false;
    let mut comment_at = None;
    for (i, &b) in bytes.iter().enumerate() {
        if in_string {
            code.push(b' ');
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
        } else if b == b'"' {
            in_string = true;
            code.push(b' ');
        } else if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            comment_at = Some(i);
            break;
        } else {
            code.push(b);
        }
    }
    LineView {
        // Blanked bytes are ASCII spaces; everything kept was valid UTF-8,
        // except multi-byte sequences inside literals which were blanked
        // byte-for-byte — so the buffer is valid UTF-8 throughout.
        code: String::from_utf8_lossy(&code).into_owned(),
        comment: comment_at.map(|i| &line[i..]),
    }
}

/// Does the contiguous run of comment / attribute / empty lines ending just
/// above `idx` (or the trailing comment of the line itself) satisfy `pred`?
fn annotated(lines: &[&str], idx: usize, pred: impl Fn(&str) -> bool) -> bool {
    if split_line(lines[idx]).comment.is_some_and(&pred) {
        return true;
    }
    for prev in lines[..idx].iter().rev() {
        let t = prev.trim();
        if t.is_empty() || t.starts_with("#[") {
            continue;
        }
        if t.starts_with("//") {
            if pred(t) {
                return true;
            }
            continue;
        }
        break;
    }
    false
}

/// `unsafe` tokens that introduce code needing a safety argument (as opposed
/// to the word appearing inside a comment, doc text or identifier).
fn code_has_unsafe(code: &str) -> bool {
    ["unsafe {", "unsafe fn", "unsafe impl", "unsafe trait", "unsafe extern"]
        .iter()
        .any(|tok| code.contains(tok))
}

fn lint_file(root: &Path, file: &Path, text: &str, violations: &mut Vec<String>) {
    let rel = file.strip_prefix(root).unwrap_or(file).display();
    let lines: Vec<&str> = text.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        let view = split_line(line);
        if code_has_unsafe(&view.code)
            && !annotated(&lines, i, |c| c.contains("SAFETY:"))
        {
            violations.push(format!(
                "{rel}:{}: `unsafe` without a `// SAFETY:` comment",
                i + 1
            ));
        }
        if view.code.contains("SeqCst")
            && !annotated(&lines, i, |c| c.contains("SeqCst"))
        {
            violations.push(format!(
                "{rel}:{}: `SeqCst` without a per-site ordering comment",
                i + 1
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(text: &str) -> Vec<String> {
        let mut v = Vec::new();
        lint_file(Path::new("/r"), Path::new("/r/f.rs"), text, &mut v);
        v
    }

    #[test]
    fn bare_unsafe_block_is_flagged() {
        let v = lint("fn f() {\n    unsafe { g() }\n}\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("f.rs:2"), "{v:?}");
    }

    #[test]
    fn safety_comment_above_or_trailing_passes() {
        assert!(lint("// SAFETY: g is fine\nunsafe { g() }\n").is_empty());
        assert!(lint("unsafe { g() } // SAFETY: g is fine\n").is_empty());
        // A comment block with the tag on an earlier line still counts.
        assert!(lint("// SAFETY: long argument\n// continued here\nunsafe { g() }\n").is_empty());
    }

    #[test]
    fn attributes_between_comment_and_site_are_transparent() {
        assert!(lint("// SAFETY: checked\n#[inline]\nunsafe fn g() {}\n").is_empty());
    }

    #[test]
    fn bare_seqcst_is_flagged_and_commented_seqcst_passes() {
        assert_eq!(lint("a.store(1, Ordering::SeqCst);\n").len(), 1);
        assert!(lint("// SeqCst: arms race with crash delivery\na.store(1, Ordering::SeqCst);\n")
            .is_empty());
    }

    #[test]
    fn mentions_inside_comments_and_docs_are_ignored() {
        assert!(lint("// the simulator never needs unsafe { } here\n").is_empty());
        assert!(lint("/// compiles SeqCst stores to xchg\nfn f() {}\n").is_empty());
    }

    #[test]
    fn an_unrelated_comment_does_not_satisfy_the_seqcst_lint() {
        let v = lint("// bump the counter\na.fetch_add(1, Ordering::SeqCst);\n");
        assert_eq!(v.len(), 1, "{v:?}");
    }
}
