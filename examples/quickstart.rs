//! Quickstart: make a lock-free queue persistent with the Normalized simulator,
//! crash the whole (simulated) machine, and carry on where we left off.
//!
//! ```text
//! cargo run -p delayfree-examples --bin quickstart
//! ```

use capsules::BoundaryStyle;
use pmem::{MemConfig, Mode, PMem};
use queues::{Durability, GeneralQueue, NormalizedQueue, QueueHandle};

fn main() {
    // A 2-process machine in the shared-cache model: stores only become durable
    // when flushed, exactly like clflushopt/sfence on a real NVM machine.
    let mem = PMem::new(MemConfig::new(2).mode(Mode::SharedCache));

    // The paper's headline artifact: the Michael-Scott queue made persistent and
    // detectable by the Persistent Normalized Simulator, with hand-placed flushes.
    let queue = NormalizedQueue::new(&mem.thread(0), 2, Durability::Manual, false);

    {
        let t = mem.thread(0);
        let mut handle = queue.handle(&t);
        for i in 1..=5 {
            handle.enqueue(i);
        }
        println!("enqueued 1..=5; queue length = {}", queue.len(&t));
        println!(
            "persistence cost so far: {} flushes, {} fences",
            t.stats().flushes,
            t.stats().fences
        );
    }

    // Pull the plug: every cache line that was not flushed is lost, every process's
    // volatile state is gone.
    mem.crash_all();
    println!("-- full-system crash --");

    {
        let t = mem.thread(0);
        let mut handle = queue.handle(&t);
        print!("recovered contents:");
        while let Some(v) = handle.dequeue() {
            print!(" {v}");
        }
        println!();
    }

    // The same API also drives the General (CAS-Read) transformation; swap one
    // constructor and the rest of the program is unchanged.
    let general = GeneralQueue::new(
        &mem.thread(1),
        2,
        Durability::Manual,
        BoundaryStyle::General,
    );
    let t = mem.thread(1);
    let mut handle = general.handle(&t);
    handle.enqueue(42);
    println!("general-transformed queue dequeues {:?}", handle.dequeue());
}
