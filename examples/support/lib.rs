//! Shared support for the runnable examples. The examples are intentionally
//! self-contained; this library target exists only so the package has a lib target
//! alongside its binaries and is a convenient place for future shared helpers.

/// The examples in this package, with one-line descriptions (used by `--help`-style
/// listings and kept here so the set stays documented in one place).
pub const EXAMPLES: &[(&str, &str)] = &[
    ("quickstart", "persistent queue, full-system crash, recovery"),
    ("crash_torture", "random crash injection with exactly-once verification"),
    ("bank_transfer", "multi-CAS normalized operation (money conservation under crashes)"),
    ("recovery_comparison", "constant-time vs linear-time recovery"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_example_is_listed() {
        assert_eq!(EXAMPLES.len(), 4);
        assert!(EXAMPLES.iter().any(|(name, _)| *name == "quickstart"));
    }
}
