//! Crash torture: hammer the General (CAS-Read) transformed queue with randomly
//! injected crashes on every thread and verify that every enqueued element is
//! dequeued exactly once — the end-to-end property the capsule + recoverable-CAS
//! machinery guarantees.
//!
//! ```text
//! cargo run -p delayfree-examples --release --bin crash_torture
//! ```

use capsules::BoundaryStyle;
use pmem::{install_quiet_crash_hook, CrashPolicy, MemConfig, Mode, PMem};
use queues::{Durability, GeneralQueue, QueueHandle};
use std::collections::HashSet;

const THREADS: usize = 4;
const PER_THREAD: u64 = 2_000;

fn main() {
    install_quiet_crash_hook();
    let mem = PMem::new(MemConfig::new(THREADS).mode(Mode::SharedCache));
    let queue = GeneralQueue::new(
        &mem.thread(0),
        THREADS,
        Durability::Manual,
        BoundaryStyle::General,
    );

    std::thread::scope(|s| {
        for pid in 0..THREADS {
            let mem = &mem;
            let queue = &queue;
            s.spawn(move || {
                let t = mem.thread(pid);
                let mut handle = queue.handle(&t);
                t.set_crash_policy(CrashPolicy::Random {
                    prob: 0.002,
                    seed: 0xBAD_5EED + pid as u64,
                });
                for i in 0..PER_THREAD {
                    handle.enqueue((pid as u64) << 32 | i);
                }
                t.disarm_crashes();
                println!(
                    "thread {pid}: enqueued {PER_THREAD} values while crashing {} times",
                    t.stats().crashes
                );
            });
        }
    });

    // Drain and check exactly-once delivery.
    let t = mem.thread(0);
    let mut handle = queue.handle(&t);
    let mut seen = HashSet::new();
    while let Some(v) = handle.dequeue() {
        assert!(seen.insert(v), "value {v:#x} was dequeued twice!");
    }
    assert_eq!(seen.len() as u64, THREADS as u64 * PER_THREAD, "an element was lost");
    println!(
        "all {} elements present exactly once despite {} injected crashes",
        seen.len(),
        mem.crash_events()
    );
}
