//! A domain-specific use of the Persistent Normalized Simulator beyond the queue:
//! crash-safe transfers between "accounts" expressed as a normalized operation with
//! a multi-entry CAS list (withdraw, then deposit), executed by the CAS-executor
//! with recoverable CASes so a crash between the two steps is resumed, not repeated.
//!
//! ```text
//! cargo run -p delayfree-examples --release --bin bank_transfer
//! ```

use capsules::{BoundaryStyle, CapsuleRuntime};
use delayfree::{
    CasDesc, CasList, NormalizedCtx, NormalizedOp, NormalizedSimulator, WrapUp, NORMALIZED_LOCALS,
};
use pmem::{install_quiet_crash_hook, CrashPolicy, PAddr, PMem};
use rcas::RcasSpace;

/// Move `amount` from one account to another; fails (restarts) under contention.
struct Transfer {
    from: PAddr,
    to: PAddr,
}

impl NormalizedOp for Transfer {
    type Input = u64;
    type Output = bool; // true = transferred, false = insufficient funds

    fn generator(&self, ctx: &mut NormalizedCtx<'_, '_, '_>, amount: &u64) -> CasList {
        let from_balance = ctx.read(self.from);
        if from_balance < *amount {
            return Vec::new(); // nothing to do: insufficient funds
        }
        let to_balance = ctx.read(self.to);
        vec![
            CasDesc::new(self.from, from_balance, from_balance - amount),
            CasDesc::new(self.to, to_balance, to_balance + amount),
        ]
    }

    fn wrap_up(
        &self,
        _ctx: &mut NormalizedCtx<'_, '_, '_>,
        _amount: &u64,
        cas_list: &CasList,
        executed: usize,
    ) -> WrapUp<bool> {
        if cas_list.is_empty() {
            return WrapUp::Done(false);
        }
        if executed == cas_list.len() {
            WrapUp::Done(true)
        } else {
            // A CAS failed (someone raced us); regenerate against fresh balances.
            WrapUp::Restart
        }
    }
}

const ACCOUNTS: usize = 4;
const TRANSFERS: u64 = 5_000;
const INITIAL: u64 = 1_000_000;

fn main() {
    install_quiet_crash_hook();
    let mem = PMem::with_threads(1);
    let t = mem.thread(0);
    let space = RcasSpace::with_default_layout(&t, 1);
    let accounts: Vec<PAddr> = (0..ACCOUNTS).map(|_| space.create(&t, INITIAL).addr()).collect();
    let sim = NormalizedSimulator::new(space, true);
    let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::General, NORMALIZED_LOCALS);

    // Random-ish transfers with aggressive crash injection.
    t.set_crash_policy(CrashPolicy::Random { prob: 0.01, seed: 2024 });
    let mut completed = 0u64;
    for i in 0..TRANSFERS {
        let from = (i % ACCOUNTS as u64) as usize;
        let to = ((i * 7 + 3) % ACCOUNTS as u64) as usize;
        if from == to {
            continue;
        }
        let op = Transfer {
            from: accounts[from],
            to: accounts[to],
        };
        if sim.run(&mut rt, &op, &((i % 97) + 1)) {
            completed += 1;
        }
    }
    t.disarm_crashes();

    let total: u64 = accounts.iter().map(|a| space.read(&t, *a)).sum();
    println!("completed {completed} transfers under {} injected crashes", t.stats().crashes);
    println!("sum of balances: {total} (expected {})", ACCOUNTS as u64 * INITIAL);
    assert_eq!(
        total,
        ACCOUNTS as u64 * INITIAL,
        "money was created or destroyed — the executor recovery is broken"
    );
    println!("conservation of money holds: no transfer was half-applied or double-applied");
}
