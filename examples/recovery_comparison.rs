//! Recovery-delay comparison: how much work a process must do after a crash before
//! it can continue, for the capsule-based transformations (constant) versus the
//! hand-tuned LogQueue (linear in the queue length) — the trade-off §10 highlights.
//!
//! ```text
//! cargo run -p delayfree-examples --release --bin recovery_comparison
//! ```

use capsules::BoundaryStyle;
use delayfree::RecoveryProbe;
use pmem::{MemConfig, Mode, PMem};
use queues::{Durability, GeneralQueue, LogQueue, QueueHandle};

fn main() {
    println!("{:<12} {:>22} {:>22}", "queue len", "General (steps)", "LogQueue (steps)");
    for &n in &[100u64, 1_000, 10_000, 50_000] {
        let general = {
            let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
            let q = GeneralQueue::new(
                &mem.thread(0),
                1,
                Durability::Manual,
                BoundaryStyle::General,
            );
            {
                let t = mem.thread(0);
                let mut h = q.handle(&t);
                for i in 0..n {
                    h.enqueue(i);
                }
            }
            mem.crash_all();
            let t = mem.thread(0);
            let probe = RecoveryProbe::before(&t);
            let _h = q.attach_handle(&t); // reload the capsule frame: that is the recovery
            probe.after(&t)
        };
        let log = {
            let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
            let t = mem.thread(0);
            let q = LogQueue::new(&t, 1);
            let mut h = q.handle(&t);
            for i in 0..n {
                h.enqueue(i);
            }
            mem.crash_all();
            let t = mem.thread(0);
            let before = t.stats().recovery_steps;
            let _ = q.recover(&t);
            t.stats().recovery_steps - before
        };
        println!("{n:<12} {general:>22} {log:>22}");
    }
    println!();
    println!("The transformed queue reloads one capsule frame regardless of queue size;");
    println!("the LogQueue must walk the queue to decide whether its logged operation applied.");
}
