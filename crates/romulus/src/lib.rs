//! # `romulus` — a simplified Romulus-style durable transactional memory
//!
//! The paper's §10 compares its transformed queues against Romulus (Correia, Felber,
//! Ramalhete — SPAA 2018), a persistent transactional memory. This crate provides a
//! from-scratch, simplified reproduction of the ingredients that determine Romulus's
//! cost profile in that comparison:
//!
//! * **two replicas** of the user's persistent heap ("main" and "back"): every
//!   transaction updates main, persists it, then re-applies the same writes to back —
//!   two rounds of flushes and fences per update transaction,
//! * a persistent **write-set log** and a three-state commit flag
//!   (`IDLE → MUTATING → COPYING → IDLE`) so that a crash at any point leaves one
//!   replica consistent and [`Romulus::recover`] can restore the other,
//! * a **single-combiner** execution model: update transactions are serialised by a
//!   combiner lock, standing in for RomulusLR's flat-combining left-right mechanism
//!   (the paper attributes Romulus's good high-thread-count behaviour to this
//!   aggregation; the cost structure — one lock acquisition plus double writes per
//!   operation — is what matters for the comparison's shape),
//! * a persistent bump **allocator** inside the managed region (Romulus ships its own
//!   persistent allocator; the paper cites this as part of its overhead).
//!
//! [`RomulusQueue`] is the sequential Michael–Scott-style queue written against this
//! TM, used as the "Romulus" series in Figure 6.
//!
//! This is *not* a complete reimplementation of Romulus (no left-right reader
//! instances, no user-level wait-free reads); DESIGN.md documents the substitution.

#![warn(missing_docs)]

use parking_lot::Mutex;
use pmem::{PAddr, PThread};

/// Commit-protocol states.
const STATE_IDLE: u64 = 0;
const STATE_MUTATING: u64 = 1;
const STATE_COPYING: u64 = 2;

/// A durable transactional memory managing a fixed-size region of persistent words.
///
/// Cells are addressed by *indices* into the region (not raw [`PAddr`]s) so that the
/// same index transparently refers to both replicas.
pub struct Romulus {
    main: PAddr,
    back: PAddr,
    /// Persistent word holding the commit-protocol state.
    state: PAddr,
    /// Persistent write-set log: word 0 = length, then one index per entry.
    log: PAddr,
    log_capacity: usize,
    capacity: u64,
    /// Persistent bump-allocation cursor lives in cell 0 of the region.
    combiner: Mutex<()>,
}

/// Index of the reserved allocator cell.
const ALLOC_CELL: u64 = 0;
/// First index available to user allocations.
const FIRST_USER_CELL: u64 = 1;

impl Romulus {
    /// Create a TM managing `capacity` persistent cells, with room for transactions
    /// that write at most `log_capacity` distinct cells.
    pub fn new(thread: &PThread<'_>, capacity: u64, log_capacity: usize) -> Romulus {
        assert!(capacity > FIRST_USER_CELL);
        let main = thread.alloc(capacity);
        let back = thread.alloc(capacity);
        let state = thread.alloc(1);
        let log = thread.alloc(1 + log_capacity as u64);
        let rom = Romulus {
            main,
            back,
            state,
            log,
            log_capacity,
            capacity,
            combiner: Mutex::new(()),
        };
        // Initialise the allocator cursor in both replicas and persist everything.
        thread.write(rom.main_addr(ALLOC_CELL), FIRST_USER_CELL);
        thread.write(rom.back_addr(ALLOC_CELL), FIRST_USER_CELL);
        thread.persist(rom.main_addr(ALLOC_CELL));
        thread.persist(rom.back_addr(ALLOC_CELL));
        thread.persist(state);
        rom
    }

    fn main_addr(&self, idx: u64) -> PAddr {
        assert!(idx < self.capacity, "cell index {idx} out of range");
        self.main.offset(idx)
    }

    fn back_addr(&self, idx: u64) -> PAddr {
        assert!(idx < self.capacity, "cell index {idx} out of range");
        self.back.offset(idx)
    }

    /// Read a cell outside any transaction (sees the last committed value, assuming
    /// no concurrent update transaction is between its two replica writes; use
    /// [`transaction`](Self::transaction) for reads that must be serialised).
    pub fn read(&self, thread: &PThread<'_>, idx: u64) -> u64 {
        thread.read(self.main_addr(idx))
    }

    /// Run an update (or read) transaction under the combiner lock. The closure's
    /// writes become durable atomically: either all of them survive a crash or none.
    pub fn transaction<R>(
        &self,
        thread: &PThread<'_>,
        body: impl FnOnce(&mut Tx<'_, '_, '_>) -> R,
    ) -> R {
        let _guard = self.combiner.lock();
        let mut tx = Tx {
            rom: self,
            thread,
            writes: Vec::new(),
        };
        let result = body(&mut tx);
        let writes = tx.writes;
        if writes.is_empty() {
            return result;
        }
        assert!(
            writes.len() <= self.log_capacity,
            "transaction write set ({}) exceeds the log capacity ({})",
            writes.len(),
            self.log_capacity
        );
        // 1. Persist the write-set log (indices only; values land in main next).
        thread.write(self.log, writes.len() as u64);
        for (i, (idx, _)) in writes.iter().enumerate() {
            thread.write(self.log.offset(1 + i as u64), *idx);
        }
        let mut w = 0;
        while w < 1 + writes.len() as u64 {
            thread.flush(self.log.offset(w));
            w += pmem::LINE_WORDS;
        }
        thread.fence();
        // 2. MUTATING: apply to main and persist.
        thread.write(self.state, STATE_MUTATING);
        thread.persist(self.state);
        for &(idx, value) in &writes {
            thread.write(self.main_addr(idx), value);
            thread.flush(self.main_addr(idx));
        }
        thread.fence();
        // 3. COPYING: apply to back and persist.
        thread.write(self.state, STATE_COPYING);
        thread.persist(self.state);
        for &(idx, value) in &writes {
            thread.write(self.back_addr(idx), value);
            thread.flush(self.back_addr(idx));
        }
        thread.fence();
        // 4. Done.
        thread.write(self.state, STATE_IDLE);
        thread.persist(self.state);
        result
    }

    /// Post-crash recovery: make both replicas consistent again. Constant work per
    /// logged cell (the log is bounded by `log_capacity`).
    pub fn recover(&self, thread: &PThread<'_>) {
        thread.begin_recovery();
        let state = thread.read(self.state);
        let len = thread.read(self.log) as usize;
        match state {
            STATE_MUTATING => {
                // Main may be torn; back is consistent. Undo main from back.
                for i in 0..len.min(self.log_capacity) {
                    let idx = thread.read(self.log.offset(1 + i as u64));
                    let good = thread.read(self.back_addr(idx));
                    thread.write(self.main_addr(idx), good);
                    thread.flush(self.main_addr(idx));
                }
                thread.fence();
            }
            STATE_COPYING => {
                // Main is consistent (fully persisted); finish copying it to back.
                for i in 0..len.min(self.log_capacity) {
                    let idx = thread.read(self.log.offset(1 + i as u64));
                    let good = thread.read(self.main_addr(idx));
                    thread.write(self.back_addr(idx), good);
                    thread.flush(self.back_addr(idx));
                }
                thread.fence();
            }
            _ => {}
        }
        thread.write(self.state, STATE_IDLE);
        thread.persist(self.state);
        thread.end_recovery();
    }
}

impl std::fmt::Debug for Romulus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Romulus")
            .field("capacity", &self.capacity)
            .field("log_capacity", &self.log_capacity)
            .finish()
    }
}

/// The view a transaction body has of the managed region.
pub struct Tx<'r, 't, 'm> {
    rom: &'r Romulus,
    thread: &'t PThread<'m>,
    writes: Vec<(u64, u64)>,
}

impl Tx<'_, '_, '_> {
    /// Transactional read: sees the transaction's own earlier writes.
    pub fn read(&self, idx: u64) -> u64 {
        if let Some(&(_, v)) = self.writes.iter().rev().find(|(i, _)| *i == idx) {
            return v;
        }
        self.thread.read(self.rom.main_addr(idx))
    }

    /// Transactional write (buffered until commit).
    pub fn write(&mut self, idx: u64, value: u64) {
        self.writes.push((idx, value));
    }

    /// Allocate `ncells` consecutive cells from the region's persistent bump
    /// allocator (itself updated transactionally).
    pub fn alloc(&mut self, ncells: u64) -> u64 {
        let cursor = self.read(ALLOC_CELL);
        assert!(
            cursor + ncells <= self.rom.capacity,
            "Romulus region exhausted ({} cells)",
            self.rom.capacity
        );
        self.write(ALLOC_CELL, cursor + ncells);
        cursor
    }
}

/// A FIFO queue implemented as sequential code inside Romulus transactions — the
/// "Romulus" competitor series of Figure 6.
#[derive(Debug)]
pub struct RomulusQueue {
    tm: Romulus,
    /// Cell index of the head pointer.
    head: u64,
    /// Cell index of the tail pointer.
    tail: u64,
}

/// Node layout inside the region: value cell then next cell.
const NODE_CELLS: u64 = 2;

impl RomulusQueue {
    /// Create an empty queue able to hold roughly `capacity_nodes` nodes over its
    /// lifetime (nodes are bump-allocated and not reclaimed, matching the other
    /// queues in this workspace).
    pub fn new(thread: &PThread<'_>, capacity_nodes: u64) -> RomulusQueue {
        let tm = Romulus::new(thread, FIRST_USER_CELL + 3 + capacity_nodes * NODE_CELLS, 64);
        let (head, tail) = tm.transaction(thread, |tx| {
            let head = tx.alloc(1);
            let tail = tx.alloc(1);
            let sentinel = tx.alloc(NODE_CELLS);
            tx.write(sentinel, 0);
            tx.write(sentinel + 1, 0);
            tx.write(head, sentinel);
            tx.write(tail, sentinel);
            (head, tail)
        });
        RomulusQueue { tm, head, tail }
    }

    /// The underlying transactional memory (for recovery and diagnostics).
    pub fn tm(&self) -> &Romulus {
        &self.tm
    }

    /// Post-crash recovery (delegates to the TM; the queue structure needs nothing
    /// else).
    pub fn recover(&self, thread: &PThread<'_>) {
        self.tm.recover(thread);
    }

    /// Create the calling thread's handle.
    pub fn handle<'q, 't, 'm>(&'q self, thread: &'t PThread<'m>) -> RomulusQueueHandle<'q, 't, 'm> {
        RomulusQueueHandle { queue: self, thread }
    }

    /// Count elements (runs a read transaction).
    pub fn len(&self, thread: &PThread<'_>) -> usize {
        self.tm.transaction(thread, |tx| {
            let mut count = 0;
            let mut node = tx.read(self.head);
            loop {
                let next = tx.read(node + 1);
                if next == 0 {
                    break;
                }
                count += 1;
                node = next;
            }
            count
        })
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self, thread: &PThread<'_>) -> bool {
        self.len(thread) == 0
    }
}

/// Per-thread handle for the Romulus queue.
#[derive(Debug)]
pub struct RomulusQueueHandle<'q, 't, 'm> {
    queue: &'q RomulusQueue,
    thread: &'t PThread<'m>,
}

impl RomulusQueueHandle<'_, '_, '_> {
    /// Append `value` to the tail.
    pub fn enqueue(&mut self, value: u64) {
        let q = self.queue;
        q.tm.transaction(self.thread, |tx| {
            let node = tx.alloc(NODE_CELLS);
            tx.write(node, value);
            tx.write(node + 1, 0);
            let tail_node = tx.read(q.tail);
            tx.write(tail_node + 1, node);
            tx.write(q.tail, node);
        });
    }

    /// Remove and return the head value.
    pub fn dequeue(&mut self) -> Option<u64> {
        let q = self.queue;
        q.tm.transaction(self.thread, |tx| {
            let head_node = tx.read(q.head);
            let next = tx.read(head_node + 1);
            if next == 0 {
                return None;
            }
            let value = tx.read(next);
            tx.write(q.head, next);
            Some(value)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{install_quiet_crash_hook, catch_crash, CrashPolicy, MemConfig, Mode, PMem};
    use std::collections::HashSet;

    #[test]
    fn transactions_read_their_own_writes() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let tm = Romulus::new(&t, 64, 16);
        let out = tm.transaction(&t, |tx| {
            let cell = tx.alloc(1);
            tx.write(cell, 5);
            assert_eq!(tx.read(cell), 5);
            tx.write(cell, 6);
            tx.read(cell)
        });
        assert_eq!(out, 6);
    }

    #[test]
    fn committed_transactions_survive_a_crash() {
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        let t = mem.thread(0);
        let tm = Romulus::new(&t, 64, 16);
        let cell = tm.transaction(&t, |tx| {
            let c = tx.alloc(1);
            tx.write(c, 77);
            c
        });
        mem.crash_all();
        let t = mem.thread(0);
        tm.recover(&t);
        assert_eq!(tm.read(&t, cell), 77);
    }

    #[test]
    fn crash_mid_transaction_rolls_back_atomically() {
        install_quiet_crash_hook();
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        let t = mem.thread(0);
        let tm = Romulus::new(&t, 64, 16);
        let (a, b) = tm.transaction(&t, |tx| {
            let a = tx.alloc(1);
            let b = tx.alloc(1);
            tx.write(a, 1);
            tx.write(b, 1);
            (a, b)
        });
        // Crash somewhere inside the commit of a transaction that updates both
        // cells; after recovery the pair must be consistent (both old or both new).
        for countdown in 1..40 {
            t.set_crash_policy(CrashPolicy::Countdown(countdown));
            let attempt = catch_crash(|| {
                tm.transaction(&t, |tx| {
                    tx.write(a, 100 + countdown);
                    tx.write(b, 100 + countdown);
                })
            });
            t.disarm_crashes();
            if attempt.is_err() {
                mem.crash_all();
                tm.recover(&t);
            }
            let va = tm.read(&t, a);
            let vb = tm.read(&t, b);
            assert_eq!(va, vb, "atomicity violated after crash at countdown {countdown}");
            // Restore a known state for the next round.
            tm.transaction(&t, |tx| {
                tx.write(a, 1);
                tx.write(b, 1);
            });
        }
    }

    #[test]
    fn queue_fifo_single_thread() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let q = RomulusQueue::new(&t, 1_000);
        let mut h = q.handle(&t);
        assert_eq!(h.dequeue(), None);
        for i in 1..=100 {
            h.enqueue(i);
        }
        assert_eq!(q.len(&t), 100);
        for i in 1..=100 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn queue_is_correct_under_concurrency() {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 1_000;
        let mem = PMem::with_threads(THREADS);
        let q = RomulusQueue::new(&mem.thread(0), (THREADS as u64) * PER_THREAD + 10);
        let results: Vec<Vec<u64>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|pid| {
                    let mem = &mem;
                    let q = &q;
                    s.spawn(move || {
                        let t = mem.thread(pid);
                        let mut h = q.handle(&t);
                        let mut popped = Vec::new();
                        for i in 0..PER_THREAD {
                            h.enqueue((pid as u64) << 32 | i);
                            if let Some(v) = h.dequeue() {
                                popped.push(v);
                            }
                        }
                        popped
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let t = mem.thread(0);
        let mut h = q.handle(&t);
        let mut all: Vec<u64> = results.into_iter().flatten().collect();
        while let Some(v) = h.dequeue() {
            all.push(v);
        }
        assert_eq!(all.len(), THREADS * PER_THREAD as usize);
        let unique: HashSet<u64> = all.iter().copied().collect();
        assert_eq!(unique.len(), all.len());
    }

    #[test]
    fn queue_contents_survive_crash_and_recovery() {
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        let t = mem.thread(0);
        let q = RomulusQueue::new(&t, 100);
        {
            let mut h = q.handle(&t);
            for i in 1..=30 {
                h.enqueue(i);
            }
            for _ in 0..10 {
                let _ = h.dequeue();
            }
        }
        mem.crash_all();
        let t = mem.thread(0);
        q.recover(&t);
        let mut h = q.handle(&t);
        for i in 11..=30 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }
}
