//! The "Normalized" set: the Harris–Michael list in Timnat & Petrank's
//! three-part normalized form, run through the Persistent Normalized Simulator
//! of §7.
//!
//! The decomposition assigns each part exactly the role §7 prescribes:
//!
//! * the **generator** performs the search — a parallelizable method whose
//!   helping unlinks of marked nodes use [`NormalizedCtx::helping_cas`] (the
//!   anonymous CAS), since they target words the executor also CASes;
//! * the **executor** performs the operation's single linearizing CAS (the
//!   window link for an insert, the logical mark for a remove) with the
//!   recoverable CAS — a one-entry list, so the inline-list optimisation
//!   always applies;
//! * the **wrap-up** reports the result, and for a remove also attempts the
//!   best-effort physical unlink (helping again, so an anonymous CAS).
//!
//! `contains` is a pure parallelizable method: its generator proposes an empty
//! CAS list and the wrap-up answers from a fresh traversal.

use capsules::{BoundaryStyle, CapsuleRuntime};
use delayfree::{CasDesc, CasList, NormalizedCtx, NormalizedOp, NormalizedSimulator, WrapUp};
use pmem::{PAddr, PThread};
use rcas::RcasSpace;

use crate::api::{bool_ret, Drain, StructHandle, StructOp};
use crate::node::{
    enc, enc_addr, enc_marked, next_addr, node_of_next, snapshot_up_to, value_addr, NODE_WORDS,
    SET_RCAS_LAYOUT,
};

/// Number of user locals the handle's capsule runtime needs (inline CAS lists:
/// every set operation proposes at most one CAS).
pub const NORMALIZED_SET_LOCALS: usize = delayfree::NORMALIZED_INLINE_LOCALS;

/// The shared, persistent part of the normalized set.
#[derive(Clone, Copy, Debug)]
pub struct NormalizedSet {
    head: PAddr,
    space: RcasSpace,
    manual: bool,
    optimised: bool,
}

impl NormalizedSet {
    /// Create an empty set for `nprocs` processes. `manual` selects the
    /// hand-placed flush discipline; `optimised` the compact-frame style.
    pub fn new(thread: &PThread<'_>, nprocs: usize, manual: bool, optimised: bool) -> NormalizedSet {
        let space = RcasSpace::new(thread, nprocs, SET_RCAS_LAYOUT).with_durability(manual);
        let head = thread.alloc(1);
        space.init_word(thread, head, 0);
        if manual {
            thread.persist(head);
        }
        NormalizedSet {
            head,
            space,
            manual,
            optimised,
        }
    }

    /// The recoverable-CAS space used by this set.
    pub fn space(&self) -> &RcasSpace {
        &self.space
    }

    fn style(&self) -> BoundaryStyle {
        if self.optimised {
            BoundaryStyle::Compact
        } else {
            BoundaryStyle::General
        }
    }

    fn simulator(&self) -> NormalizedSimulator {
        NormalizedSimulator::new(self.space, self.manual).with_inline_lists()
    }

    /// Create the calling thread's handle (allocating its capsule frame).
    pub fn handle<'q, 't, 'm>(&'q self, thread: &'t PThread<'m>) -> NormalizedSetHandle<'q, 't, 'm> {
        let rt = CapsuleRuntime::new(thread, self.style(), NORMALIZED_SET_LOCALS);
        NormalizedSetHandle {
            set: self,
            sim: self.simulator(),
            rt,
        }
    }

    /// Re-attach a handle after a restart (resumes from the restart pointer).
    pub fn attach_handle<'q, 't, 'm>(
        &'q self,
        thread: &'t PThread<'m>,
    ) -> NormalizedSetHandle<'q, 't, 'm> {
        let rt =
            CapsuleRuntime::attach_from_restart_pointer(thread, self.style(), NORMALIZED_SET_LOCALS);
        NormalizedSetHandle {
            set: self,
            sim: self.simulator(),
            rt,
        }
    }

    /// Harris–Michael search inside a parallelizable method: anonymous helping
    /// unlinks via the ctx, restart from the head on a lost race.
    fn find(&self, ctx: &mut NormalizedCtx<'_, '_, '_>, k: u64) -> Window {
        'retry: loop {
            let mut pred_addr = self.head;
            let mut pred_enc = ctx.read(pred_addr);
            loop {
                let curr = enc_addr(pred_enc);
                if curr.is_null() {
                    return Window {
                        pred_addr,
                        pred_enc,
                        curr,
                        curr_enc: 0,
                        found: false,
                    };
                }
                let curr_enc = ctx.read(next_addr(curr));
                if enc_marked(curr_enc) {
                    let unmarked = enc(enc_addr(curr_enc), false);
                    if !ctx.helping_cas(pred_addr, pred_enc, unmarked) {
                        continue 'retry;
                    }
                    if self.manual {
                        ctx.thread().flush(pred_addr);
                    }
                    pred_enc = unmarked;
                    continue;
                }
                let ck = ctx.read_plain(value_addr(curr));
                if ck >= k {
                    return Window {
                        pred_addr,
                        pred_enc,
                        curr,
                        curr_enc,
                        found: ck == k,
                    };
                }
                pred_addr = next_addr(curr);
                pred_enc = curr_enc;
            }
        }
    }

    /// Count the unmarked keys (diagnostic; not linearizable).
    pub fn len(&self, thread: &PThread<'_>) -> usize {
        let mut count = 0;
        let mut node = enc_addr(self.space.read(thread, self.head));
        while !node.is_null() {
            let next = self.space.read(thread, next_addr(node));
            if !enc_marked(next) {
                count += 1;
            }
            node = enc_addr(next);
        }
        count
    }
}

struct Window {
    pred_addr: PAddr,
    pred_enc: u64,
    curr: PAddr,
    curr_enc: u64,
    found: bool,
}

/// The normalized insert: the generator searches (and allocates the node); the
/// executor links it; the wrap-up reports. An empty CAS list means the key was
/// already present.
struct InsertOp {
    set: NormalizedSet,
}

impl NormalizedOp for InsertOp {
    type Input = u64;
    type Output = bool;

    fn generator(&self, ctx: &mut NormalizedCtx<'_, '_, '_>, k: &u64) -> CasList {
        let s = &self.set;
        let w = s.find(ctx, *k);
        if w.found {
            return Vec::new();
        }
        let node = ctx.alloc(NODE_WORDS);
        ctx.write_private(value_addr(node), *k);
        s.space.init_word(ctx.thread(), next_addr(node), w.pred_enc);
        if s.manual {
            ctx.persist(node);
        }
        vec![CasDesc::new(w.pred_addr, w.pred_enc, enc(node, false))]
    }

    fn wrap_up(
        &self,
        _ctx: &mut NormalizedCtx<'_, '_, '_>,
        _k: &u64,
        cas_list: &CasList,
        executed: usize,
    ) -> WrapUp<bool> {
        if cas_list.is_empty() {
            return WrapUp::Done(false);
        }
        if executed == cas_list.len() {
            WrapUp::Done(true)
        } else {
            WrapUp::Restart
        }
    }
}

/// The normalized remove: the executor performs only the logical mark (the
/// linearization point); the physical unlink is wrap-up helping. The CAS
/// descriptor's `aux` word carries the predecessor word's address for that
/// unlink.
struct RemoveOp {
    set: NormalizedSet,
}

impl NormalizedOp for RemoveOp {
    type Input = u64;
    type Output = bool;

    fn generator(&self, ctx: &mut NormalizedCtx<'_, '_, '_>, k: &u64) -> CasList {
        let s = &self.set;
        let w = s.find(ctx, *k);
        if !w.found {
            return Vec::new();
        }
        vec![
            CasDesc::new(next_addr(w.curr), w.curr_enc, w.curr_enc | 1)
                .with_aux(w.pred_addr.to_raw()),
        ]
    }

    fn wrap_up(
        &self,
        ctx: &mut NormalizedCtx<'_, '_, '_>,
        _k: &u64,
        cas_list: &CasList,
        executed: usize,
    ) -> WrapUp<bool> {
        if cas_list.is_empty() {
            return WrapUp::Done(false);
        }
        if executed != cas_list.len() {
            return WrapUp::Restart;
        }
        // Best-effort physical unlink (helping, repetition-safe): swing the
        // predecessor word from the victim to its successor.
        let c = &cas_list[0];
        let pred_addr = PAddr::from_raw(c.aux);
        let victim = node_of_next(c.obj);
        if ctx.helping_cas(pred_addr, enc(victim, false), c.expected) && self.set.manual {
            ctx.thread().flush(pred_addr);
        }
        WrapUp::Done(true)
    }
}

/// The normalized contains: a pure parallelizable method (empty CAS list; the
/// wrap-up traverses and answers).
struct ContainsOp {
    set: NormalizedSet,
}

impl NormalizedOp for ContainsOp {
    type Input = u64;
    type Output = bool;

    fn generator(&self, _ctx: &mut NormalizedCtx<'_, '_, '_>, _k: &u64) -> CasList {
        Vec::new()
    }

    fn wrap_up(
        &self,
        ctx: &mut NormalizedCtx<'_, '_, '_>,
        k: &u64,
        _cas_list: &CasList,
        _executed: usize,
    ) -> WrapUp<bool> {
        let s = &self.set;
        let mut node = enc_addr(ctx.read(s.head));
        while !node.is_null() {
            let next = ctx.read(next_addr(node));
            let ck = ctx.read_plain(value_addr(node));
            if !enc_marked(next) {
                if ck == *k {
                    return WrapUp::Done(true);
                }
                if ck > *k {
                    return WrapUp::Done(false);
                }
            }
            node = enc_addr(next);
        }
        WrapUp::Done(false)
    }
}

/// Per-thread handle for the normalized set.
pub struct NormalizedSetHandle<'q, 't, 'm> {
    set: &'q NormalizedSet,
    sim: NormalizedSimulator,
    rt: CapsuleRuntime<'t, 'm>,
}

impl<'q, 't, 'm> NormalizedSetHandle<'q, 't, 'm> {
    /// Access the underlying capsule runtime (metrics, crash flavour…).
    pub fn runtime_mut(&mut self) -> &mut CapsuleRuntime<'t, 'm> {
        &mut self.rt
    }

    /// See [`CapsuleRuntime::set_entry_boundary`].
    pub fn set_entry_boundary(&mut self, enabled: bool) {
        self.rt.set_entry_boundary(enabled);
    }

    /// Insert `k` (detectably); returns whether it was absent.
    pub fn insert(&mut self, k: u64) -> bool {
        let op = InsertOp { set: *self.set };
        self.sim.run(&mut self.rt, &op, &k)
    }

    /// Remove `k` (detectably); returns whether it was present.
    pub fn remove(&mut self, k: u64) -> bool {
        let op = RemoveOp { set: *self.set };
        self.sim.run(&mut self.rt, &op, &k)
    }

    /// Membership test (detectably reported).
    pub fn contains(&mut self, k: u64) -> bool {
        let op = ContainsOp { set: *self.set };
        self.sim.run(&mut self.rt, &op, &k)
    }
}

impl StructHandle for NormalizedSetHandle<'_, '_, '_> {
    fn apply(&mut self, op: StructOp) -> Option<u64> {
        match op {
            StructOp::Insert(k) => bool_ret(self.insert(k)),
            StructOp::Remove(k) => bool_ret(self.remove(k)),
            StructOp::Contains(k) => bool_ret(self.contains(k)),
            other => panic!("set handle cannot apply stack operation {other:?}"),
        }
    }

    fn drain_up_to(&mut self, max: usize) -> Drain {
        let set = self.set;
        let space = set.space;
        let t = self.rt.thread();
        snapshot_up_to(
            max,
            space.read(t, set.head),
            |a| space.read(t, a),
            |a| t.read(a),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{install_quiet_crash_hook, CrashPlan, CrashPolicy, MemConfig, Mode, PMem};

    #[test]
    fn insert_remove_contains_single_thread_both_variants() {
        for optimised in [false, true] {
            let mem = PMem::with_threads(1);
            let t = mem.thread(0);
            let s = NormalizedSet::new(&t, 1, true, optimised);
            let mut h = s.handle(&t);
            assert!(h.insert(5));
            assert!(h.insert(3));
            assert!(!h.insert(5), "optimised={optimised}");
            assert!(h.contains(3));
            assert!(!h.contains(4));
            assert!(h.remove(3));
            assert!(!h.remove(3));
            assert_eq!(h.drain_up_to(16).items, vec![5]);
            assert_eq!(s.len(&t), 1);
        }
    }

    #[test]
    fn concurrent_same_key_contention_is_exact() {
        const THREADS: usize = 3;
        const ROUNDS: u64 = 250;
        let mem = PMem::with_threads(THREADS);
        let s = NormalizedSet::new(&mem.thread(0), THREADS, true, false);
        let counts: Vec<(u64, u64)> = std::thread::scope(|sc| {
            let handles: Vec<_> = (0..THREADS)
                .map(|pid| {
                    let mem = &mem;
                    let s = &s;
                    sc.spawn(move || {
                        let t = mem.thread(pid);
                        let mut h = s.handle(&t);
                        let (mut ins, mut rem) = (0, 0);
                        for r in 0..ROUNDS {
                            let k = r % 5;
                            if h.insert(k) {
                                ins += 1;
                            }
                            if h.remove(k) {
                                rem += 1;
                            }
                        }
                        (ins, rem)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let total_ins: u64 = counts.iter().map(|c| c.0).sum();
        let total_rem: u64 = counts.iter().map(|c| c.1).sum();
        let t = mem.thread(0);
        let mut h = s.handle(&t);
        let left = h.drain_up_to(64).items;
        assert_eq!(total_ins, total_rem + left.len() as u64);
    }

    #[test]
    fn operations_survive_random_crashes() {
        install_quiet_crash_hook();
        for optimised in [false, true] {
            let mem = PMem::with_threads(1);
            let t = mem.thread(0);
            let s = NormalizedSet::new(&t, 1, true, optimised);
            let mut h = s.handle(&t);
            t.set_crash_policy(CrashPolicy::Random { prob: 0.02, seed: 47 });
            let mut model = std::collections::BTreeSet::new();
            for r in 0..400u64 {
                let k = (r * 11) % 13;
                if r % 3 == 2 {
                    assert_eq!(h.remove(k), model.remove(&k), "optimised={optimised} round {r}");
                } else {
                    assert_eq!(h.insert(k), model.insert(k), "optimised={optimised} round {r}");
                }
            }
            t.disarm_crashes();
            let left = h.drain_up_to(64).items;
            assert_eq!(left, model.iter().copied().collect::<Vec<u64>>());
        }
    }

    #[test]
    fn manual_durability_survives_full_system_crash() {
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        let t = mem.thread(0);
        let s = NormalizedSet::new(&t, 1, true, false);
        {
            let mut h = s.handle(&t);
            for k in [9, 2, 6] {
                assert!(h.insert(k));
            }
            assert!(h.remove(6));
        }
        mem.crash_all();
        let t = mem.thread(0);
        let mut h = s.attach_handle(&t);
        assert_eq!(h.drain_up_to(16).items, vec![2, 9]);
    }

    /// dfck-style exhaustive enumeration at the crate level (single + nested
    /// schedules, both crash flavours), mirroring the queue simulators' tests.
    #[test]
    fn exhaustive_crash_point_sweep_is_exact() {
        install_quiet_crash_hook();
        type History = (Vec<Option<u64>>, Vec<u64>);
        let run = |plan: Option<CrashPlan>, system: bool| -> (History, u64, u64) {
            let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
            let t = mem.thread(0);
            let s = NormalizedSet::new(&t, 1, true, false);
            let mut h = s.handle(&t);
            h.runtime_mut().set_system_crashes(system);
            assert!(h.insert(10));
            assert!(h.insert(20));
            mem.persist_everything();
            let _ = t.take_stats();
            if let Some(p) = plan {
                t.set_crash_schedule(p);
            }
            let rets = vec![
                h.apply(StructOp::Insert(15)),
                h.apply(StructOp::Insert(15)),
                h.apply(StructOp::Remove(10)),
                h.apply(StructOp::Contains(15)),
                h.apply(StructOp::Remove(99)),
            ];
            let points = t.stats().crash_points;
            t.disarm_crashes();
            let drained = h.drain_up_to(8);
            assert!(!drained.truncated);
            ((rets, drained.items), points, h.runtime_mut().metrics().recovery_crashes)
        };
        for system in [false, true] {
            let (base, n, _) = run(None, system);
            assert_eq!(
                base,
                (
                    vec![Some(1), Some(0), Some(1), Some(1), Some(0)],
                    vec![15, 20]
                )
            );
            assert!(n > 0);
            let mut nested_recovery_crashes = 0;
            for k in 0..n {
                let (hist, _, _) = run(Some(CrashPlan::once(k)), system);
                assert_eq!(hist, base, "system={system} crash at point {k}");
                let (hist, _, rc) = run(Some(CrashPlan::nested(k, &[0])), system);
                assert_eq!(hist, base, "system={system} nested crash at point {k}");
                nested_recovery_crashes += rc;
            }
            assert!(
                nested_recovery_crashes > 0,
                "the nested sweep must interrupt at least one recovery (system={system})"
            );
        }
    }
}
