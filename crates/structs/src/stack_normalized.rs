//! The "Normalized" stack: the Treiber stack expressed as a normalized data
//! structure (CAS generator / executor / wrap-up) and run through the
//! Persistent Normalized Simulator of §7 — the stack-shaped sibling of
//! [`queues::NormalizedQueue`].
//!
//! Both operations decompose trivially: the generator observes `top` and
//! proposes the single executor CAS (push additionally allocates and
//! initialises the node — private writes, safe to repeat); the wrap-up reports
//! the result (a pop's value travels in the CAS descriptor's `aux` word, the
//! same trick the normalized dequeue uses). An empty stack yields an empty CAS
//! list and the wrap-up answers `None` directly.

use capsules::{BoundaryStyle, CapsuleRuntime};
use delayfree::{CasDesc, CasList, NormalizedCtx, NormalizedOp, NormalizedSimulator, WrapUp};
use pmem::{PAddr, PThread};
use rcas::{RcasLayout, RcasSpace};

use crate::api::{drain_by_pops, Drain, StructHandle, StructOp};
use crate::node::{next_addr, value_addr, NODE_WORDS};

/// Number of user locals the handle's capsule runtime needs (inline CAS lists
/// always fit: every stack operation proposes at most one CAS).
pub const NORMALIZED_STACK_LOCALS: usize = delayfree::NORMALIZED_INLINE_LOCALS;

/// The shared, persistent part of the normalized stack.
#[derive(Clone, Copy, Debug)]
pub struct NormalizedStack {
    /// Recoverable-CAS word holding the top node address.
    top: PAddr,
    space: RcasSpace,
    manual: bool,
    optimised: bool,
}

impl NormalizedStack {
    /// Create an empty stack for `nprocs` processes. `manual` selects the
    /// hand-placed flush discipline; `optimised` the compact-frame + inline
    /// CAS-list configuration (the `-Opt` style of the queues).
    pub fn new(
        thread: &PThread<'_>,
        nprocs: usize,
        manual: bool,
        optimised: bool,
    ) -> NormalizedStack {
        let space = RcasSpace::new(thread, nprocs, RcasLayout::DEFAULT).with_durability(manual);
        let top = thread.alloc(1);
        space.init_word(thread, top, 0);
        if manual {
            thread.persist(top);
        }
        NormalizedStack {
            top,
            space,
            manual,
            optimised,
        }
    }

    /// The recoverable-CAS space used by this stack.
    pub fn space(&self) -> &RcasSpace {
        &self.space
    }

    fn style(&self) -> BoundaryStyle {
        if self.optimised {
            BoundaryStyle::Compact
        } else {
            BoundaryStyle::General
        }
    }

    fn simulator(&self) -> NormalizedSimulator {
        // Stack CAS lists have at most one entry, so they always fit inline.
        NormalizedSimulator::new(self.space, self.manual).with_inline_lists()
    }

    /// Create the calling thread's handle (allocating its capsule frame).
    pub fn handle<'q, 't, 'm>(
        &'q self,
        thread: &'t PThread<'m>,
    ) -> NormalizedStackHandle<'q, 't, 'm> {
        let rt = CapsuleRuntime::new(thread, self.style(), NORMALIZED_STACK_LOCALS);
        NormalizedStackHandle {
            stack: self,
            sim: self.simulator(),
            rt,
        }
    }

    /// Re-attach a handle after a restart (resumes from the restart pointer).
    pub fn attach_handle<'q, 't, 'm>(
        &'q self,
        thread: &'t PThread<'m>,
    ) -> NormalizedStackHandle<'q, 't, 'm> {
        let rt = CapsuleRuntime::attach_from_restart_pointer(
            thread,
            self.style(),
            NORMALIZED_STACK_LOCALS,
        );
        NormalizedStackHandle {
            stack: self,
            sim: self.simulator(),
            rt,
        }
    }

    /// Count the elements reachable from the top (diagnostic; not linearizable).
    pub fn len(&self, thread: &PThread<'_>) -> usize {
        let mut count = 0;
        let mut node = PAddr::from_raw(self.space.read(thread, self.top));
        while !node.is_null() {
            count += 1;
            node = PAddr::from_raw(thread.read(next_addr(node)));
        }
        count
    }
}

/// The normalized push: the generator allocates the node and proposes the top
/// swing; the wrap-up has nothing left to do.
struct PushOp {
    stack: NormalizedStack,
}

impl NormalizedOp for PushOp {
    type Input = u64;
    type Output = ();

    fn generator(&self, ctx: &mut NormalizedCtx<'_, '_, '_>, value: &u64) -> CasList {
        let s = &self.stack;
        // Allocate and initialise the node (private persistent writes;
        // repetition just rebuilds an unpublished node).
        let node = ctx.alloc(NODE_WORDS);
        ctx.write_private(value_addr(node), *value);
        let top = ctx.read(s.top);
        ctx.write_private(next_addr(node), top);
        if s.manual {
            ctx.persist(node);
        }
        vec![CasDesc::new(s.top, top, node.to_raw())]
    }

    fn wrap_up(
        &self,
        _ctx: &mut NormalizedCtx<'_, '_, '_>,
        _value: &u64,
        cas_list: &CasList,
        executed: usize,
    ) -> WrapUp<()> {
        if executed == cas_list.len() {
            // The executor (in durable mode) already persisted the top it swung.
            WrapUp::Done(())
        } else {
            WrapUp::Restart
        }
    }
}

/// The normalized pop: the generator proposes the top swing (or an empty list
/// when the stack is empty); the wrap-up reports the value carried in `aux`.
struct PopOp {
    stack: NormalizedStack,
}

impl NormalizedOp for PopOp {
    type Input = ();
    type Output = Option<u64>;

    fn generator(&self, ctx: &mut NormalizedCtx<'_, '_, '_>, _input: &()) -> CasList {
        let s = &self.stack;
        let top = PAddr::from_raw(ctx.read(s.top));
        if top.is_null() {
            return Vec::new(); // empty stack: nothing to CAS
        }
        let next = ctx.read_plain(next_addr(top));
        let value = ctx.read_plain(value_addr(top));
        vec![CasDesc::new(s.top, top.to_raw(), next).with_aux(value)]
    }

    fn wrap_up(
        &self,
        _ctx: &mut NormalizedCtx<'_, '_, '_>,
        _input: &(),
        cas_list: &CasList,
        executed: usize,
    ) -> WrapUp<Option<u64>> {
        if cas_list.is_empty() {
            return WrapUp::Done(None);
        }
        if executed == cas_list.len() {
            WrapUp::Done(Some(cas_list[0].aux))
        } else {
            WrapUp::Restart
        }
    }
}

/// Per-thread handle for the normalized stack.
pub struct NormalizedStackHandle<'q, 't, 'm> {
    stack: &'q NormalizedStack,
    sim: NormalizedSimulator,
    rt: CapsuleRuntime<'t, 'm>,
}

impl<'q, 't, 'm> NormalizedStackHandle<'q, 't, 'm> {
    /// Access the underlying capsule runtime (metrics, crash flavour…).
    pub fn runtime_mut(&mut self) -> &mut CapsuleRuntime<'t, 'm> {
        &mut self.rt
    }

    /// See [`CapsuleRuntime::set_entry_boundary`].
    pub fn set_entry_boundary(&mut self, enabled: bool) {
        self.rt.set_entry_boundary(enabled);
    }

    /// Push `value` onto the stack (detectably).
    pub fn push(&mut self, value: u64) {
        let op = PushOp { stack: *self.stack };
        self.sim.run(&mut self.rt, &op, &value)
    }

    /// Pop the top of the stack (detectably).
    pub fn pop(&mut self) -> Option<u64> {
        let op = PopOp { stack: *self.stack };
        self.sim.run(&mut self.rt, &op, &())
    }
}

impl StructHandle for NormalizedStackHandle<'_, '_, '_> {
    fn apply(&mut self, op: StructOp) -> Option<u64> {
        match op {
            StructOp::Push(v) => {
                self.push(v);
                None
            }
            StructOp::Pop => self.pop(),
            other => panic!("stack handle cannot apply set operation {other:?}"),
        }
    }

    fn drain_up_to(&mut self, max: usize) -> Drain {
        drain_by_pops(max, || self.pop())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{install_quiet_crash_hook, CrashPlan, CrashPolicy, MemConfig, Mode, PMem};
    use std::collections::HashSet;

    #[test]
    fn lifo_order_single_thread_both_variants() {
        for optimised in [false, true] {
            let mem = PMem::with_threads(1);
            let s = NormalizedStack::new(&mem.thread(0), 1, true, optimised);
            let t = mem.thread(0);
            let mut h = s.handle(&t);
            assert_eq!(h.pop(), None);
            for i in 1..=200 {
                h.push(i);
            }
            assert_eq!(s.len(&t), 200);
            for i in (1..=200).rev() {
                assert_eq!(h.pop(), Some(i), "optimised={optimised}");
            }
            assert_eq!(h.pop(), None);
        }
    }

    #[test]
    fn concurrent_elements_are_neither_lost_nor_duplicated() {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 1_500;
        let mem = PMem::with_threads(THREADS);
        let s = NormalizedStack::new(&mem.thread(0), THREADS, true, false);
        let results: Vec<Vec<u64>> = std::thread::scope(|sc| {
            let handles: Vec<_> = (0..THREADS)
                .map(|pid| {
                    let mem = &mem;
                    let s = &s;
                    sc.spawn(move || {
                        let t = mem.thread(pid);
                        let mut h = s.handle(&t);
                        let mut popped = Vec::new();
                        for i in 0..PER_THREAD {
                            h.push((pid as u64) << 32 | i);
                            if let Some(v) = h.pop() {
                                popped.push(v);
                            }
                        }
                        popped
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let t = mem.thread(0);
        let mut h = s.handle(&t);
        let mut all: Vec<u64> = results.into_iter().flatten().collect();
        while let Some(v) = h.pop() {
            all.push(v);
        }
        assert_eq!(all.len(), THREADS * PER_THREAD as usize);
        let unique: HashSet<u64> = all.iter().copied().collect();
        assert_eq!(unique.len(), all.len());
    }

    #[test]
    fn operations_survive_random_crashes() {
        install_quiet_crash_hook();
        for optimised in [false, true] {
            let mem = PMem::with_threads(1);
            let s = NormalizedStack::new(&mem.thread(0), 1, true, optimised);
            let t = mem.thread(0);
            let mut h = s.handle(&t);
            t.set_crash_policy(CrashPolicy::Random { prob: 0.02, seed: 23 });
            for i in 1..=300u64 {
                h.push(i);
            }
            let mut out = Vec::new();
            while let Some(v) = h.pop() {
                out.push(v);
            }
            t.disarm_crashes();
            assert_eq!(out, (1..=300).rev().collect::<Vec<u64>>(), "optimised={optimised}");
        }
    }

    /// dfck-style exhaustive enumeration at the crate level, mirroring the
    /// queue simulators' exhaustive tests (single + nested schedules, both
    /// crash flavours).
    #[test]
    fn exhaustive_crash_point_sweep_is_exact() {
        install_quiet_crash_hook();
        let run = |plan: Option<CrashPlan>, system: bool| -> (Vec<Option<u64>>, Vec<u64>, u64, u64) {
            let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
            let t = mem.thread(0);
            let s = NormalizedStack::new(&t, 1, true, false);
            let mut h = s.handle(&t);
            h.runtime_mut().set_system_crashes(system);
            h.push(100);
            mem.persist_everything();
            let _ = t.take_stats();
            if let Some(p) = plan {
                t.set_crash_schedule(p);
            }
            let mut rets = Vec::new();
            h.push(1);
            rets.push(None);
            rets.push(h.pop());
            h.push(2);
            rets.push(None);
            rets.push(h.pop());
            rets.push(h.pop());
            let points = t.stats().crash_points;
            t.disarm_crashes();
            let drained = h.drain_up_to(8);
            assert!(!drained.truncated);
            (rets, drained.items, points, h.runtime_mut().metrics().recovery_crashes)
        };
        for system in [false, true] {
            let (base_rets, base_drain, n, _) = run(None, system);
            assert_eq!(base_rets, vec![None, Some(1), None, Some(2), Some(100)]);
            assert_eq!(base_drain, Vec::<u64>::new());
            assert!(n > 0);
            let mut nested_recovery_crashes = 0;
            for k in 0..n {
                let (rets, drain, _, _) = run(Some(CrashPlan::once(k)), system);
                assert_eq!(rets, base_rets, "system={system} crash at point {k}");
                assert_eq!(drain, base_drain, "system={system} crash at point {k}");
                let (rets, drain, _, rc) = run(Some(CrashPlan::nested(k, &[0])), system);
                assert_eq!(rets, base_rets, "system={system} nested crash at point {k}");
                assert_eq!(drain, base_drain, "system={system} nested crash at point {k}");
                nested_recovery_crashes += rc;
            }
            assert!(
                nested_recovery_crashes > 0,
                "the nested sweep must interrupt at least one recovery (system={system})"
            );
        }
    }
}
