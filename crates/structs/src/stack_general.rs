//! The "General" stack: the Treiber stack transformed by the
//! Low-Computation-Delay (CAS-Read) simulator of §6 — the stack-shaped sibling
//! of [`queues::GeneralQueue`].
//!
//! Every operation is a two-capsule program: a read-only capsule observes `top`
//! (and, for a push, allocates and initialises the node — private persistent
//! writes, safe to repeat), then a CAS-Read capsule performs the single
//! recoverable CAS on `top` as its first shared-memory effect. The stack is the
//! minimal exercise of the construction — one contended word, one CAS per
//! operation — which makes it the sharpest detectability probe: *every* crash
//! point is adjacent to the linearization point.

use capsules::{recoverable_cas, BoundaryStyle, CapsuleRuntime, CapsuleStep};
use pmem::{PAddr, PThread};
use rcas::{RcasLayout, RcasSpace};

use crate::api::{drain_by_pops, Drain, StructHandle, StructOp};
use crate::node::{next_addr, value_addr, NODE_WORDS};

// Persisted local slots (user indices).
const L_VAL: usize = 0; // push: value; pop: value to return
const L_NODE: usize = 1; // push: the new node; pop: the observed successor
const L_TOP: usize = 2; // the observed top
/// Number of user locals a handle's capsule runtime uses.
pub const STACK_GENERAL_LOCALS: usize = 3;

// Push program counters.
const S_START: u32 = 0;
const S_CAS: u32 = 1;
const S_DONE: u32 = 2;
// Pop program counters.
const P_START: u32 = 10;
const P_CAS: u32 = 11;
const P_DONE_SOME: u32 = 12;
const P_DONE_NONE: u32 = 13;

/// The shared, persistent part of the transformed stack.
#[derive(Clone, Copy, Debug)]
pub struct GeneralStack {
    top: PAddr,
    space: RcasSpace,
    manual: bool,
    style: BoundaryStyle,
}

impl GeneralStack {
    /// Create an empty stack for `nprocs` processes. `manual` selects the
    /// hand-placed flush discipline (`Durability::Manual` semantics: the
    /// recoverable-CAS layer adopts the durable-announcement discipline of
    /// DESIGN.md §7, and the stack persists nodes before publishing them).
    pub fn new(
        thread: &PThread<'_>,
        nprocs: usize,
        manual: bool,
        style: BoundaryStyle,
    ) -> GeneralStack {
        let space = RcasSpace::new(thread, nprocs, RcasLayout::DEFAULT).with_durability(manual);
        let top = thread.alloc(1);
        space.init_word(thread, top, 0);
        if manual {
            thread.persist(top);
        }
        GeneralStack {
            top,
            space,
            manual,
            style,
        }
    }

    /// The recoverable-CAS space used by this stack.
    pub fn space(&self) -> &RcasSpace {
        &self.space
    }

    /// Create the calling thread's handle (allocating its capsule frame).
    pub fn handle<'q, 't, 'm>(&'q self, thread: &'t PThread<'m>) -> GeneralStackHandle<'q, 't, 'm> {
        let rt = CapsuleRuntime::new(thread, self.style, STACK_GENERAL_LOCALS);
        GeneralStackHandle { stack: self, rt }
    }

    /// Re-attach a handle after a restart (resumes from the restart pointer).
    pub fn attach_handle<'q, 't, 'm>(
        &'q self,
        thread: &'t PThread<'m>,
    ) -> GeneralStackHandle<'q, 't, 'm> {
        let rt =
            CapsuleRuntime::attach_from_restart_pointer(thread, self.style, STACK_GENERAL_LOCALS);
        GeneralStackHandle { stack: self, rt }
    }

    /// Count the elements reachable from the top (diagnostic; not linearizable).
    pub fn len(&self, thread: &PThread<'_>) -> usize {
        let mut count = 0;
        let mut node = PAddr::from_raw(self.space.read(thread, self.top));
        while !node.is_null() {
            count += 1;
            node = PAddr::from_raw(thread.read(next_addr(node)));
        }
        count
    }

    /// Flush + fence a line, per the manual-durability discipline (compact-frame
    /// handles elide the fence before a CAS, as the -Opt queues do: the lock
    /// prefix orders the pending flush).
    fn persist_line(&self, thread: &PThread<'_>, addr: PAddr) {
        if !self.manual {
            return;
        }
        thread.flush(addr);
        if self.style != BoundaryStyle::Compact {
            thread.fence();
        }
    }

    /// Flush + fence unconditionally: for persists followed by a capsule
    /// boundary, whose release-store control write (unlike a locked CAS) does
    /// not order earlier flushes — the frame could persist without the node.
    fn persist_line_before_boundary(&self, thread: &PThread<'_>, addr: PAddr) {
        if !self.manual {
            return;
        }
        thread.flush(addr);
        thread.fence();
    }
}

/// Per-thread handle: the thread's capsule runtime plus a reference to the stack.
pub struct GeneralStackHandle<'q, 't, 'm> {
    stack: &'q GeneralStack,
    rt: CapsuleRuntime<'t, 'm>,
}

impl<'q, 't, 'm> GeneralStackHandle<'q, 't, 'm> {
    /// Access the underlying capsule runtime (metrics, crash flavour…).
    pub fn runtime_mut(&mut self) -> &mut CapsuleRuntime<'t, 'm> {
        &mut self.rt
    }

    /// See [`CapsuleRuntime::set_entry_boundary`].
    pub fn set_entry_boundary(&mut self, enabled: bool) {
        self.rt.set_entry_boundary(enabled);
    }

    /// Push `value` onto the stack (detectably: exactly-once under any crash
    /// schedule).
    pub fn push(&mut self, value: u64) {
        let stack = self.stack;
        let space = stack.space;
        self.rt.set_local(L_VAL, value);
        self.rt.run_op(S_START, |rt| {
            match rt.pc() {
                // Read-only capsule: allocate and initialise the node, observe top.
                S_START => {
                    let value = rt.local(L_VAL);
                    let t = rt.thread();
                    let node = t.alloc(NODE_WORDS);
                    t.write(value_addr(node), value);
                    let top = space.read(t, stack.top);
                    t.write(next_addr(node), top);
                    // The S_CAS boundary (not a CAS) publishes the node pointer
                    // next, so the fence cannot be elided here.
                    stack.persist_line_before_boundary(t, node);
                    rt.set_local_addr(L_NODE, node);
                    rt.set_local(L_TOP, top);
                    rt.boundary(S_CAS);
                    CapsuleStep::Continue
                }
                // CAS-Read capsule: swing top to the new node.
                S_CAS => {
                    let node = rt.local(L_NODE);
                    let top = rt.local(L_TOP);
                    let ok = recoverable_cas(rt, &space, stack.top, top, node);
                    if ok {
                        stack.persist_line(rt.thread(), stack.top);
                        rt.finish_boundary(S_DONE);
                        CapsuleStep::Done(())
                    } else {
                        rt.boundary(S_START);
                        CapsuleStep::Continue
                    }
                }
                // The final boundary had been published before a crash: done.
                S_DONE => CapsuleStep::Done(()),
                pc => unreachable!("general stack push: unexpected pc {pc}"),
            }
        })
    }

    /// Pop the top of the stack (detectably).
    pub fn pop(&mut self) -> Option<u64> {
        let stack = self.stack;
        let space = stack.space;
        self.rt.run_op(P_START, |rt| {
            match rt.pc() {
                // Read-only capsule: observe top, its successor and its value.
                P_START => {
                    let t = rt.thread();
                    let top = PAddr::from_raw(space.read(t, stack.top));
                    if top.is_null() {
                        rt.finish_boundary(P_DONE_NONE);
                        return CapsuleStep::Done(None);
                    }
                    let next = t.read(next_addr(top));
                    let value = t.read(value_addr(top));
                    rt.set_local(L_VAL, value);
                    rt.set_local_addr(L_TOP, top);
                    rt.set_local(L_NODE, next);
                    rt.boundary(P_CAS);
                    CapsuleStep::Continue
                }
                // CAS-Read capsule: swing top past the popped node.
                P_CAS => {
                    let top = rt.local(L_TOP);
                    let next = rt.local(L_NODE);
                    let ok = recoverable_cas(rt, &space, stack.top, top, next);
                    if ok {
                        stack.persist_line(rt.thread(), stack.top);
                        let value = rt.local(L_VAL);
                        rt.finish_boundary(P_DONE_SOME);
                        CapsuleStep::Done(Some(value))
                    } else {
                        rt.boundary(P_START);
                        CapsuleStep::Continue
                    }
                }
                P_DONE_SOME => CapsuleStep::Done(Some(rt.local(L_VAL))),
                P_DONE_NONE => CapsuleStep::Done(None),
                pc => unreachable!("general stack pop: unexpected pc {pc}"),
            }
        })
    }
}

impl StructHandle for GeneralStackHandle<'_, '_, '_> {
    fn apply(&mut self, op: StructOp) -> Option<u64> {
        match op {
            StructOp::Push(v) => {
                self.push(v);
                None
            }
            StructOp::Pop => self.pop(),
            other => panic!("stack handle cannot apply set operation {other:?}"),
        }
    }

    fn drain_up_to(&mut self, max: usize) -> Drain {
        drain_by_pops(max, || self.pop())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{install_quiet_crash_hook, CrashPlan, CrashPolicy, MemConfig, Mode, PMem};
    use std::collections::HashSet;

    #[test]
    fn lifo_order_single_thread_both_styles() {
        for style in [BoundaryStyle::General, BoundaryStyle::Compact] {
            let mem = PMem::with_threads(1);
            let s = GeneralStack::new(&mem.thread(0), 1, true, style);
            let t = mem.thread(0);
            let mut h = s.handle(&t);
            assert_eq!(h.pop(), None);
            for i in 1..=200 {
                h.push(i);
            }
            for i in (1..=200).rev() {
                assert_eq!(h.pop(), Some(i), "style {style:?}");
            }
            assert_eq!(h.pop(), None);
        }
    }

    #[test]
    fn concurrent_elements_are_neither_lost_nor_duplicated() {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 1_500;
        let mem = PMem::with_threads(THREADS);
        let s = GeneralStack::new(&mem.thread(0), THREADS, true, BoundaryStyle::General);
        let results: Vec<Vec<u64>> = std::thread::scope(|sc| {
            let handles: Vec<_> = (0..THREADS)
                .map(|pid| {
                    let mem = &mem;
                    let s = &s;
                    sc.spawn(move || {
                        let t = mem.thread(pid);
                        let mut h = s.handle(&t);
                        let mut popped = Vec::new();
                        for i in 0..PER_THREAD {
                            h.push((pid as u64) << 32 | i);
                            if let Some(v) = h.pop() {
                                popped.push(v);
                            }
                        }
                        popped
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let t = mem.thread(0);
        let mut h = s.handle(&t);
        let mut all: Vec<u64> = results.into_iter().flatten().collect();
        while let Some(v) = h.pop() {
            all.push(v);
        }
        assert_eq!(all.len(), THREADS * PER_THREAD as usize);
        let unique: HashSet<u64> = all.iter().copied().collect();
        assert_eq!(unique.len(), all.len());
    }

    #[test]
    fn operations_survive_random_crashes() {
        install_quiet_crash_hook();
        let mem = PMem::with_threads(1);
        let s = GeneralStack::new(&mem.thread(0), 1, true, BoundaryStyle::General);
        let t = mem.thread(0);
        let mut h = s.handle(&t);
        t.set_crash_policy(CrashPolicy::Random { prob: 0.02, seed: 17 });
        for i in 1..=300u64 {
            h.push(i);
        }
        let mut out = Vec::new();
        while let Some(v) = h.pop() {
            out.push(v);
        }
        t.disarm_crashes();
        assert_eq!(out, (1..=300).rev().collect::<Vec<u64>>(), "exactly-once despite crashes");
        assert!(t.stats().crashes > 0, "the policy should have fired at least once");
    }

    #[test]
    fn manual_durability_survives_full_system_crash() {
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        let s = GeneralStack::new(&mem.thread(0), 1, true, BoundaryStyle::General);
        {
            let t = mem.thread(0);
            let mut h = s.handle(&t);
            for i in 1..=20 {
                h.push(i);
            }
        }
        mem.crash_all();
        let t = mem.thread(0);
        let mut h = s.attach_handle(&t);
        for i in (1..=20).rev() {
            assert_eq!(h.pop(), Some(i));
        }
        assert_eq!(h.pop(), None);
    }

    /// dfck-style exhaustive enumeration at the crate level: every crash point
    /// of a push/push/pop/pop sequence, single and nested [k, 0] schedules,
    /// under per-process *and* full-system crash semantics (mirrors the queue
    /// simulators' exhaustive tests).
    #[test]
    fn exhaustive_crash_point_sweep_is_exact() {
        install_quiet_crash_hook();
        let run = |plan: Option<CrashPlan>, system: bool| -> (Vec<Option<u64>>, Vec<u64>, u64, u64) {
            let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
            let t = mem.thread(0);
            let s = GeneralStack::new(&t, 1, true, BoundaryStyle::General);
            let mut h = s.handle(&t);
            h.runtime_mut().set_system_crashes(system);
            h.push(100);
            mem.persist_everything();
            let _ = t.take_stats();
            if let Some(p) = plan {
                t.set_crash_schedule(p);
            }
            let mut rets = Vec::new();
            h.push(1);
            rets.push(None);
            h.push(2);
            rets.push(None);
            rets.push(h.pop());
            rets.push(h.pop());
            let points = t.stats().crash_points;
            t.disarm_crashes();
            let drained = h.drain_up_to(8);
            assert!(!drained.truncated);
            (rets, drained.items, points, h.runtime_mut().metrics().recovery_crashes)
        };
        for system in [false, true] {
            let (base_rets, base_drain, n, _) = run(None, system);
            assert_eq!(base_rets, vec![None, None, Some(2), Some(1)]);
            assert_eq!(base_drain, vec![100]);
            assert!(n > 0);
            let mut nested_recovery_crashes = 0;
            for k in 0..n {
                let (rets, drain, _, _) = run(Some(CrashPlan::once(k)), system);
                assert_eq!(rets, base_rets, "system={system} crash at point {k}");
                assert_eq!(drain, base_drain, "system={system} crash at point {k}");
                let (rets, drain, _, rc) = run(Some(CrashPlan::nested(k, &[0])), system);
                assert_eq!(rets, base_rets, "system={system} nested crash at point {k}");
                assert_eq!(drain, base_drain, "system={system} nested crash at point {k}");
                nested_recovery_crashes += rc;
            }
            assert!(
                nested_recovery_crashes > 0,
                "the nested sweep must interrupt at least one recovery (system={system})"
            );
        }
    }
}
