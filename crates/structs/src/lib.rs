//! # `structs` — detectable persistent structures beyond queues
//!
//! The paper's construction is structure-agnostic: *any* normalized lock-free
//! object gains delay-free detectable recovery. The `queues` crate exercises it
//! on the Michael–Scott FIFO queue only; this crate grows the family with the
//! two shapes the detectability literature treats as canonical (kaist-cp's
//! memento ships exactly this test set): a **Treiber-style stack** (push/pop)
//! and a **sorted linked-list set** (insert/remove/contains, Harris–Michael
//! marked-pointer scheme).
//!
//! Each structure comes in the same variant matrix as the queues:
//!
//! | variant | stack | set | construction |
//! |---|---|---|---|
//! | Izraelevitz | [`TreiberStack`] | [`ListSet`] | plain CASes; durability from [`pmem::ThreadOptions`]`{ izraelevitz: true }`; **not** detectable |
//! | General | [`GeneralStack`] | [`GeneralSet`] | CAS-Read capsules + recoverable CAS (§6), detectable |
//! | Normalized | [`NormalizedStack`] | [`NormalizedSet`] | Persistent Normalized Simulator (§7), detectable |
//!
//! The shapes stress different proof obligations than the queue ("The Path to
//! Durable Linearizability" separates them per structure): the stack's single
//! contended word makes every operation a one-CAS capsule, while the set's
//! remove is a *two*-CAS protocol (logical mark, then physical unlink) whose
//! linearization point — the mark — is the only CAS that needs exactly-once
//! recovery; unlinks are parallelizable helping and use the anonymous CAS
//! exactly as §7 prescribes for generator/wrap-up CASes.
//!
//! Every handle presents the uniform [`StructHandle`] face (word-encoded
//! returns plus the bounded `drain_up_to` quiescent history hook) so the
//! `bench::dfck_struct` exhaustive crash-point sweeper can drive the whole
//! family through one driver.

#![warn(missing_docs)]

pub mod api;
pub mod map;
pub mod map_general;
pub mod map_normalized;
pub mod node;
pub mod set;
pub mod set_general;
pub mod set_normalized;
pub mod stack;
pub mod stack_general;
pub mod stack_normalized;

pub use api::{StructHandle, StructOp};
pub use map::{map_bucket_of, map_mix64, DetMap, DetMapHandle, MapConfig, MAP_RCAS_LAYOUT};
pub use map_general::{GeneralDetMap, GeneralDetMapHandle, MAP_GENERAL_LOCALS};
pub use map_normalized::{NormalizedDetMap, NormalizedDetMapHandle, MAP_NORMALIZED_LOCALS};
pub use set::{ListSet, ListSetHandle};
pub use set_general::{GeneralSet, GeneralSetHandle, Resumption};
pub use set_normalized::{NormalizedSet, NormalizedSetHandle};
pub use stack::{TreiberStack, TreiberStackHandle};
pub use stack_general::{GeneralStack, GeneralStackHandle};
pub use stack_normalized::{NormalizedStack, NormalizedStackHandle};
