//! The "General" detectable map: the bucketed protocol of [`map`](crate::map)
//! transformed by the Low-Computation-Delay (CAS-Read) simulator of §6.
//!
//! Only two CASes in the whole protocol are linearization points that need
//! exactly-once recovery — the insert's link and the remove's tombstone mark —
//! and only those head CAS-Read capsules with [`recoverable_cas`]. Everything
//! else the map does under the hood (routing, bucket freezes, copy inserts,
//! cursor/`next`/state/directory installs — the entire resize machinery) is
//! parallelizable helping, executed with the *anonymous* CAS inside the search
//! capsule exactly as §7 prescribes for generator/wrap-up CASes: repetition
//! after a crash re-runs only operations whose repetition is invisible. The
//! no-unlink tombstone policy (see the map module docs) is what keeps the
//! remove a single-CAS protocol here — there is no unlink pc at all.
//!
//! A crash between the search capsule and the CAS capsule replays against a
//! *persisted window*; if a concurrent resize froze the window's bucket in
//! the meantime, the recoverable CAS simply fails (the expected clean
//! encoding no longer matches a frozen word — invariant 1 says marked words
//! are final) and the retry pc re-routes through the migration. Crash-safety
//! of the resize itself needs no capsule help.

use capsules::{recoverable_cas, BoundaryStyle, CapsuleRuntime, CapsuleStep};
use pmem::{PAddr, PThread};
use rcas::RcasSpace;

use crate::api::{bool_ret, Drain, StructHandle, StructOp};
use crate::map::{
    alloc_gen, contains_at, drain_map, find_in, map_len, maybe_grow, menc, route_read,
    route_update, ChainLen, FindRes, MapConfig, SpaceMem, DEL, MAP_RCAS_LAYOUT,
};
use crate::node::{next_addr, value_addr, NODE_WORDS};

// Persisted local slots (user indices).
const L_KEY: usize = 0;
const L_PRED_ADDR: usize = 1; // the word the insert link / remove mark CAS targets
const L_PRED_ENC: usize = 2; // insert: its expected (clean) encoding
const L_NODE: usize = 3; // insert: the freshly allocated node
const L_CURR_NEXT: usize = 4; // remove: address of the victim's next word
const L_CURR_ENC: usize = 5; // remove: its expected encoding / contains: result
const L_LEN: usize = 6; // insert: packed ChainLen the search observed (resize trigger)
/// Number of user locals a map handle's capsule runtime uses.
pub const MAP_GENERAL_LOCALS: usize = 7;

// Insert program counters.
const I_FIND: u32 = 0;
const I_CAS: u32 = 1;
const I_DONE_TRUE: u32 = 2;
const I_DONE_FALSE: u32 = 3;
// Remove program counters.
const R_FIND: u32 = 10;
const R_MARK: u32 = 11;
const R_DONE_TRUE: u32 = 12;
const R_DONE_FALSE: u32 = 13;
// Contains program counters.
const C_FIND: u32 = 20;
const C_DONE: u32 = 21;

/// The shared, persistent part of the transformed map.
#[derive(Clone, Copy, Debug)]
pub struct GeneralDetMap {
    dir: PAddr,
    cfg: MapConfig,
    space: RcasSpace,
    manual: bool,
    style: BoundaryStyle,
}

impl GeneralDetMap {
    /// Create an empty map for `nprocs` processes. `manual` selects the
    /// hand-placed flush discipline (fresh nodes and generations persisted
    /// before publication, CAS targets persisted after, durable announcements
    /// in the rcas layer).
    pub fn new(
        thread: &PThread<'_>,
        nprocs: usize,
        cfg: MapConfig,
        manual: bool,
        style: BoundaryStyle,
    ) -> GeneralDetMap {
        let space = RcasSpace::new(thread, nprocs, MAP_RCAS_LAYOUT).with_durability(manual);
        let g = {
            let mut m = SpaceMem {
                space: &space,
                t: thread,
                manual,
            };
            alloc_gen(&mut m, cfg.initial_buckets)
        };
        let dir = thread.alloc(1);
        space.init_word(thread, dir, g.to_raw());
        if manual {
            thread.persist(dir);
        }
        GeneralDetMap {
            dir,
            cfg,
            space,
            manual,
            style,
        }
    }

    /// The recoverable-CAS space used by this map.
    pub fn space(&self) -> &RcasSpace {
        &self.space
    }

    /// Create the calling thread's handle (allocating its capsule frame).
    pub fn handle<'q, 't, 'm>(&'q self, thread: &'t PThread<'m>) -> GeneralDetMapHandle<'q, 't, 'm> {
        let rt = CapsuleRuntime::new(thread, self.style, MAP_GENERAL_LOCALS);
        GeneralDetMapHandle { map: self, rt }
    }

    /// Live-key count (diagnostic; not linearizable).
    pub fn len(&self, thread: &PThread<'_>) -> usize {
        let mut m = SpaceMem {
            space: &self.space,
            t: thread,
            manual: self.manual,
        };
        map_len(&mut m, self.dir)
    }

    /// Flush + fence a line, per the manual-durability discipline (the compact
    /// style elides the fence before a CAS: the lock prefix orders the flush).
    fn persist_line(&self, thread: &PThread<'_>, addr: PAddr) {
        if !self.manual {
            return;
        }
        thread.flush(addr);
        if self.style != BoundaryStyle::Compact {
            thread.fence();
        }
    }

    /// Flush + fence unconditionally: for persists followed by a capsule
    /// boundary, whose release-store control write (unlike a locked CAS) does
    /// not order earlier flushes — the frame could persist without the node.
    fn persist_line_before_boundary(&self, thread: &PThread<'_>, addr: PAddr) {
        if !self.manual {
            return;
        }
        thread.flush(addr);
        thread.fence();
    }

    // ----- capsule bodies --------------------------------------------------------

    /// One insert capsule (entry pc [`I_FIND`]).
    fn insert_step(&self, rt: &mut CapsuleRuntime<'_, '_>) -> CapsuleStep<bool> {
        match rt.pc() {
            // Search capsule (reads + anonymous helping, including any resize
            // migration work the route owes): locate the window, allocate and
            // initialise the node.
            I_FIND => {
                let k = rt.local(L_KEY);
                let t = rt.thread();
                let mut m = SpaceMem {
                    space: &self.space,
                    t,
                    manual: self.manual,
                };
                let (w, len) = loop {
                    let head = route_update(&mut m, self.dir, k);
                    match find_in(&mut m, head, k) {
                        (FindRes::Frozen, _) => continue,
                        (FindRes::Win(w), len) => break (w, len),
                    }
                };
                if w.found {
                    rt.finish_boundary(I_DONE_FALSE);
                    return CapsuleStep::Done(false);
                }
                let node = t.alloc(NODE_WORDS);
                t.write(value_addr(node), k);
                self.space.init_word(t, next_addr(node), w.pred_enc);
                // The I_CAS boundary (not a CAS) publishes the node pointer
                // next, so the fence cannot be elided here.
                self.persist_line_before_boundary(t, node);
                rt.set_local_addr(L_PRED_ADDR, w.pred_addr);
                rt.set_local(L_PRED_ENC, w.pred_enc);
                rt.set_local_addr(L_NODE, node);
                rt.set_local(L_LEN, len.pack());
                rt.boundary(I_CAS);
                CapsuleStep::Continue
            }
            // CAS-Read capsule: link the node — the linearization point.
            I_CAS => {
                let pred_addr = rt.local_addr(L_PRED_ADDR);
                let expected = rt.local(L_PRED_ENC);
                let node = rt.local_addr(L_NODE);
                let len = ChainLen::unpack(rt.local(L_LEN));
                let ok = recoverable_cas(rt, &self.space, pred_addr, expected, menc(node, 0));
                if ok {
                    let t = rt.thread();
                    self.persist_line(t, pred_addr);
                    // Helping-class grow trigger: repetition-safe, so a crash
                    // replay of this capsule re-running it is harmless.
                    let mut m = SpaceMem {
                        space: &self.space,
                        t,
                        manual: self.manual,
                    };
                    maybe_grow(&mut m, self.dir, len.plus_inserted(), self.cfg.max_chain);
                    rt.finish_boundary(I_DONE_TRUE);
                    CapsuleStep::Done(true)
                } else {
                    rt.boundary(I_FIND);
                    CapsuleStep::Continue
                }
            }
            I_DONE_TRUE => CapsuleStep::Done(true),
            I_DONE_FALSE => CapsuleStep::Done(false),
            pc => unreachable!("general map insert: unexpected pc {pc}"),
        }
    }

    /// One remove capsule (entry pc [`R_FIND`]). Single-CAS protocol: the
    /// tombstone mark is the linearization point and the whole story — the
    /// node stays linked until a resize purges it.
    fn remove_step(&self, rt: &mut CapsuleRuntime<'_, '_>) -> CapsuleStep<bool> {
        match rt.pc() {
            R_FIND => {
                let k = rt.local(L_KEY);
                let t = rt.thread();
                let mut m = SpaceMem {
                    space: &self.space,
                    t,
                    manual: self.manual,
                };
                let w = loop {
                    let head = route_update(&mut m, self.dir, k);
                    match find_in(&mut m, head, k) {
                        (FindRes::Frozen, _) => continue,
                        (FindRes::Win(w), _) => break w,
                    }
                };
                if !w.found {
                    rt.finish_boundary(R_DONE_FALSE);
                    return CapsuleStep::Done(false);
                }
                rt.set_local_addr(L_CURR_NEXT, next_addr(w.curr));
                rt.set_local(L_CURR_ENC, w.curr_enc);
                rt.boundary(R_MARK);
                CapsuleStep::Continue
            }
            // CAS-Read capsule: the tombstone mark.
            R_MARK => {
                let curr_next = rt.local_addr(L_CURR_NEXT);
                let curr_enc = rt.local(L_CURR_ENC);
                let ok = recoverable_cas(rt, &self.space, curr_next, curr_enc, curr_enc | DEL);
                if ok {
                    self.persist_line(rt.thread(), curr_next);
                    rt.finish_boundary(R_DONE_TRUE);
                    CapsuleStep::Done(true)
                } else {
                    rt.boundary(R_FIND);
                    CapsuleStep::Continue
                }
            }
            R_DONE_TRUE => CapsuleStep::Done(true),
            R_DONE_FALSE => CapsuleStep::Done(false),
            pc => unreachable!("general map remove: unexpected pc {pc}"),
        }
    }

    /// One contains capsule (entry pc [`C_FIND`]): read-only routing, no
    /// helping, single capsule.
    fn contains_step(&self, rt: &mut CapsuleRuntime<'_, '_>) -> CapsuleStep<bool> {
        match rt.pc() {
            C_FIND => {
                let k = rt.local(L_KEY);
                let mut m = SpaceMem {
                    space: &self.space,
                    t: rt.thread(),
                    manual: self.manual,
                };
                let head = route_read(&mut m, self.dir, k);
                let found = contains_at(&mut m, head, k);
                rt.set_local(L_CURR_ENC, found as u64);
                rt.finish_boundary(C_DONE);
                CapsuleStep::Done(found)
            }
            C_DONE => CapsuleStep::Done(rt.local(L_CURR_ENC) != 0),
            pc => unreachable!("general map contains: unexpected pc {pc}"),
        }
    }
}

/// Per-thread handle: the thread's capsule runtime plus a reference to the map.
pub struct GeneralDetMapHandle<'q, 't, 'm> {
    map: &'q GeneralDetMap,
    rt: CapsuleRuntime<'t, 'm>,
}

impl<'q, 't, 'm> GeneralDetMapHandle<'q, 't, 'm> {
    /// Access the underlying capsule runtime (metrics, crash flavour…).
    pub fn runtime_mut(&mut self) -> &mut CapsuleRuntime<'t, 'm> {
        &mut self.rt
    }

    /// See [`CapsuleRuntime::set_entry_boundary`].
    pub fn set_entry_boundary(&mut self, enabled: bool) {
        self.rt.set_entry_boundary(enabled);
    }

    /// Insert `k` (detectably); returns whether it was absent.
    pub fn insert(&mut self, k: u64) -> bool {
        let map = self.map;
        self.rt.set_local(L_KEY, k);
        self.rt.run_op(I_FIND, |rt| map.insert_step(rt))
    }

    /// Remove `k` (detectably); returns whether it was present.
    pub fn remove(&mut self, k: u64) -> bool {
        let map = self.map;
        self.rt.set_local(L_KEY, k);
        self.rt.run_op(R_FIND, |rt| map.remove_step(rt))
    }

    /// Membership test (read-only, single capsule).
    pub fn contains(&mut self, k: u64) -> bool {
        let map = self.map;
        self.rt.set_local(L_KEY, k);
        self.rt.run_op(C_FIND, |rt| map.contains_step(rt))
    }
}

impl StructHandle for GeneralDetMapHandle<'_, '_, '_> {
    fn apply(&mut self, op: StructOp) -> Option<u64> {
        match op {
            StructOp::Insert(k) => bool_ret(self.insert(k)),
            StructOp::Remove(k) => bool_ret(self.remove(k)),
            StructOp::Contains(k) => bool_ret(self.contains(k)),
            other => panic!("map handle cannot apply stack operation {other:?}"),
        }
    }

    fn drain_up_to(&mut self, max: usize) -> Drain {
        let map = self.map;
        let mut m = SpaceMem {
            space: &map.space,
            t: self.rt.thread(),
            manual: map.manual,
        };
        drain_map(&mut m, map.dir, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{install_quiet_crash_hook, CrashPlan, CrashPolicy, MemConfig, Mode, PMem};

    #[test]
    fn insert_remove_contains_single_thread_both_styles() {
        for style in [BoundaryStyle::General, BoundaryStyle::Compact] {
            let mem = PMem::with_threads(1);
            let t = mem.thread(0);
            let map = GeneralDetMap::new(&t, 1, MapConfig::new(4, 64), true, style);
            let mut h = map.handle(&t);
            assert!(h.insert(5));
            assert!(h.insert(3));
            assert!(!h.insert(5));
            assert!(h.contains(3));
            assert!(!h.contains(4));
            assert!(h.remove(3));
            assert!(!h.remove(3));
            assert_eq!(h.drain_up_to(16).items, vec![5], "style {style:?}");
            assert_eq!(map.len(&t), 1);
        }
    }

    #[test]
    fn growth_migrates_every_key_under_capsules() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let map = GeneralDetMap::new(&t, 1, MapConfig::tiny(), true, BoundaryStyle::General);
        let mut h = map.handle(&t);
        let mut model = std::collections::BTreeSet::new();
        for k in 0..120u64 {
            assert!(h.insert(k));
            model.insert(k);
            if k % 4 == 1 {
                assert!(h.remove(k));
                model.remove(&k);
            }
        }
        for k in 0..120u64 {
            assert_eq!(h.contains(k), model.contains(&k), "contains({k})");
        }
        let d = h.drain_up_to(100_000);
        assert!(!d.truncated);
        assert_eq!(d.items, model.iter().copied().collect::<Vec<u64>>());
    }

    #[test]
    fn operations_survive_random_crashes_across_resizes() {
        install_quiet_crash_hook();
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let map = GeneralDetMap::new(&t, 1, MapConfig::tiny(), true, BoundaryStyle::General);
        let mut h = map.handle(&t);
        t.set_crash_policy(CrashPolicy::Random { prob: 0.02, seed: 43 });
        let mut model = std::collections::BTreeSet::new();
        for r in 0..400u64 {
            let k = (r * 7) % 29;
            if r % 3 == 2 {
                assert_eq!(h.remove(k), model.remove(&k), "round {r} remove({k})");
            } else {
                assert_eq!(h.insert(k), model.insert(k), "round {r} insert({k})");
            }
        }
        t.disarm_crashes();
        assert!(t.stats().crashes > 0);
        let d = h.drain_up_to(100_000);
        assert!(!d.truncated);
        assert_eq!(d.items, model.iter().copied().collect::<Vec<u64>>());
    }

    #[test]
    fn manual_durability_survives_full_system_crash_mid_growth() {
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        let t = mem.thread(0);
        let map = GeneralDetMap::new(&t, 1, MapConfig::tiny(), true, BoundaryStyle::General);
        {
            let mut h = map.handle(&t);
            for k in 0..30u64 {
                assert!(h.insert(k));
            }
            assert!(h.remove(11));
        }
        mem.crash_all();
        let t = mem.thread(0);
        let mut h = map.handle(&t);
        let d = h.drain_up_to(10_000);
        assert!(!d.truncated);
        let expect: Vec<u64> = (0..30).filter(|&k| k != 11).collect();
        assert_eq!(d.items, expect);
    }

    /// Exhaustive crash-point sweep over a scripted window that *crosses a
    /// resize* (tiny config: the inserts outgrow 2 buckets), single + nested
    /// schedules, both crash flavours.
    #[test]
    fn exhaustive_crash_point_sweep_is_exact_across_a_resize() {
        install_quiet_crash_hook();
        type History = (Vec<Option<u64>>, Vec<u64>);
        let run = |plan: Option<CrashPlan>, system: bool| -> (History, u64, u64) {
            let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
            let t = mem.thread(0);
            let map = GeneralDetMap::new(&t, 1, MapConfig::tiny(), true, BoundaryStyle::General);
            let mut h = map.handle(&t);
            h.runtime_mut().set_system_crashes(system);
            assert!(h.insert(10));
            assert!(h.insert(20));
            assert!(h.insert(30));
            mem.persist_everything();
            let _ = t.take_stats();
            if let Some(p) = plan {
                t.set_crash_schedule(p);
            }
            // The window pushes the chain past max_chain = 3: a resize runs
            // inside the sweep, so crash points land in the migration too.
            let rets = vec![
                h.apply(StructOp::Insert(15)),
                h.apply(StructOp::Insert(25)),
                h.apply(StructOp::Insert(15)),
                h.apply(StructOp::Remove(10)),
                h.apply(StructOp::Contains(15)),
                h.apply(StructOp::Remove(99)),
            ];
            let points = t.stats().crash_points;
            t.disarm_crashes();
            let drained = h.drain_up_to(10_000);
            assert!(!drained.truncated);
            (
                (rets, drained.items),
                points,
                h.runtime_mut().metrics().recovery_crashes,
            )
        };
        for system in [false, true] {
            let (base, n, _) = run(None, system);
            assert_eq!(
                base,
                (
                    vec![Some(1), Some(1), Some(0), Some(1), Some(1), Some(0)],
                    vec![15, 20, 25, 30]
                )
            );
            assert!(n > 0);
            let mut nested_recovery_crashes = 0;
            for k in 0..n {
                let (hist, _, _) = run(Some(CrashPlan::once(k)), system);
                assert_eq!(hist, base, "system={system} crash at point {k}");
                let (hist, _, rc) = run(Some(CrashPlan::nested(k, &[0])), system);
                assert_eq!(hist, base, "system={system} nested crash at point {k}");
                nested_recovery_crashes += rc;
            }
            assert!(
                nested_recovery_crashes > 0,
                "the nested sweep must interrupt at least one recovery (system={system})"
            );
        }
    }
}
