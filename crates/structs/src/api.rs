//! The uniform face of every structure variant: one operation enum, one handle
//! trait, and the bounded quiescent drain hook the sweeper's oracles rely on.

/// One operation of the stack/set family.
///
/// Stack handles accept `Push`/`Pop`; set handles accept
/// `Insert`/`Remove`/`Contains`. Applying an operation of the wrong shape is a
/// driver bug and panics (the `dfck_struct` workloads are shape-homogeneous by
/// construction).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StructOp {
    /// Push this value onto the stack.
    Push(u64),
    /// Pop the top of the stack.
    Pop,
    /// Insert this key into the set (returns whether it was absent).
    Insert(u64),
    /// Remove this key from the set (returns whether it was present).
    Remove(u64),
    /// Membership test (returns whether the key is present).
    Contains(u64),
}

/// Result of a bounded drain: the collected history plus whether the walk was
/// cut off by the bound.
///
/// `truncated` is the cycle signal the sweeper's oracle consumes: callers
/// bound drains by the maximum node count the replay could have produced, so
/// a walk that hits the cap with structure contents (or chain nodes — a
/// cyclic chain of *marked* set nodes yields fewer keys than visited nodes)
/// still unvisited proves a corrupted chain. The flag makes that explicit
/// rather than inferable only from `items.len()`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Drain {
    /// The drained history (top-down for stacks, ascending keys for sets).
    pub items: Vec<u64>,
    /// The walk stopped at the bound, not at the structure's end.
    pub truncated: bool,
}

/// The uniform per-thread handle every structure variant implements, mirroring
/// [`queues::QueueHandle`] for the non-FIFO shapes.
///
/// Like a queue handle, a struct handle is per-thread (it owns the thread's
/// capsule runtime where the variant has one) and must only be used by the
/// thread that created it.
pub trait StructHandle {
    /// Apply one operation, with the results word-encoded uniformly so one
    /// driver can replay any shape:
    ///
    /// * `Push` → `None`,
    /// * `Pop` → the popped value (or `None` on an empty stack),
    /// * `Insert` / `Remove` / `Contains` → `Some(1)` for *true*, `Some(0)`
    ///   for *false*.
    fn apply(&mut self, op: StructOp) -> Option<u64>;

    /// The `drain`-equivalent quiescent history hook: read off (and, for
    /// stacks, remove) the structure's remaining contents — top-down LIFO
    /// order for stacks, ascending key order for sets — visiting at most
    /// `max` elements (stacks) or chain nodes (sets).
    ///
    /// The bound exists for the same reason as
    /// [`queues::QueueHandle::drain_up_to`]: a recovery bug that produces a
    /// cyclic next-pointer chain must surface as a [`Drain`] with `truncated`
    /// set (an oracle violation carrying the offending crash schedule), not
    /// as a sweep that never terminates. Quiescent use only.
    fn drain_up_to(&mut self, max: usize) -> Drain;
}

/// Encode a boolean operation result in the uniform word encoding.
pub(crate) fn bool_ret(b: bool) -> Option<u64> {
    Some(b as u64)
}

/// Shared bounded pop-drain for the stack handles: pop until empty or until
/// `max` pops. `truncated` means the cap is what stopped the walk (the stack
/// *may* hold more; oracle callers pass a cap strictly above any legitimate
/// element count, so truncation there proves an over-long chain).
pub(crate) fn drain_by_pops(max: usize, mut pop: impl FnMut() -> Option<u64>) -> Drain {
    let mut items = Vec::new();
    while items.len() < max {
        match pop() {
            Some(v) => items.push(v),
            None => return Drain { items, truncated: false },
        }
    }
    Drain { items, truncated: max > 0 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_ret_encoding_is_zero_one() {
        assert_eq!(bool_ret(true), Some(1));
        assert_eq!(bool_ret(false), Some(0));
    }

    #[test]
    fn struct_ops_are_value_types() {
        let ops = [
            StructOp::Push(1),
            StructOp::Pop,
            StructOp::Insert(2),
            StructOp::Remove(2),
            StructOp::Contains(2),
        ];
        assert_eq!(ops, ops);
        assert_ne!(StructOp::Insert(1), StructOp::Insert(2));
    }
}
