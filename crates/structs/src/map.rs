//! The detectable hash map: bucketed Harris–Michael chains behind a
//! recoverable-CAS-published **bucket-array generation**, with crash-safe
//! resize. This module holds the protocol core shared by all three
//! constructions (the plain/Izraelevitz [`DetMap`] lives here too; the
//! General and Normalized variants in [`map_general`](crate::map_general) and
//! [`map_normalized`](crate::map_normalized) reuse the same routines through
//! the [`MapMem`] word-access abstraction).
//!
//! ## Layout
//!
//! The map is one *directory* word pointing at the current generation. A
//! generation is a contiguous header:
//!
//! ```text
//! word 0        : nbuckets (plain, immutable)
//! word 1        : next     (formatted; base of the successor generation, 0 = none)
//! word 2        : cursor   (formatted; lowest bucket index not yet known-migrated)
//! word 3 + b        : head[b]  (formatted; bucket chain head, map encoding)
//! word 3 + nb + b   : state[b] (formatted; LIVE = 0, DONE = 1)
//! ```
//!
//! Chains reuse the two-word nodes of [`node`](crate::node) but with a
//! **two-bit** mark in the next word: bit 0 is the logical-delete tombstone
//! (`DEL`), bit 1 the migration freeze (`FRZ`):
//!
//! ```text
//! next = (successor_word_index << 2) | marks
//! ```
//!
//! ## The resize protocol
//!
//! A grow publishes a half-initialised successor into the old generation's
//! `next` word (helping CAS — the loser's allocation leaks harmlessly). From
//! then on every *update* routes through [`route_update`]: it migrates the
//! key's own old bucket if needed, helps advance the migration cursor a
//! bounded amount, and operates in the new generation. Migrating a bucket is
//! a **freeze pass** (mark every clean next word `FRZ`, in path order — an
//! insert needs an unmarked predecessor word, so the walk can never miss a
//! node) followed by a **copy pass** over the now-immutable chain
//! ([`copy_insert`] is an idempotent insert-if-never-present), then a `DONE`
//! CAS on the bucket's state. When the cursor reaches `nbuckets` every bucket
//! is `DONE` and the directory is promoted.
//!
//! ## The two invariants everything rests on
//!
//! 1. **Marked words are never CASed.** Inserts target clean predecessor
//!    words; a remove marks a clean word; freeze skips tombstones. This makes
//!    marked words final, which is what lets the freeze walk and the copy
//!    pass treat the chain as stable, and every migration CAS be
//!    repetition-safe.
//! 2. **Tombstones are never unlinked.** A remove is a single marking CAS;
//!    dead nodes are purged only by the next resize's copy pass (which copies
//!    live nodes only — resize doubles as garbage collection). Keeping
//!    tombstones reachable is what makes [`copy_insert`] idempotent across
//!    laggard migrators: a copier that was suspended across a completed
//!    migration *and* a user remove still finds the tombstone in its
//!    full-chain scan and stands down, so a removed key can never be
//!    resurrected by a late copy.
//!
//! Exactly-once recovery therefore needs to protect only two CASes per
//! operation family — the insert's link and the remove's mark, the
//! linearization points — which the detectable variants run through the
//! recoverable CAS. Everything the migration does (freeze marks, copy
//! inserts, `next`/cursor/state/directory installs) is helping-class and safe
//! to repeat from any crash point.

use pmem::{PAddr, PThread, LINE_WORDS};
use rcas::{RcasLayout, RcasSpace};

use crate::api::{bool_ret, Drain, StructHandle, StructOp};
use crate::node::{next_addr, value_addr, NODE_WORDS};

/// The recoverable-CAS packing used by the detectable map variants: the
/// two-bit mark pushes encodings to `index << 2`, and the million-key
/// workload outruns the default 26-bit sequence field, so the map trades
/// value width for a `LONG_RUN`-style 28-bit sequence space (268M capsules
/// per process) — see the rcas satellite in DESIGN.md §12.
pub const MAP_RCAS_LAYOUT: RcasLayout = RcasLayout {
    value_bits: 30,
    pid_bits: 6,
    seq_bits: 28,
};

/// Tombstone mark: the node is logically deleted (bit 0 of the next word).
pub(crate) const DEL: u64 = 1;
/// Freeze mark: the word belongs to a bucket under migration (bit 1).
pub(crate) const FRZ: u64 = 2;
/// Both mark bits.
pub(crate) const MBITS: u64 = 3;

// Generation header word offsets.
const G_NBUCKETS: u64 = 0;
const G_NEXT: u64 = 1;
const G_CURSOR: u64 = 2;
/// First bucket-head word; states follow at `G_HEADER + nbuckets`.
const G_HEADER: u64 = 3;

const STATE_LIVE: u64 = 0;
const STATE_DONE: u64 = 1;

/// How many cursor buckets one routing pass helps migrate. Spreads the
/// untouched-bucket migration across operations (no per-op O(nbuckets) scan)
/// while keeping promotion detection O(1) once the cursor reaches the end.
const CURSOR_HELP: u64 = 8;

/// Encode a successor address plus mark bits into a map next word.
#[inline]
pub(crate) fn menc(succ: PAddr, marks: u64) -> u64 {
    (succ.to_raw() << 2) | marks
}

/// The successor address of a map next word.
#[inline]
pub(crate) fn menc_addr(word: u64) -> PAddr {
    PAddr::from_raw(word >> 2)
}

/// splitmix64 finalizer — the bucket mix. Public so workload builders can
/// pick deliberately colliding keys for resize-window crash rows.
pub fn map_mix64(k: u64) -> u64 {
    let mut z = k.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The bucket index of key `k` in a generation of `nbuckets` (a power of two).
pub fn map_bucket_of(k: u64, nbuckets: u64) -> u64 {
    map_mix64(k) & (nbuckets - 1)
}

/// Sizing knobs shared by every map variant.
#[derive(Clone, Copy, Debug)]
pub struct MapConfig {
    /// Buckets in the first generation (must be a power of two).
    pub initial_buckets: u64,
    /// A successful insert that walked a chain longer than this triggers a
    /// resize. The *total* chain (tombstones included) starts one — resize is
    /// the only tombstone purge — but only a *live* chain this long doubles
    /// the bucket count (see [`maybe_grow`](crate::map)).
    pub max_chain: usize,
}

impl MapConfig {
    /// Validated constructor.
    pub fn new(initial_buckets: u64, max_chain: usize) -> MapConfig {
        assert!(initial_buckets >= 1 && initial_buckets.is_power_of_two());
        assert!(max_chain >= 1);
        MapConfig {
            initial_buckets,
            max_chain,
        }
    }

    /// The sweep configuration: 2 buckets, resize after a 3-chain — small
    /// enough that a handful of scripted operations crosses a resize window.
    pub fn tiny() -> MapConfig {
        MapConfig::new(2, 3)
    }
}

impl Default for MapConfig {
    fn default() -> MapConfig {
        MapConfig::new(8, 8)
    }
}

/// The word-access seam between the shared protocol and the three
/// constructions: plain words (Izraelevitz), an [`RcasSpace`] (General), or a
/// normalized-simulator ctx. `help_cas` is always the *anonymous*,
/// repetition-safe CAS of the construction; the linearizing CASes never go
/// through this trait.
pub(crate) trait MapMem {
    /// Read a formatted word's application value.
    fn read(&mut self, addr: PAddr) -> u64;
    /// Read a plain (unformatted) word: node keys, `nbuckets`.
    fn read_plain(&mut self, addr: PAddr) -> u64;
    /// Value-level helping CAS (anonymous in the detectable constructions).
    fn help_cas(&mut self, addr: PAddr, expected: u64, new: u64) -> bool;
    /// Format a fresh word to hold `value`.
    fn init_word(&mut self, addr: PAddr, value: u64);
    /// Plain store into a word nobody shares yet.
    fn write_plain(&mut self, addr: PAddr, value: u64);
    /// Bump-allocate `nwords` persistent words.
    fn alloc(&mut self, nwords: u64) -> PAddr;
    /// Flush the line holding `addr` (no fence) under the manual discipline.
    fn flush_line(&mut self, addr: PAddr);
    /// Ordering fence under the manual discipline.
    fn fence(&mut self);
}

/// Plain-word accessor: the Izraelevitz construction (durability comes from
/// the thread option's auto-flushing, so the manual hooks are no-ops).
pub(crate) struct PlainMem<'t, 'm> {
    pub t: &'t PThread<'m>,
}

impl MapMem for PlainMem<'_, '_> {
    fn read(&mut self, addr: PAddr) -> u64 {
        self.t.read(addr)
    }
    fn read_plain(&mut self, addr: PAddr) -> u64 {
        self.t.read(addr)
    }
    fn help_cas(&mut self, addr: PAddr, expected: u64, new: u64) -> bool {
        self.t.cas(addr, expected, new)
    }
    fn init_word(&mut self, addr: PAddr, value: u64) {
        self.t.write(addr, value)
    }
    fn write_plain(&mut self, addr: PAddr, value: u64) {
        self.t.write(addr, value)
    }
    fn alloc(&mut self, nwords: u64) -> PAddr {
        self.t.alloc(nwords)
    }
    fn flush_line(&mut self, _addr: PAddr) {}
    fn fence(&mut self) {}
}

/// Recoverable-CAS-space accessor: the General construction (helping CASes
/// are anonymous; flushes follow the manual discipline).
pub(crate) struct SpaceMem<'s, 't, 'm> {
    pub space: &'s RcasSpace,
    pub t: &'t PThread<'m>,
    pub manual: bool,
}

impl MapMem for SpaceMem<'_, '_, '_> {
    fn read(&mut self, addr: PAddr) -> u64 {
        self.space.read(self.t, addr)
    }
    fn read_plain(&mut self, addr: PAddr) -> u64 {
        self.t.read(addr)
    }
    fn help_cas(&mut self, addr: PAddr, expected: u64, new: u64) -> bool {
        self.space.cas_anonymous(self.t, addr, expected, new)
    }
    fn init_word(&mut self, addr: PAddr, value: u64) {
        self.space.init_word(self.t, addr, value)
    }
    fn write_plain(&mut self, addr: PAddr, value: u64) {
        self.t.write(addr, value)
    }
    fn alloc(&mut self, nwords: u64) -> PAddr {
        self.t.alloc(nwords)
    }
    fn flush_line(&mut self, addr: PAddr) {
        if self.manual {
            self.t.flush(addr);
        }
    }
    fn fence(&mut self) {
        if self.manual {
            self.t.fence();
        }
    }
}

fn gen_head(g: PAddr, b: u64) -> PAddr {
    g.offset(G_HEADER + b)
}

fn gen_state(g: PAddr, nbuckets: u64, b: u64) -> PAddr {
    g.offset(G_HEADER + nbuckets + b)
}

/// Allocate and format a generation of `nbuckets`, fully persisted before the
/// caller may publish it.
pub(crate) fn alloc_gen<M: MapMem>(m: &mut M, nbuckets: u64) -> PAddr {
    let words = G_HEADER + 2 * nbuckets;
    let g = m.alloc(words);
    m.write_plain(g.offset(G_NBUCKETS), nbuckets);
    m.init_word(g.offset(G_NEXT), 0);
    m.init_word(g.offset(G_CURSOR), 0);
    for b in 0..nbuckets {
        m.init_word(gen_head(g, b), 0);
        m.init_word(gen_state(g, nbuckets, b), STATE_LIVE);
    }
    let last = g.offset(words - 1).line_base();
    let mut line = g.line_base();
    loop {
        m.flush_line(line);
        if line == last {
            break;
        }
        line = line.offset(LINE_WORDS);
    }
    m.fence();
    g
}

/// A search window in map encoding: the clean word an insert/mark CASes, its
/// expected encoding, and the first *live* node with `key >= k`.
pub(crate) struct MapWindow {
    pub pred_addr: PAddr,
    pub pred_enc: u64,
    /// First live node with `key >= k` (null at the end of the chain).
    pub curr: PAddr,
    /// `curr`'s clean next encoding at observation time (0 when curr is null).
    pub curr_enc: u64,
    pub found: bool,
}

/// Outcome of [`find_in`].
pub(crate) enum FindRes {
    /// A usable window.
    Win(MapWindow),
    /// The chain is being frozen by a migration: re-route and retry.
    Frozen,
}

/// Chain measure a search took: `total` counts every visited node (tombstones
/// included — the purge trigger), `live` only unmarked ones (the doubling
/// trigger). See [`maybe_grow`].
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ChainLen {
    pub total: usize,
    pub live: usize,
}

impl ChainLen {
    /// Pack into one persistable word (both components fit 32 bits by far).
    pub fn pack(self) -> u64 {
        ((self.live as u64) << 32) | self.total as u64
    }

    /// Inverse of [`pack`](Self::pack).
    pub fn unpack(word: u64) -> ChainLen {
        ChainLen {
            total: (word & 0xffff_ffff) as usize,
            live: (word >> 32) as usize,
        }
    }

    /// The chain as the inserter leaves it: one more live node.
    pub fn plus_inserted(self) -> ChainLen {
        ChainLen {
            total: self.total + 1,
            live: self.live + 1,
        }
    }
}

/// Tombstone-skipping search: the window's predecessor only ever advances to
/// *live* nodes (tombstones are walked over, never unlinked — invariant 2),
/// so the CAS target is always a clean word and an insert lands in front of
/// whatever tombstone run follows the predecessor. The live-key subsequence
/// stays sorted; the returned [`ChainLen`] is the resize trigger's measure.
pub(crate) fn find_in<M: MapMem>(m: &mut M, head: PAddr, k: u64) -> (FindRes, ChainLen) {
    let mut len = ChainLen::default();
    let mut pred_addr = head;
    let mut pred_enc = m.read(head);
    if pred_enc & FRZ != 0 {
        return (FindRes::Frozen, len);
    }
    let mut node = menc_addr(pred_enc);
    loop {
        if node.is_null() {
            let w = MapWindow {
                pred_addr,
                pred_enc,
                curr: PAddr::NULL,
                curr_enc: 0,
                found: false,
            };
            return (FindRes::Win(w), len);
        }
        len.total += 1;
        let ne = m.read(next_addr(node));
        if ne & FRZ != 0 {
            return (FindRes::Frozen, len);
        }
        if ne & DEL != 0 {
            // Tombstone: walk over it (its key proves nothing about order).
            node = menc_addr(ne);
            continue;
        }
        len.live += 1;
        let ck = m.read_plain(value_addr(node));
        if ck >= k {
            let w = MapWindow {
                pred_addr,
                pred_enc,
                curr: node,
                curr_enc: ne,
                found: ck == k,
            };
            return (FindRes::Win(w), len);
        }
        pred_addr = next_addr(node);
        pred_enc = ne;
        node = menc_addr(ne);
    }
}

/// Membership walk from a bucket head. Freeze marks are ignored — a frozen
/// live node is still a member (the old bucket stays the authority for reads
/// until its state turns `DONE`, and the read-only route below guarantees
/// the freeze happened inside the operation's interval).
pub(crate) fn contains_at<M: MapMem>(m: &mut M, head: PAddr, k: u64) -> bool {
    let mut node = menc_addr(m.read(head));
    while !node.is_null() {
        let ne = m.read(next_addr(node));
        if ne & DEL == 0 {
            let ck = m.read_plain(value_addr(node));
            if ck == k {
                return true;
            }
            if ck > k {
                return false;
            }
        }
        node = menc_addr(ne);
    }
    false
}

/// Idempotent insert-if-never-present into the *new* generation, the copy
/// pass's workhorse. The full-chain scan (no sorted early exit — tombstones
/// may sit out of live order) treats any node with key `k`, live or
/// tombstone, as "the obligation is settled": either the key was already
/// copied, or a user operation in the new generation superseded the copy. A
/// freeze mark in the target means the *next* resize already promoted — then
/// every old bucket is `DONE` and `k`'s fate was settled by whoever got
/// there first, so the copier stands down rather than spin on frozen words.
pub(crate) fn copy_insert<M: MapMem>(m: &mut M, n: PAddr, n_nbuckets: u64, k: u64) {
    let head = gen_head(n, map_bucket_of(k, n_nbuckets));
    loop {
        let he = m.read(head);
        if he & FRZ != 0 {
            return;
        }
        let mut node = menc_addr(he);
        let mut settled = false;
        while !node.is_null() {
            let ne = m.read(next_addr(node));
            if ne & FRZ != 0 {
                settled = true;
                break;
            }
            if m.read_plain(value_addr(node)) == k {
                settled = true;
                break;
            }
            node = menc_addr(ne);
        }
        if settled {
            return;
        }
        match find_in(m, head, k) {
            (FindRes::Frozen, _) => return,
            (FindRes::Win(w), _) => {
                if w.found {
                    return;
                }
                let fresh = m.alloc(NODE_WORDS);
                m.write_plain(value_addr(fresh), k);
                m.init_word(next_addr(fresh), w.pred_enc);
                m.flush_line(fresh);
                m.fence();
                if m.help_cas(w.pred_addr, w.pred_enc, menc(fresh, 0)) {
                    m.flush_line(w.pred_addr);
                    return;
                }
                // Lost a race (another copier or a user insert): rescan — the
                // winner's node is now visible to the full-chain scan.
            }
        }
    }
}

/// Migrate old bucket `b` of generation `g` into `n`: freeze, copy, `DONE`.
/// Every step is helping-class — safe to repeat from any crash point, safe to
/// run concurrently with other migrators of the same bucket.
pub(crate) fn migrate_bucket<M: MapMem>(
    m: &mut M,
    g: PAddr,
    nbuckets: u64,
    n: PAddr,
    n_nbuckets: u64,
    b: u64,
) {
    let st = gen_state(g, nbuckets, b);
    if m.read(st) == STATE_DONE {
        return;
    }
    let head = gen_head(g, b);
    // Freeze pass: mark the head, then every clean next word in path order.
    // An insert needs a clean predecessor word, so once a word is frozen no
    // new node can ever appear behind it — the walk cannot miss nodes.
    loop {
        let w = m.read(head);
        if w & FRZ != 0 {
            break;
        }
        if m.help_cas(head, w, w | FRZ) {
            m.flush_line(head);
            break;
        }
    }
    let mut node = menc_addr(m.read(head));
    while !node.is_null() {
        let na = next_addr(node);
        let ne = loop {
            let w = m.read(na);
            if w & MBITS != 0 {
                // Frozen already, or a tombstone — both are final (invariant 1).
                break w;
            }
            if m.help_cas(na, w, w | FRZ) {
                m.flush_line(na);
                break w | FRZ;
            }
        };
        node = menc_addr(ne);
    }
    m.fence();
    // Copy pass over the now-immutable chain: live keys only (tombstones are
    // purged here — resize doubles as garbage collection).
    let mut node = menc_addr(m.read(head));
    while !node.is_null() {
        let ne = m.read(next_addr(node));
        if ne & DEL == 0 {
            let k = m.read_plain(value_addr(node));
            copy_insert(m, n, n_nbuckets, k);
        }
        node = menc_addr(ne);
    }
    // Order every copy's flush before the DONE mark: a durable DONE must
    // imply durable copies.
    m.fence();
    if m.read(st) == STATE_LIVE && m.help_cas(st, STATE_LIVE, STATE_DONE) {
        m.flush_line(st);
    }
}

/// Bounded cursor help: migrate up to [`CURSOR_HELP`] buckets at the shared
/// cursor and promote the directory once the cursor clears the bucket count.
/// The cursor only ever advances past `DONE` buckets, so promotion at
/// `cursor == nbuckets` proves every bucket migrated.
fn advance_cursor<M: MapMem>(
    m: &mut M,
    dir: PAddr,
    g: PAddr,
    nbuckets: u64,
    n: PAddr,
    n_nbuckets: u64,
) {
    let cursor = g.offset(G_CURSOR);
    for _ in 0..CURSOR_HELP {
        let c = m.read(cursor);
        if c >= nbuckets {
            m.fence();
            if m.help_cas(dir, g.to_raw(), n.to_raw()) {
                m.flush_line(dir);
                m.fence();
            }
            return;
        }
        migrate_bucket(m, g, nbuckets, n, n_nbuckets, c);
        if m.help_cas(cursor, c, c + 1) {
            m.flush_line(cursor);
        }
    }
}

/// Route an update (insert/remove) to its bucket head: if a resize is in
/// flight, migrate the key's own old bucket, help the cursor along, and
/// descend to the successor generation — repeating down the chain until a
/// generation with no successor owns the key.
pub(crate) fn route_update<M: MapMem>(m: &mut M, dir: PAddr, k: u64) -> PAddr {
    let mut g = PAddr::from_raw(m.read(dir));
    loop {
        let nbuckets = m.read_plain(g.offset(G_NBUCKETS));
        let b = map_bucket_of(k, nbuckets);
        let nraw = m.read(g.offset(G_NEXT));
        if nraw == 0 {
            return gen_head(g, b);
        }
        let n = PAddr::from_raw(nraw);
        let n_nbuckets = m.read_plain(n.offset(G_NBUCKETS));
        migrate_bucket(m, g, nbuckets, n, n_nbuckets, b);
        advance_cursor(m, dir, g, nbuckets, n, n_nbuckets);
        g = n;
    }
}

/// Route a read: no helping, no migration — descend past buckets whose state
/// is `DONE` (their keys now live in the successor) and stop at the first
/// generation that still owns the key's bucket. Sound even mid-freeze: a
/// non-`DONE` bucket's membership cannot change between its freeze and the
/// first post-`DONE` operation in the successor, and that window provably
/// overlaps the reader's interval.
pub(crate) fn route_read<M: MapMem>(m: &mut M, dir: PAddr, k: u64) -> PAddr {
    let mut g = PAddr::from_raw(m.read(dir));
    loop {
        let nbuckets = m.read_plain(g.offset(G_NBUCKETS));
        let b = map_bucket_of(k, nbuckets);
        let nraw = m.read(g.offset(G_NEXT));
        if nraw == 0 || m.read(gen_state(g, nbuckets, b)) != STATE_DONE {
            return gen_head(g, b);
        }
        g = PAddr::from_raw(nraw);
    }
}

/// Resize trigger, run after a successful insert that left a chain measuring
/// `observed`: publish a successor generation unless one is already in
/// flight. The *total* chain (tombstones included) exceeding `max_chain`
/// starts a resize — the copy pass is the only tombstone purge, so churn
/// alone must force one — but the bucket count only **doubles** when the
/// *live* chain exceeds the bound. A tombstone-heavy chain with few live
/// keys gets a same-size purge generation instead: under sustained
/// remove/insert churn the map re-purges at a bounded size rather than
/// doubling forever. Helping-class throughout (a crash replay re-runs it
/// harmlessly; a lost publish CAS just leaks the loser's allocation into the
/// bump arena).
pub(crate) fn maybe_grow<M: MapMem>(m: &mut M, dir: PAddr, observed: ChainLen, max_chain: usize) {
    if observed.total <= max_chain {
        return;
    }
    let g = PAddr::from_raw(m.read(dir));
    if m.read(g.offset(G_NEXT)) != 0 {
        return;
    }
    let nbuckets = m.read_plain(g.offset(G_NBUCKETS));
    let new_buckets = if observed.live > max_chain {
        nbuckets * 2
    } else {
        nbuckets
    };
    let n = alloc_gen(m, new_buckets);
    if m.help_cas(g.offset(G_NEXT), 0, n.to_raw()) {
        m.flush_line(g.offset(G_NEXT));
        m.fence();
    }
}

/// Quiescent bounded snapshot of the whole map, in ascending key order.
///
/// Walks the generation chain: buckets whose state is `DONE` are skipped
/// (the successor owns their keys); every other bucket contributes its
/// non-tombstone keys. Cross-generation duplicates (a key both in a
/// non-`DONE` old bucket and partially copied into the successor) collapse in
/// the set union. The walk budget is **per bucket** (`max` visits each — a
/// mid-resize map legitimately holds originals plus copies, so a global
/// budget would spuriously truncate), and `truncated` aggregates across
/// buckets: one cyclic bucket among healthy ones must fail the whole drain.
pub(crate) fn drain_map<M: MapMem>(m: &mut M, dir: PAddr, max: usize) -> Drain {
    let mut keys = std::collections::BTreeSet::new();
    let mut truncated = false;
    let mut g = PAddr::from_raw(m.read(dir));
    loop {
        let nbuckets = m.read_plain(g.offset(G_NBUCKETS));
        let nraw = m.read(g.offset(G_NEXT));
        for b in 0..nbuckets {
            if nraw != 0 && m.read(gen_state(g, nbuckets, b)) == STATE_DONE {
                continue;
            }
            let mut node = menc_addr(m.read(gen_head(g, b)));
            let mut visited = 0usize;
            while !node.is_null() && visited < max {
                visited += 1;
                let ne = m.read(next_addr(node));
                if ne & DEL == 0 {
                    keys.insert(m.read_plain(value_addr(node)));
                }
                node = menc_addr(ne);
            }
            if !node.is_null() {
                truncated = true;
            }
        }
        if nraw == 0 {
            break;
        }
        g = PAddr::from_raw(nraw);
    }
    Drain {
        items: keys.into_iter().collect(),
        truncated,
    }
}

/// Live-key count (diagnostic; not linearizable).
pub(crate) fn map_len<M: MapMem>(m: &mut M, dir: PAddr) -> usize {
    drain_map(m, dir, usize::MAX).items.len()
}

/// The plain detectable-map shell: plain CASes, no capsules, no flushes.
/// Running its operations through a thread with
/// [`pmem::ThreadOptions`]`{ izraelevitz: true }` yields the durably
/// linearizable (but **not** detectable) Izraelevitz map.
#[derive(Clone, Copy, Debug)]
pub struct DetMap {
    dir: PAddr,
    cfg: MapConfig,
}

impl DetMap {
    /// Create an empty map.
    pub fn new(thread: &PThread<'_>, cfg: MapConfig) -> DetMap {
        let mut m = PlainMem { t: thread };
        let g = alloc_gen(&mut m, cfg.initial_buckets);
        let dir = thread.alloc(1);
        thread.write(dir, g.to_raw());
        DetMap { dir, cfg }
    }

    /// Address of the directory word (tests and corruption harnesses).
    pub fn dir_addr(&self) -> PAddr {
        self.dir
    }

    /// Create this thread's operation handle.
    pub fn handle<'q, 't, 'm>(&'q self, thread: &'t PThread<'m>) -> DetMapHandle<'q, 't, 'm> {
        DetMapHandle { map: self, thread }
    }

    /// Live-key count (diagnostic; not linearizable).
    pub fn len(&self, thread: &PThread<'_>) -> usize {
        map_len(&mut PlainMem { t: thread }, self.dir)
    }

    /// Bucket count of the *current* generation (diagnostic).
    pub fn current_buckets(&self, thread: &PThread<'_>) -> u64 {
        let g = PAddr::from_raw(thread.read(self.dir));
        thread.read(g.offset(G_NBUCKETS))
    }
}

/// Per-thread handle for the plain map.
#[derive(Debug)]
pub struct DetMapHandle<'q, 't, 'm> {
    map: &'q DetMap,
    thread: &'t PThread<'m>,
}

impl DetMapHandle<'_, '_, '_> {
    /// Insert `k`; returns whether it was absent.
    pub fn insert(&mut self, k: u64) -> bool {
        let mut m = PlainMem { t: self.thread };
        loop {
            let head = route_update(&mut m, self.map.dir, k);
            let (res, len) = find_in(&mut m, head, k);
            let w = match res {
                FindRes::Frozen => continue,
                FindRes::Win(w) => w,
            };
            if w.found {
                return false;
            }
            let node = m.alloc(NODE_WORDS);
            m.write_plain(value_addr(node), k);
            m.init_word(next_addr(node), w.pred_enc);
            if m.help_cas(w.pred_addr, w.pred_enc, menc(node, 0)) {
                maybe_grow(&mut m, self.map.dir, len.plus_inserted(), self.map.cfg.max_chain);
                return true;
            }
        }
    }

    /// Remove `k`; returns whether it was present. A single marking CAS —
    /// tombstones stay linked until the next resize purges them.
    pub fn remove(&mut self, k: u64) -> bool {
        let mut m = PlainMem { t: self.thread };
        loop {
            let head = route_update(&mut m, self.map.dir, k);
            let (res, _) = find_in(&mut m, head, k);
            let w = match res {
                FindRes::Frozen => continue,
                FindRes::Win(w) => w,
            };
            if !w.found {
                return false;
            }
            if m.help_cas(next_addr(w.curr), w.curr_enc, w.curr_enc | DEL) {
                return true;
            }
        }
    }

    /// Membership test (read-only: no helping, no migration).
    pub fn contains(&mut self, k: u64) -> bool {
        let mut m = PlainMem { t: self.thread };
        let head = route_read(&mut m, self.map.dir, k);
        contains_at(&mut m, head, k)
    }
}

impl StructHandle for DetMapHandle<'_, '_, '_> {
    fn apply(&mut self, op: StructOp) -> Option<u64> {
        match op {
            StructOp::Insert(k) => bool_ret(self.insert(k)),
            StructOp::Remove(k) => bool_ret(self.remove(k)),
            StructOp::Contains(k) => bool_ret(self.contains(k)),
            other => panic!("map handle cannot apply stack operation {other:?}"),
        }
    }

    fn drain_up_to(&mut self, max: usize) -> Drain {
        drain_map(&mut PlainMem { t: self.thread }, self.map.dir, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{MemConfig, Mode, PMem, ThreadOptions};

    #[test]
    fn layout_fits_the_two_bit_encoding() {
        let l = RcasLayout::new(
            MAP_RCAS_LAYOUT.value_bits,
            MAP_RCAS_LAYOUT.pid_bits,
            MAP_RCAS_LAYOUT.seq_bits,
        );
        assert_eq!(l, MAP_RCAS_LAYOUT);
        // Word indices below 2^28, shifted by the two mark bits, fit the
        // 30-bit value field.
        let max_index = (1u64 << 28) - 1;
        assert!(menc(PAddr::from_raw(max_index), MBITS) <= l.max_value());
        // The sequence field must outlast the million-key workload.
        assert!(l.max_seq() > 1 << 27);
    }

    #[test]
    fn bucket_mix_spreads_and_is_stable() {
        assert_eq!(map_bucket_of(7, 8), map_bucket_of(7, 8));
        let mut hit = [false; 8];
        for k in 0..64 {
            hit[map_bucket_of(k, 8) as usize] = true;
        }
        assert!(hit.iter().all(|&h| h), "64 keys must touch all 8 buckets");
    }

    #[test]
    fn insert_remove_contains_single_thread() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let map = DetMap::new(&t, MapConfig::new(4, 64));
        let mut h = map.handle(&t);
        assert!(!h.contains(5));
        assert!(h.insert(5));
        assert!(h.insert(3));
        assert!(h.insert(9));
        assert!(!h.insert(5), "duplicate insert must fail");
        assert!(h.contains(3) && h.contains(5) && h.contains(9));
        assert!(!h.contains(4));
        assert_eq!(h.drain_up_to(64).items, vec![3, 5, 9], "ascending snapshot");
        assert!(h.remove(5));
        assert!(!h.remove(5), "double remove must fail");
        assert!(!h.contains(5));
        assert_eq!(h.drain_up_to(64).items, vec![3, 9]);
        assert_eq!(map.len(&t), 2);
        // Re-insert after remove: the tombstone stays linked, a fresh live
        // node carries the key.
        assert!(h.insert(5));
        assert!(h.contains(5));
        assert_eq!(h.drain_up_to(64).items, vec![3, 5, 9]);
    }

    #[test]
    fn growth_migrates_every_key_and_purges_tombstones() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let map = DetMap::new(&t, MapConfig::tiny());
        let mut h = map.handle(&t);
        let mut expect = std::collections::BTreeSet::new();
        for k in 0..200u64 {
            assert!(h.insert(k), "insert {k}");
            expect.insert(k);
            if k % 3 == 0 {
                assert!(h.remove(k), "remove {k}");
                expect.remove(&k);
            }
        }
        assert!(
            map.current_buckets(&t) > 2,
            "200 keys over tiny() must have grown the bucket array"
        );
        for k in 0..200u64 {
            assert_eq!(h.contains(k), expect.contains(&k), "contains({k})");
        }
        let d = h.drain_up_to(100_000);
        assert!(!d.truncated);
        assert_eq!(d.items, expect.iter().copied().collect::<Vec<u64>>());
    }

    #[test]
    fn boundary_keys_zero_and_max() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let map = DetMap::new(&t, MapConfig::tiny());
        let mut h = map.handle(&t);
        assert!(h.insert(0));
        assert!(h.insert(u64::MAX));
        assert!(h.contains(0) && h.contains(u64::MAX));
        assert_eq!(h.drain_up_to(64).items, vec![0, u64::MAX]);
        assert!(h.remove(0));
        assert_eq!(h.drain_up_to(64).items, vec![u64::MAX]);
    }

    #[test]
    fn concurrent_disjoint_key_ranges_all_land_across_resizes() {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 300;
        let mem = PMem::with_threads(THREADS);
        let map = DetMap::new(&mem.thread(0), MapConfig::new(2, 6));
        std::thread::scope(|sc| {
            for pid in 0..THREADS {
                let mem = &mem;
                let map = &map;
                sc.spawn(move || {
                    let t = mem.thread(pid);
                    let mut h = map.handle(&t);
                    for i in 0..PER_THREAD {
                        assert!(h.insert(i * THREADS as u64 + pid as u64));
                    }
                });
            }
        });
        let t = mem.thread(0);
        let mut h = map.handle(&t);
        let d = h.drain_up_to(1_000_000);
        assert!(!d.truncated);
        assert_eq!(d.items.len(), THREADS * PER_THREAD as usize);
        assert!(d.items.windows(2).all(|w| w[0] < w[1]));
        assert!(map.current_buckets(&t) > 2, "the sweep must have resized");
    }

    #[test]
    fn concurrent_same_key_contention_is_exact() {
        const THREADS: usize = 3;
        const ROUNDS: u64 = 300;
        let mem = PMem::with_threads(THREADS);
        let map = DetMap::new(&mem.thread(0), MapConfig::tiny());
        let counts: Vec<(u64, u64)> = std::thread::scope(|sc| {
            let handles: Vec<_> = (0..THREADS)
                .map(|pid| {
                    let mem = &mem;
                    let map = &map;
                    sc.spawn(move || {
                        let t = mem.thread(pid);
                        let mut h = map.handle(&t);
                        let (mut ins, mut rem) = (0, 0);
                        for r in 0..ROUNDS {
                            let k = r % 7;
                            if h.insert(k) {
                                ins += 1;
                            }
                            if h.remove(k) {
                                rem += 1;
                            }
                        }
                        (ins, rem)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let total_ins: u64 = counts.iter().map(|c| c.0).sum();
        let total_rem: u64 = counts.iter().map(|c| c.1).sum();
        let t = mem.thread(0);
        let mut h = map.handle(&t);
        let d = h.drain_up_to(1_000_000);
        assert!(!d.truncated);
        assert_eq!(
            total_ins,
            total_rem + d.items.len() as u64,
            "every successful insert is matched by a successful remove or survives"
        );
    }

    #[test]
    fn izraelevitz_option_makes_contents_durable_across_a_resize() {
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        let t = mem.thread_with(0, ThreadOptions { izraelevitz: true });
        let map = DetMap::new(&t, MapConfig::tiny());
        {
            let mut h = map.handle(&t);
            for k in 0..40u64 {
                assert!(h.insert(k));
            }
            assert!(h.remove(17));
        }
        assert!(map.current_buckets(&t) > 2, "the workload must have resized");
        mem.crash_all();
        let t = mem.thread(0);
        let mut h = map.handle(&t);
        let d = h.drain_up_to(10_000);
        assert!(!d.truncated);
        let expect: Vec<u64> = (0..40).filter(|&k| k != 17).collect();
        assert_eq!(d.items, expect);
    }

    /// Satellite regression (drain): one artificially cycled bucket among
    /// healthy ones must mark the *whole map's* drain truncated, while the
    /// healthy buckets' keys still come back.
    #[test]
    fn drain_flags_a_single_cycled_bucket_among_healthy_ones() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        // Generous max_chain: no resize, one stable generation of 4 buckets.
        let map = DetMap::new(&t, MapConfig::new(4, 1_000));
        let mut h = map.handle(&t);
        // Two keys that collide into one bucket, plus keys elsewhere.
        let mut colliders = Vec::new();
        let mut healthy = Vec::new();
        for k in 0..64u64 {
            if map_bucket_of(k, 4) == 0 && colliders.len() < 2 {
                colliders.push(k);
            } else if map_bucket_of(k, 4) != 0 && healthy.len() < 3 {
                healthy.push(k);
            }
        }
        assert_eq!(colliders.len(), 2);
        for &k in colliders.iter().chain(&healthy) {
            assert!(h.insert(k));
        }
        // Corrupt bucket 0 into a cycle: second.next -> first.
        let g = PAddr::from_raw(t.read(map.dir_addr()));
        let head0 = g.offset(G_HEADER);
        let first = menc_addr(t.read(head0));
        let second = menc_addr(t.read(next_addr(first)));
        assert!(!second.is_null(), "both colliders must share bucket 0");
        t.write(next_addr(second), menc(first, 0));
        let d = h.drain_up_to(10);
        assert!(
            d.truncated,
            "a cycle in one bucket must mark the whole map drain truncated"
        );
        for &k in &healthy {
            assert!(
                d.items.contains(&k),
                "healthy buckets must still be collected (missing {k})"
            );
        }
    }

    /// Regression: remove/insert churn on a handful of keys accumulates
    /// tombstones, and the total-chain trigger fires constantly. The resize
    /// it starts must be a same-size *purge* unless live chains actually
    /// overflow — the old always-double policy grew the bucket array
    /// exponentially under churn (gigabytes of generations for 3 keys).
    #[test]
    fn sustained_churn_purges_at_a_bounded_size_instead_of_doubling_forever() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let map = DetMap::new(&t, MapConfig::tiny());
        let mut h = map.handle(&t);
        for round in 0..500u64 {
            let k = round % 3;
            h.insert(k);
            h.remove(k);
        }
        let nb = map.current_buckets(&t);
        assert!(
            nb <= 8,
            "3-key churn must stay near the initial size, got {nb} buckets"
        );
        let d = h.drain_up_to(10_000);
        assert!(!d.truncated);
        assert!(d.items.is_empty(), "everything was removed: {:?}", d.items);
    }

    #[test]
    fn struct_handle_face_matches_direct_calls() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let map = DetMap::new(&t, MapConfig::tiny());
        let mut h = map.handle(&t);
        assert_eq!(h.apply(StructOp::Insert(4)), Some(1));
        assert_eq!(h.apply(StructOp::Insert(4)), Some(0));
        assert_eq!(h.apply(StructOp::Contains(4)), Some(1));
        assert_eq!(h.apply(StructOp::Remove(4)), Some(1));
        assert_eq!(h.apply(StructOp::Remove(4)), Some(0));
        assert_eq!(h.apply(StructOp::Contains(4)), Some(0));
    }
}
