//! The "General" set: the Harris–Michael list transformed by the
//! Low-Computation-Delay (CAS-Read) simulator of §6.
//!
//! The shape differs from every other structure in the workspace: a remove is
//! a **two-CAS protocol**. Only the first CAS — the logical mark, the
//! operation's linearization point — needs exactly-once recovery, so only it
//! heads a CAS-Read capsule with [`recoverable_cas`]. The physical unlink (and
//! every unlink a traversal performs over marked nodes it walks) is
//! parallelizable helping: safe to repeat, harmless to lose, so it uses the
//! *anonymous* CAS exactly as §7 prescribes for generator/wrap-up CASes — it
//! neither consumes a sequence number nor clobbers the notification owed to a
//! competing executor CAS on the same word. Anonymous helping CASes inside the
//! read-only search capsules are sound for the same reason repetitions of
//! parallelizable methods are: re-executing the capsule after a crash re-runs
//! only operations whose repetition is invisible.
//!
//! The marked-pointer encodings occupy 33 bits, so the recoverable-CAS words
//! use [`SET_RCAS_LAYOUT`](crate::node::SET_RCAS_LAYOUT) rather than the
//! default 32-bit-value layout.

use capsules::{recoverable_cas, BoundaryStyle, CapsuleRuntime, CapsuleStep};
use pmem::{PAddr, PThread};
use rcas::RcasSpace;

use crate::api::{bool_ret, Drain, StructHandle, StructOp};
use crate::node::{
    enc, enc_addr, enc_marked, next_addr, snapshot_up_to, value_addr, NODE_WORDS, SET_RCAS_LAYOUT,
};

// Persisted local slots (user indices).
const L_KEY: usize = 0;
const L_PRED_ADDR: usize = 1; // the word the insert/unlink CAS targets
const L_PRED_ENC: usize = 2; // its expected encoding (decodes to curr, unmarked)
const L_CURR_NEXT: usize = 3; // remove: address of curr's next word (mark target)
const L_CURR_ENC: usize = 4; // remove: curr's next encoding (unmarked) / contains: result
const L_NODE: usize = 5; // insert: the new node
const L_TICKET: usize = 6; // caller-supplied operation ticket (see `set_ticket`)
/// Number of user locals a handle's capsule runtime uses.
pub const SET_GENERAL_LOCALS: usize = 7;

// Insert program counters.
const I_FIND: u32 = 0;
const I_CAS: u32 = 1;
const I_DONE_TRUE: u32 = 2;
const I_DONE_FALSE: u32 = 3;
// Remove program counters.
const R_FIND: u32 = 10;
const R_MARK: u32 = 11;
const R_UNLINK: u32 = 12;
const R_DONE_TRUE: u32 = 13;
const R_DONE_FALSE: u32 = 14;
// Contains program counters.
const C_FIND: u32 = 20;
const C_DONE: u32 = 21;

/// Outcome of the capsule-level Harris–Michael search (all fields are
/// boundary-persistable words).
struct Window {
    pred_addr: PAddr,
    pred_enc: u64,
    curr: PAddr,
    curr_enc: u64,
    found: bool,
}

/// The shared, persistent part of the transformed set.
#[derive(Clone, Copy, Debug)]
pub struct GeneralSet {
    head: PAddr,
    space: RcasSpace,
    manual: bool,
    style: BoundaryStyle,
}

impl GeneralSet {
    /// Create an empty set for `nprocs` processes. `manual` selects the
    /// hand-placed flush discipline (node persisted before publication, CAS
    /// targets persisted after, durable announcements in the rcas layer).
    pub fn new(thread: &PThread<'_>, nprocs: usize, manual: bool, style: BoundaryStyle) -> GeneralSet {
        let space = RcasSpace::new(thread, nprocs, SET_RCAS_LAYOUT).with_durability(manual);
        let head = thread.alloc(1);
        space.init_word(thread, head, 0);
        if manual {
            thread.persist(head);
        }
        GeneralSet {
            head,
            space,
            manual,
            style,
        }
    }

    /// The recoverable-CAS space used by this set.
    pub fn space(&self) -> &RcasSpace {
        &self.space
    }

    /// Create the calling thread's handle (allocating its capsule frame).
    pub fn handle<'q, 't, 'm>(&'q self, thread: &'t PThread<'m>) -> GeneralSetHandle<'q, 't, 'm> {
        let rt = CapsuleRuntime::new(thread, self.style, SET_GENERAL_LOCALS);
        GeneralSetHandle { set: self, rt }
    }

    /// Re-attach a handle after a restart (resumes from the restart pointer).
    pub fn attach_handle<'q, 't, 'm>(
        &'q self,
        thread: &'t PThread<'m>,
    ) -> GeneralSetHandle<'q, 't, 'm> {
        let rt = CapsuleRuntime::attach_from_restart_pointer(thread, self.style, SET_GENERAL_LOCALS);
        GeneralSetHandle { set: self, rt }
    }

    /// Harris–Michael search with anonymous helping unlinks (see module docs).
    fn find(&self, t: &PThread<'_>, k: u64) -> Window {
        'retry: loop {
            let mut pred_addr = self.head;
            let mut pred_enc = self.space.read(t, pred_addr);
            loop {
                let curr = enc_addr(pred_enc);
                if curr.is_null() {
                    return Window {
                        pred_addr,
                        pred_enc,
                        curr,
                        curr_enc: 0,
                        found: false,
                    };
                }
                let curr_enc = self.space.read(t, next_addr(curr));
                if enc_marked(curr_enc) {
                    let unmarked = enc(enc_addr(curr_enc), false);
                    if !self.space.cas_anonymous(t, pred_addr, pred_enc, unmarked) {
                        continue 'retry;
                    }
                    if self.manual {
                        t.flush(pred_addr);
                    }
                    pred_enc = unmarked;
                    continue;
                }
                let ck = t.read(value_addr(curr));
                if ck >= k {
                    return Window {
                        pred_addr,
                        pred_enc,
                        curr,
                        curr_enc,
                        found: ck == k,
                    };
                }
                pred_addr = next_addr(curr);
                pred_enc = curr_enc;
            }
        }
    }

    /// Count the unmarked keys (diagnostic; not linearizable).
    pub fn len(&self, thread: &PThread<'_>) -> usize {
        let mut count = 0;
        let mut node = enc_addr(self.space.read(thread, self.head));
        while !node.is_null() {
            let next = self.space.read(thread, next_addr(node));
            if !enc_marked(next) {
                count += 1;
            }
            node = enc_addr(next);
        }
        count
    }

    /// Flush + fence a line, per the manual-durability discipline (the compact
    /// style elides the fence before a CAS: the lock prefix orders the flush).
    fn persist_line(&self, thread: &PThread<'_>, addr: PAddr) {
        if !self.manual {
            return;
        }
        thread.flush(addr);
        if self.style != BoundaryStyle::Compact {
            thread.fence();
        }
    }

    /// Flush + fence unconditionally: for persists followed by a capsule
    /// boundary, whose release-store control write (unlike a locked CAS) does
    /// not order earlier flushes — the frame could persist without the node.
    fn persist_line_before_boundary(&self, thread: &PThread<'_>, addr: PAddr) {
        if !self.manual {
            return;
        }
        thread.flush(addr);
        thread.fence();
    }

    // ----- capsule bodies --------------------------------------------------------
    //
    // One function per operation, dispatching on the runtime's pc. Kept as named
    // methods (rather than closures inside insert/remove/contains) so that
    // `resume_interrupted` can re-enter the same state machine from whatever pc a
    // previous incarnation persisted.

    /// One insert capsule (entry pc [`I_FIND`]).
    fn insert_step(&self, rt: &mut CapsuleRuntime<'_, '_>) -> CapsuleStep<bool> {
        let space = self.space;
        match rt.pc() {
            // Search capsule (reads + anonymous helping): locate the window,
            // allocate and initialise the node.
            I_FIND => {
                let k = rt.local(L_KEY);
                let t = rt.thread();
                let w = self.find(t, k);
                if w.found {
                    rt.finish_boundary(I_DONE_FALSE);
                    return CapsuleStep::Done(false);
                }
                let node = t.alloc(NODE_WORDS);
                t.write(value_addr(node), k);
                space.init_word(t, next_addr(node), w.pred_enc);
                // The I_CAS boundary (not a CAS) publishes the node pointer
                // next, so the fence cannot be elided here.
                self.persist_line_before_boundary(t, node);
                rt.set_local_addr(L_PRED_ADDR, w.pred_addr);
                rt.set_local(L_PRED_ENC, w.pred_enc);
                rt.set_local_addr(L_NODE, node);
                rt.boundary(I_CAS);
                CapsuleStep::Continue
            }
            // CAS-Read capsule: link the node into the window.
            I_CAS => {
                let pred_addr = rt.local_addr(L_PRED_ADDR);
                let expected = rt.local(L_PRED_ENC);
                let node = rt.local_addr(L_NODE);
                let ok = recoverable_cas(rt, &space, pred_addr, expected, enc(node, false));
                if ok {
                    self.persist_line(rt.thread(), pred_addr);
                    rt.finish_boundary(I_DONE_TRUE);
                    CapsuleStep::Done(true)
                } else {
                    rt.boundary(I_FIND);
                    CapsuleStep::Continue
                }
            }
            I_DONE_TRUE => CapsuleStep::Done(true),
            I_DONE_FALSE => CapsuleStep::Done(false),
            pc => unreachable!("general set insert: unexpected pc {pc}"),
        }
    }

    /// One remove capsule (entry pc [`R_FIND`]).
    fn remove_step(&self, rt: &mut CapsuleRuntime<'_, '_>) -> CapsuleStep<bool> {
        let space = self.space;
        match rt.pc() {
            // Search capsule: locate the victim's window.
            R_FIND => {
                let k = rt.local(L_KEY);
                let w = self.find(rt.thread(), k);
                if !w.found {
                    rt.finish_boundary(R_DONE_FALSE);
                    return CapsuleStep::Done(false);
                }
                rt.set_local_addr(L_PRED_ADDR, w.pred_addr);
                rt.set_local(L_PRED_ENC, w.pred_enc);
                rt.set_local_addr(L_CURR_NEXT, next_addr(w.curr));
                rt.set_local(L_CURR_ENC, w.curr_enc);
                rt.boundary(R_MARK);
                CapsuleStep::Continue
            }
            // CAS-Read capsule: the logical mark — the linearization point,
            // and the only CAS of the protocol that needs exactly-once
            // recovery.
            R_MARK => {
                let curr_next = rt.local_addr(L_CURR_NEXT);
                let curr_enc = rt.local(L_CURR_ENC);
                let ok = recoverable_cas(rt, &space, curr_next, curr_enc, curr_enc | 1);
                if ok {
                    self.persist_line(rt.thread(), curr_next);
                    rt.boundary(R_UNLINK);
                } else {
                    rt.boundary(R_FIND);
                }
                CapsuleStep::Continue
            }
            // Helping capsule: best-effort physical unlink (anonymous CAS —
            // repetition-safe, loss-tolerant; traversals finish the job).
            R_UNLINK => {
                let t = rt.thread();
                let pred_addr = rt.local_addr(L_PRED_ADDR);
                let pred_enc = rt.local(L_PRED_ENC);
                let curr_enc = rt.local(L_CURR_ENC);
                if space.cas_anonymous(t, pred_addr, pred_enc, curr_enc) && self.manual {
                    t.flush(pred_addr);
                }
                rt.finish_boundary(R_DONE_TRUE);
                CapsuleStep::Done(true)
            }
            R_DONE_TRUE => CapsuleStep::Done(true),
            R_DONE_FALSE => CapsuleStep::Done(false),
            pc => unreachable!("general set remove: unexpected pc {pc}"),
        }
    }

    /// One contains capsule (entry pc [`C_FIND`]).
    fn contains_step(&self, rt: &mut CapsuleRuntime<'_, '_>) -> CapsuleStep<bool> {
        let space = self.space;
        match rt.pc() {
            C_FIND => {
                let k = rt.local(L_KEY);
                let t = rt.thread();
                let mut found = false;
                let mut node = enc_addr(space.read(t, self.head));
                while !node.is_null() {
                    let next = space.read(t, next_addr(node));
                    let ck = t.read(value_addr(node));
                    if !enc_marked(next) {
                        if ck == k {
                            found = true;
                            break;
                        }
                        if ck > k {
                            break;
                        }
                    }
                    node = enc_addr(next);
                }
                rt.set_local(L_CURR_ENC, found as u64);
                rt.finish_boundary(C_DONE);
                CapsuleStep::Done(found)
            }
            C_DONE => CapsuleStep::Done(rt.local(L_CURR_ENC) != 0),
            pc => unreachable!("general set contains: unexpected pc {pc}"),
        }
    }
}

/// Per-thread handle: the thread's capsule runtime plus a reference to the set.
pub struct GeneralSetHandle<'q, 't, 'm> {
    set: &'q GeneralSet,
    rt: CapsuleRuntime<'t, 'm>,
}

impl<'q, 't, 'm> GeneralSetHandle<'q, 't, 'm> {
    /// Access the underlying capsule runtime (metrics, crash flavour…).
    pub fn runtime_mut(&mut self) -> &mut CapsuleRuntime<'t, 'm> {
        &mut self.rt
    }

    /// See [`CapsuleRuntime::set_entry_boundary`].
    pub fn set_entry_boundary(&mut self, enabled: bool) {
        self.rt.set_entry_boundary(enabled);
    }

    /// Insert `k` (detectably); returns whether it was absent.
    pub fn insert(&mut self, k: u64) -> bool {
        let set = self.set;
        self.rt.set_local(L_KEY, k);
        self.rt.run_op(I_FIND, |rt| set.insert_step(rt))
    }

    /// Remove `k` (detectably); returns whether it was present.
    pub fn remove(&mut self, k: u64) -> bool {
        let set = self.set;
        self.rt.set_local(L_KEY, k);
        self.rt.run_op(R_FIND, |rt| set.remove_step(rt))
    }

    /// Membership test (read-only, single capsule).
    pub fn contains(&mut self, k: u64) -> bool {
        let set = self.set;
        self.rt.set_local(L_KEY, k);
        self.rt.run_op(C_FIND, |rt| set.contains_step(rt))
    }

    /// Stamp the next operation with a caller-chosen ticket. The ticket is a
    /// persisted local like the key: the operation's entry boundary makes it
    /// durable together with the arguments, and it survives in the frame until
    /// a later operation's entry boundary overwrites it. A harness that tags
    /// every request with a unique nonzero ticket can therefore tell, after a
    /// kill, *which* request the frame's state belongs to — the disambiguation
    /// [`resume_interrupted`](Self::resume_interrupted) reports back.
    pub fn set_ticket(&mut self, ticket: u64) {
        self.rt.set_local(L_TICKET, ticket);
    }

    /// After [`GeneralSet::attach_handle`], finish whatever the previous
    /// incarnation left in the frame.
    ///
    /// Reads the persisted program counter and dispatches:
    /// * mid-operation pc → drives the interrupted operation to completion with
    ///   [`CapsuleRuntime::resume_op`] (`resumed == true`);
    /// * result pc → the operation completed before the crash but its result may
    ///   never have been delivered; the persisted result is read back
    ///   (`resumed == false`);
    /// * virgin frame (nothing ever ran: pc at the insert entry with a zero
    ///   ticket) → `None`.
    ///
    /// Exactly-once falls out of the capsule machinery: a resumed operation
    /// takes effect once no matter how far it had progressed, and a completed
    /// one is only *read*, never re-applied. The caller matches the returned
    /// ticket against its own in-flight record to decide whether the resumption
    /// answers an outstanding request or predates it.
    pub fn resume_interrupted(&mut self) -> Option<Resumption> {
        let set = self.set;
        let pc = self.rt.pc();
        let ticket = self.rt.local(L_TICKET);
        let key = self.rt.local(L_KEY);
        if pc == I_FIND && ticket == 0 {
            // A frame in its initial state: entry pc, never stamped. (Callers
            // that never use tickets get `insert(key)` resumed via the arm
            // below only when they opt in by stamping a nonzero ticket.)
            return None;
        }
        let (op, result, resumed) = match pc {
            I_FIND | I_CAS => {
                let r = self.rt.resume_op(|rt| set.insert_step(rt));
                (StructOp::Insert(key), r, true)
            }
            R_FIND | R_MARK | R_UNLINK => {
                let r = self.rt.resume_op(|rt| set.remove_step(rt));
                (StructOp::Remove(key), r, true)
            }
            C_FIND => {
                let r = self.rt.resume_op(|rt| set.contains_step(rt));
                (StructOp::Contains(key), r, true)
            }
            I_DONE_TRUE | I_DONE_FALSE => (StructOp::Insert(key), pc == I_DONE_TRUE, false),
            R_DONE_TRUE | R_DONE_FALSE => (StructOp::Remove(key), pc == R_DONE_TRUE, false),
            C_DONE => (StructOp::Contains(key), self.rt.local(L_CURR_ENC) != 0, false),
            pc => unreachable!("general set resume: unexpected persisted pc {pc}"),
        };
        Some(Resumption {
            ticket,
            op,
            result,
            resumed,
        })
    }
}

/// What [`GeneralSetHandle::resume_interrupted`] found in a re-attached frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Resumption {
    /// The ticket the operation's entry boundary persisted (`0` if the caller
    /// never stamped one).
    pub ticket: u64,
    /// The operation the frame describes.
    pub op: StructOp,
    /// Its exactly-once result.
    pub result: bool,
    /// `true` if the operation was still in flight and was driven to completion
    /// here; `false` if it had already completed and only its persisted result
    /// was read back.
    pub resumed: bool,
}

impl StructHandle for GeneralSetHandle<'_, '_, '_> {
    fn apply(&mut self, op: StructOp) -> Option<u64> {
        match op {
            StructOp::Insert(k) => bool_ret(self.insert(k)),
            StructOp::Remove(k) => bool_ret(self.remove(k)),
            StructOp::Contains(k) => bool_ret(self.contains(k)),
            other => panic!("set handle cannot apply stack operation {other:?}"),
        }
    }

    fn drain_up_to(&mut self, max: usize) -> Drain {
        let set = self.set;
        let space = set.space;
        let t = self.rt.thread();
        snapshot_up_to(
            max,
            space.read(t, set.head),
            |a| space.read(t, a),
            |a| t.read(a),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{install_quiet_crash_hook, CrashPlan, CrashPolicy, MemConfig, Mode, PMem};

    #[test]
    fn insert_remove_contains_single_thread_both_styles() {
        for style in [BoundaryStyle::General, BoundaryStyle::Compact] {
            let mem = PMem::with_threads(1);
            let t = mem.thread(0);
            let s = GeneralSet::new(&t, 1, true, style);
            let mut h = s.handle(&t);
            assert!(h.insert(5));
            assert!(h.insert(3));
            assert!(!h.insert(5));
            assert!(h.contains(3));
            assert!(!h.contains(4));
            assert!(h.remove(3));
            assert!(!h.remove(3));
            assert_eq!(h.drain_up_to(16).items, vec![5], "style {style:?}");
            assert_eq!(s.len(&t), 1);
        }
    }

    #[test]
    fn concurrent_same_key_contention_is_exact() {
        const THREADS: usize = 3;
        const ROUNDS: u64 = 250;
        let mem = PMem::with_threads(THREADS);
        let s = GeneralSet::new(&mem.thread(0), THREADS, true, BoundaryStyle::General);
        let counts: Vec<(u64, u64)> = std::thread::scope(|sc| {
            let handles: Vec<_> = (0..THREADS)
                .map(|pid| {
                    let mem = &mem;
                    let s = &s;
                    sc.spawn(move || {
                        let t = mem.thread(pid);
                        let mut h = s.handle(&t);
                        let (mut ins, mut rem) = (0, 0);
                        for r in 0..ROUNDS {
                            let k = r % 5;
                            if h.insert(k) {
                                ins += 1;
                            }
                            if h.remove(k) {
                                rem += 1;
                            }
                        }
                        (ins, rem)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let total_ins: u64 = counts.iter().map(|c| c.0).sum();
        let total_rem: u64 = counts.iter().map(|c| c.1).sum();
        let t = mem.thread(0);
        let mut h = s.handle(&t);
        let left = h.drain_up_to(64).items;
        assert_eq!(total_ins, total_rem + left.len() as u64);
    }

    #[test]
    fn operations_survive_random_crashes() {
        install_quiet_crash_hook();
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let s = GeneralSet::new(&t, 1, true, BoundaryStyle::General);
        let mut h = s.handle(&t);
        t.set_crash_policy(CrashPolicy::Random { prob: 0.02, seed: 41 });
        let mut model = std::collections::BTreeSet::new();
        for r in 0..400u64 {
            let k = (r * 7) % 13;
            if r % 3 == 2 {
                assert_eq!(h.remove(k), model.remove(&k), "round {r} remove({k})");
            } else {
                assert_eq!(h.insert(k), model.insert(k), "round {r} insert({k})");
            }
        }
        t.disarm_crashes();
        assert!(t.stats().crashes > 0);
        let left = h.drain_up_to(64).items;
        assert_eq!(left, model.iter().copied().collect::<Vec<u64>>());
    }

    #[test]
    fn manual_durability_survives_full_system_crash() {
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        let t = mem.thread(0);
        let s = GeneralSet::new(&t, 1, true, BoundaryStyle::General);
        {
            let mut h = s.handle(&t);
            for k in [9, 2, 6] {
                assert!(h.insert(k));
            }
            assert!(h.remove(6));
        }
        mem.crash_all();
        let t = mem.thread(0);
        let mut h = s.attach_handle(&t);
        assert_eq!(h.drain_up_to(16).items, vec![2, 9]);
    }

    #[test]
    fn kill_mid_operation_then_resume_in_next_incarnation_is_exactly_once() {
        install_quiet_crash_hook();
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        let t0 = mem.thread(0);
        let s = GeneralSet::new(&t0, 1, true, BoundaryStyle::General);
        drop(t0);
        // Incarnation 1: one completed op, then an insert killed mid-flight.
        {
            let t = mem.thread(0);
            let mut h = s.handle(&t);
            h.set_ticket(1);
            assert!(h.insert(40));
            h.runtime_mut().set_unwind_on_crash(true);
            h.set_ticket(2);
            t.set_crash_policy(CrashPolicy::Countdown(20));
            let died = pmem::catch_crash(std::panic::AssertUnwindSafe(|| h.insert(41)));
            assert!(died.is_err(), "the kill must unwind out of the insert");
        }
        mem.crash_all();
        // Incarnation 2: re-attach, finish the interrupted insert exactly once.
        {
            let t = mem.thread(0);
            let mut h = s.attach_handle(&t);
            let r = h.resume_interrupted().expect("an operation was in flight");
            assert_eq!(r.ticket, 2);
            assert_eq!(r.op, StructOp::Insert(41));
            assert!(r.result, "41 was absent, the resumed insert must report true");
            assert!(r.resumed);
            assert_eq!(h.drain_up_to(8).items, vec![40, 41]);
        }
        // Incarnation 3: nothing in flight — the frame shows the *completed*
        // resumed insert; its persisted result reads back without re-applying.
        mem.crash_all();
        let t = mem.thread(0);
        let mut h = s.attach_handle(&t);
        let r = h.resume_interrupted().expect("frame holds the completed op");
        assert_eq!(r.ticket, 2);
        assert_eq!(r.op, StructOp::Insert(41));
        assert!(r.result && !r.resumed);
        assert_eq!(h.drain_up_to(8).items, vec![40, 41], "readback must not re-insert");
    }

    /// dfck-style exhaustive enumeration at the crate level: every crash point
    /// of an insert/remove/contains window (exercising both the one-CAS insert
    /// and the two-CAS remove protocols), single + nested schedules, both
    /// crash flavours.
    #[test]
    fn exhaustive_crash_point_sweep_is_exact() {
        install_quiet_crash_hook();
        type History = (Vec<Option<u64>>, Vec<u64>);
        let run = |plan: Option<CrashPlan>, system: bool| -> (History, u64, u64) {
            let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
            let t = mem.thread(0);
            let s = GeneralSet::new(&t, 1, true, BoundaryStyle::General);
            let mut h = s.handle(&t);
            h.runtime_mut().set_system_crashes(system);
            assert!(h.insert(10));
            assert!(h.insert(20));
            mem.persist_everything();
            let _ = t.take_stats();
            if let Some(p) = plan {
                t.set_crash_schedule(p);
            }
            let rets = vec![
                h.apply(StructOp::Insert(15)),
                h.apply(StructOp::Insert(15)),
                h.apply(StructOp::Remove(10)),
                h.apply(StructOp::Contains(15)),
                h.apply(StructOp::Remove(99)),
            ];
            let points = t.stats().crash_points;
            t.disarm_crashes();
            let drained = h.drain_up_to(8);
            assert!(!drained.truncated);
            ((rets, drained.items), points, h.runtime_mut().metrics().recovery_crashes)
        };
        for system in [false, true] {
            let (base, n, _) = run(None, system);
            assert_eq!(
                base,
                (
                    vec![Some(1), Some(0), Some(1), Some(1), Some(0)],
                    vec![15, 20]
                )
            );
            assert!(n > 0);
            let mut nested_recovery_crashes = 0;
            for k in 0..n {
                let (hist, _, _) = run(Some(CrashPlan::once(k)), system);
                assert_eq!(hist, base, "system={system} crash at point {k}");
                let (hist, _, rc) = run(Some(CrashPlan::nested(k, &[0])), system);
                assert_eq!(hist, base, "system={system} nested crash at point {k}");
                nested_recovery_crashes += rc;
            }
            assert!(
                nested_recovery_crashes > 0,
                "the nested sweep must interrupt at least one recovery (system={system})"
            );
        }
    }
}
