//! The plain Treiber stack (IBM TR 1986) on simulated memory.
//!
//! This is the untransformed baseline of the structure family, exactly like
//! [`queues::MsQueue`] is for the queues: plain CASes, no capsules, no
//! recoverable CAS, no flushes. Running its operations through a thread handle
//! with [`pmem::ThreadOptions`]`{ izraelevitz: true }` yields the
//! Izraelevitz-transformed stack — durably linearizable by construction (a
//! flush after every shared access) but **not** detectable: after a crash the
//! process cannot tell whether its in-flight push/pop took effect.

use pmem::{PAddr, PThread};

use crate::api::{drain_by_pops, Drain, StructHandle, StructOp};
use crate::node::{alloc_node, next_addr, value_addr};

/// The shared, persistent part of the stack: the `top` pointer word.
#[derive(Clone, Copy, Debug)]
pub struct TreiberStack {
    top: PAddr,
}

impl TreiberStack {
    /// Create an empty stack.
    pub fn new(thread: &PThread<'_>) -> TreiberStack {
        let top = thread.alloc(1);
        thread.write(top, 0);
        TreiberStack { top }
    }

    /// Address of the top pointer (used by tests asserting durability).
    pub fn top_addr(&self) -> PAddr {
        self.top
    }

    /// Create this thread's operation handle.
    pub fn handle<'q, 't, 'm>(&'q self, thread: &'t PThread<'m>) -> TreiberStackHandle<'q, 't, 'm> {
        TreiberStackHandle { stack: self, thread }
    }

    /// Count the elements currently reachable from the top (diagnostic; not
    /// linearizable with respect to concurrent operations).
    pub fn len(&self, thread: &PThread<'_>) -> usize {
        let mut count = 0;
        let mut node = PAddr::from_raw(thread.read(self.top));
        while !node.is_null() {
            count += 1;
            node = PAddr::from_raw(thread.read(next_addr(node)));
        }
        count
    }

    /// Whether the stack is empty (same caveats as [`len`](Self::len)).
    pub fn is_empty(&self, thread: &PThread<'_>) -> bool {
        self.len(thread) == 0
    }
}

/// Per-thread handle for the plain Treiber stack.
#[derive(Debug)]
pub struct TreiberStackHandle<'q, 't, 'm> {
    stack: &'q TreiberStack,
    thread: &'t PThread<'m>,
}

impl TreiberStackHandle<'_, '_, '_> {
    /// Push `value` onto the stack.
    pub fn push(&mut self, value: u64) {
        let t = self.thread;
        let node = alloc_node(t, value);
        loop {
            let top = t.read(self.stack.top);
            t.write(next_addr(node), top);
            if t.cas(self.stack.top, top, node.to_raw()) {
                return;
            }
        }
    }

    /// Pop the top of the stack.
    pub fn pop(&mut self) -> Option<u64> {
        let t = self.thread;
        loop {
            let top = PAddr::from_raw(t.read(self.stack.top));
            if top.is_null() {
                return None;
            }
            let next = t.read(next_addr(top));
            let value = t.read(value_addr(top));
            if t.cas(self.stack.top, top.to_raw(), next) {
                return Some(value);
            }
        }
    }
}

impl StructHandle for TreiberStackHandle<'_, '_, '_> {
    fn apply(&mut self, op: StructOp) -> Option<u64> {
        match op {
            StructOp::Push(v) => {
                self.push(v);
                None
            }
            StructOp::Pop => self.pop(),
            other => panic!("stack handle cannot apply set operation {other:?}"),
        }
    }

    fn drain_up_to(&mut self, max: usize) -> Drain {
        drain_by_pops(max, || self.pop())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{MemConfig, Mode, PMem, ThreadOptions};
    use std::collections::HashSet;

    #[test]
    fn lifo_order_single_thread() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let s = TreiberStack::new(&t);
        let mut h = s.handle(&t);
        assert_eq!(h.pop(), None);
        for i in 1..=100 {
            h.push(i);
        }
        assert_eq!(s.len(&t), 100);
        for i in (1..=100).rev() {
            assert_eq!(h.pop(), Some(i));
        }
        assert_eq!(h.pop(), None);
        assert!(s.is_empty(&t));
    }

    #[test]
    fn concurrent_push_pop_preserves_elements() {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 5_000;
        let mem = PMem::with_threads(THREADS);
        let s = TreiberStack::new(&mem.thread(0));
        let results: Vec<Vec<u64>> = std::thread::scope(|sc| {
            let handles: Vec<_> = (0..THREADS)
                .map(|pid| {
                    let mem = &mem;
                    let s = &s;
                    sc.spawn(move || {
                        let t = mem.thread(pid);
                        let mut h = s.handle(&t);
                        let mut popped = Vec::new();
                        for i in 0..PER_THREAD {
                            h.push((pid as u64) << 32 | i);
                            if let Some(v) = h.pop() {
                                popped.push(v);
                            }
                        }
                        popped
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let t = mem.thread(0);
        let mut h = s.handle(&t);
        let mut all: Vec<u64> = results.into_iter().flatten().collect();
        while let Some(v) = h.pop() {
            all.push(v);
        }
        assert_eq!(all.len(), THREADS * PER_THREAD as usize);
        let unique: HashSet<u64> = all.iter().copied().collect();
        assert_eq!(unique.len(), all.len(), "an element was popped twice");
    }

    #[test]
    fn izraelevitz_option_makes_contents_durable() {
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        let t = mem.thread_with(0, ThreadOptions { izraelevitz: true });
        let s = TreiberStack::new(&t);
        {
            let mut h = s.handle(&t);
            for i in 1..=10 {
                h.push(i);
            }
        }
        mem.crash_all();
        let t = mem.thread(0);
        let mut h = s.handle(&t);
        for i in (1..=10).rev() {
            assert_eq!(h.pop(), Some(i));
        }
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn struct_handle_face_encodes_results_and_drains_lifo() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let s = TreiberStack::new(&t);
        let mut h = s.handle(&t);
        assert_eq!(h.apply(StructOp::Push(5)), None);
        assert_eq!(h.apply(StructOp::Push(6)), None);
        assert_eq!(h.apply(StructOp::Pop), Some(6));
        h.push(7);
        let d = h.drain_up_to(8);
        assert_eq!((d.items, d.truncated), (vec![7, 5], false));
        assert_eq!(h.drain_up_to(8).items, Vec::<u64>::new());
        // A cap below the element count reports truncation.
        for v in [1, 2, 3] {
            h.push(v);
        }
        let d = h.drain_up_to(2);
        assert_eq!((d.items, d.truncated), (vec![3, 2], true));
    }
}
