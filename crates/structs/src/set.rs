//! The plain lock-free sorted linked-list set (Harris 2001 / Michael 2002) on
//! simulated memory — the set-shaped counterpart of [`queues::MsQueue`].
//!
//! Keys live in a singly linked list kept in ascending order. A remove is two
//! CASes: first the *logical* deletion sets the mark bit inside the victim's
//! own next word (the linearization point — and, because the mark changes the
//! very word an insert-after-victim would CAS, no insert can ever succeed
//! behind a deleted node), then a *physical* unlink swings the predecessor
//! past it. Unlinks are helping work: the remover attempts one, and every
//! later traversal unlinks whatever marked nodes it walks over, so windows
//! stay adjacent (`pred.next == curr`) without any traversal ever blocking.
//!
//! Plain CASes, no capsules, no flushes: running the operations through a
//! thread handle with [`pmem::ThreadOptions`]`{ izraelevitz: true }` yields
//! the durably linearizable (but **not** detectable) Izraelevitz set.

use pmem::{PAddr, PThread};

use crate::api::{bool_ret, Drain, StructHandle, StructOp};
use crate::node::{alloc_node, enc, enc_addr, enc_marked, next_addr, snapshot_up_to, value_addr};

/// A search window: the word to CAS for an insert/unlink, its expected
/// encoding, and the first unmarked node with `key >= k` (null at the end of
/// the list). `pred_enc` always decodes to `curr` unmarked — adjacency.
pub(crate) struct Window {
    pub pred_addr: PAddr,
    pub pred_enc: u64,
    pub curr: PAddr,
    /// `curr`'s next encoding (unmarked) at observation time; 0 when `curr` is null.
    pub curr_enc: u64,
    pub found: bool,
}

/// The shared, persistent part of the set: one word holding the encoded
/// pointer to the first node (a degenerate sentinel — the head itself can
/// never be marked, so its word always decodes unmarked).
#[derive(Clone, Copy, Debug)]
pub struct ListSet {
    head: PAddr,
}

impl ListSet {
    /// Create an empty set.
    pub fn new(thread: &PThread<'_>) -> ListSet {
        let head = thread.alloc(1);
        thread.write(head, 0);
        ListSet { head }
    }

    /// Address of the head word (used by tests asserting durability).
    pub fn head_addr(&self) -> PAddr {
        self.head
    }

    /// Create this thread's operation handle.
    pub fn handle<'q, 't, 'm>(&'q self, thread: &'t PThread<'m>) -> ListSetHandle<'q, 't, 'm> {
        ListSetHandle { set: self, thread }
    }

    /// Harris–Michael search: locate the window for `k`, unlinking every
    /// marked node encountered (restarting from the head when an unlink loses
    /// its race).
    fn find(&self, t: &PThread<'_>, k: u64) -> Window {
        'retry: loop {
            let mut pred_addr = self.head;
            let mut pred_enc = t.read(pred_addr);
            loop {
                let curr = enc_addr(pred_enc);
                if curr.is_null() {
                    return Window {
                        pred_addr,
                        pred_enc,
                        curr,
                        curr_enc: 0,
                        found: false,
                    };
                }
                let curr_enc = t.read(next_addr(curr));
                if enc_marked(curr_enc) {
                    // Logically deleted: help unlink, keeping the window adjacent.
                    let unmarked = enc(enc_addr(curr_enc), false);
                    if !t.cas(pred_addr, pred_enc, unmarked) {
                        continue 'retry;
                    }
                    pred_enc = unmarked;
                    continue;
                }
                let ck = t.read(value_addr(curr));
                if ck >= k {
                    return Window {
                        pred_addr,
                        pred_enc,
                        curr,
                        curr_enc,
                        found: ck == k,
                    };
                }
                pred_addr = next_addr(curr);
                pred_enc = curr_enc;
            }
        }
    }

    /// Count the unmarked keys (diagnostic; not linearizable).
    pub fn len(&self, thread: &PThread<'_>) -> usize {
        let mut count = 0;
        let mut node = enc_addr(thread.read(self.head));
        while !node.is_null() {
            let next = thread.read(next_addr(node));
            if !enc_marked(next) {
                count += 1;
            }
            node = enc_addr(next);
        }
        count
    }
}

/// Per-thread handle for the plain list set.
#[derive(Debug)]
pub struct ListSetHandle<'q, 't, 'm> {
    set: &'q ListSet,
    thread: &'t PThread<'m>,
}

impl ListSetHandle<'_, '_, '_> {
    /// Insert `k`; returns whether it was absent.
    pub fn insert(&mut self, k: u64) -> bool {
        let t = self.thread;
        loop {
            let w = self.set.find(t, k);
            if w.found {
                return false;
            }
            let node = alloc_node(t, k);
            t.write(next_addr(node), w.pred_enc);
            if t.cas(w.pred_addr, w.pred_enc, enc(node, false)) {
                return true;
            }
        }
    }

    /// Remove `k`; returns whether it was present.
    pub fn remove(&mut self, k: u64) -> bool {
        let t = self.thread;
        loop {
            let w = self.set.find(t, k);
            if !w.found {
                return false;
            }
            // Logical deletion: the linearization point.
            if !t.cas(next_addr(w.curr), w.curr_enc, w.curr_enc | 1) {
                continue;
            }
            // Best-effort physical unlink; traversals finish the job if it loses.
            let _ = t.cas(w.pred_addr, w.pred_enc, w.curr_enc);
            return true;
        }
    }

    /// Membership test (read-only: skips marked nodes without helping).
    pub fn contains(&mut self, k: u64) -> bool {
        let t = self.thread;
        let mut node = enc_addr(t.read(self.set.head));
        while !node.is_null() {
            let next = t.read(next_addr(node));
            let ck = t.read(value_addr(node));
            if !enc_marked(next) {
                if ck == k {
                    return true;
                }
                if ck > k {
                    return false;
                }
            }
            node = enc_addr(next);
        }
        false
    }

}

impl StructHandle for ListSetHandle<'_, '_, '_> {
    fn apply(&mut self, op: StructOp) -> Option<u64> {
        match op {
            StructOp::Insert(k) => bool_ret(self.insert(k)),
            StructOp::Remove(k) => bool_ret(self.remove(k)),
            StructOp::Contains(k) => bool_ret(self.contains(k)),
            other => panic!("set handle cannot apply stack operation {other:?}"),
        }
    }

    fn drain_up_to(&mut self, max: usize) -> Drain {
        let t = self.thread;
        snapshot_up_to(max, t.read(self.set.head), |a| t.read(a), |a| t.read(a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{MemConfig, Mode, PMem, ThreadOptions};

    #[test]
    fn insert_remove_contains_single_thread() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let s = ListSet::new(&t);
        let mut h = s.handle(&t);
        assert!(!h.contains(5));
        assert!(h.insert(5));
        assert!(h.insert(3));
        assert!(h.insert(9));
        assert!(!h.insert(5), "duplicate insert must fail");
        assert!(h.contains(3) && h.contains(5) && h.contains(9));
        assert!(!h.contains(4));
        assert_eq!(h.drain_up_to(16).items, vec![3, 5, 9], "ascending snapshot");
        assert!(h.remove(5));
        assert!(!h.remove(5), "double remove must fail");
        assert!(!h.contains(5));
        assert_eq!(h.drain_up_to(16).items, vec![3, 9]);
        assert_eq!(s.len(&t), 2);
        // Re-insert after remove works (fresh node, no ABA).
        assert!(h.insert(5));
        assert_eq!(h.drain_up_to(16).items, vec![3, 5, 9]);
    }

    #[test]
    fn boundary_keys_zero_and_max() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let s = ListSet::new(&t);
        let mut h = s.handle(&t);
        assert!(h.insert(0));
        assert!(h.insert(u64::MAX));
        assert!(h.contains(0) && h.contains(u64::MAX));
        assert_eq!(h.drain_up_to(16).items, vec![0, u64::MAX]);
        assert!(h.remove(0));
        assert_eq!(h.drain_up_to(16).items, vec![u64::MAX]);
    }

    #[test]
    fn concurrent_disjoint_key_ranges_all_land() {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 400;
        let mem = PMem::with_threads(THREADS);
        let s = ListSet::new(&mem.thread(0));
        std::thread::scope(|sc| {
            for pid in 0..THREADS {
                let mem = &mem;
                let s = &s;
                sc.spawn(move || {
                    let t = mem.thread(pid);
                    let mut h = s.handle(&t);
                    for i in 0..PER_THREAD {
                        // Interleaved ranges so windows contend across threads.
                        assert!(h.insert(i * THREADS as u64 + pid as u64));
                    }
                });
            }
        });
        let t = mem.thread(0);
        let mut h = s.handle(&t);
        let all = h.drain_up_to(THREADS * PER_THREAD as usize + 1).items;
        assert_eq!(all.len(), THREADS * PER_THREAD as usize);
        assert!(all.windows(2).all(|w| w[0] < w[1]), "sorted and duplicate-free");
    }

    #[test]
    fn concurrent_insert_remove_same_keys_is_exact() {
        // Every thread inserts then removes the same small key range; at the
        // end the set must be empty and every operation pair must have agreed
        // (insert true exactly once per present/absent transition).
        const THREADS: usize = 3;
        const ROUNDS: u64 = 300;
        let mem = PMem::with_threads(THREADS);
        let s = ListSet::new(&mem.thread(0));
        let counts: Vec<(u64, u64)> = std::thread::scope(|sc| {
            let handles: Vec<_> = (0..THREADS)
                .map(|pid| {
                    let mem = &mem;
                    let s = &s;
                    sc.spawn(move || {
                        let t = mem.thread(pid);
                        let mut h = s.handle(&t);
                        let mut ins = 0;
                        let mut rem = 0;
                        for r in 0..ROUNDS {
                            let k = r % 7;
                            if h.insert(k) {
                                ins += 1;
                            }
                            if h.remove(k) {
                                rem += 1;
                            }
                        }
                        (ins, rem)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let total_ins: u64 = counts.iter().map(|c| c.0).sum();
        let total_rem: u64 = counts.iter().map(|c| c.1).sum();
        let t = mem.thread(0);
        let mut h = s.handle(&t);
        let left = h.drain_up_to(64).items;
        assert_eq!(
            total_ins,
            total_rem + left.len() as u64,
            "every successful insert is matched by a successful remove or survives"
        );
    }

    #[test]
    fn izraelevitz_option_makes_contents_durable() {
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        let t = mem.thread_with(0, ThreadOptions { izraelevitz: true });
        let s = ListSet::new(&t);
        {
            let mut h = s.handle(&t);
            for k in [4, 1, 3] {
                assert!(h.insert(k));
            }
            assert!(h.remove(3));
        }
        mem.crash_all();
        let t = mem.thread(0);
        let mut h = s.handle(&t);
        assert_eq!(h.drain_up_to(16).items, vec![1, 4]);
    }

    #[test]
    fn snapshot_bound_terminates_and_flags_a_cycled_chain() {
        // Artificially corrupt the chain into a cycle and check the bounded
        // snapshot terminates AND reports truncation (the drain-hook contract
        // the sweep oracle consumes).
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let s = ListSet::new(&t);
        let mut h = s.handle(&t);
        assert!(h.insert(1));
        assert!(h.insert(2));
        let first = enc_addr(t.read(s.head_addr()));
        let second = enc_addr(t.read(next_addr(first)));
        // second.next -> first: a cycle of unmarked nodes.
        t.write(next_addr(second), enc(first, false));
        let d = h.drain_up_to(10);
        assert_eq!(d.items.len(), 10, "bounded walk visits exactly `max` nodes and stops");
        assert!(d.truncated, "a cycle must be reported, not silently cut off");
    }

    #[test]
    fn snapshot_flags_a_cycle_of_marked_nodes_despite_short_key_list() {
        // The harsher shape: a cycle consisting only of *marked* nodes
        // collects no keys at all, so a pure key-count check would pass; the
        // truncation flag is what catches it.
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let s = ListSet::new(&t);
        let mut h = s.handle(&t);
        assert!(h.insert(1));
        assert!(h.insert(2));
        let first = enc_addr(t.read(s.head_addr()));
        let second = enc_addr(t.read(next_addr(first)));
        // Mark both nodes and cycle second.next back to first (marked).
        t.write(next_addr(first), enc(second, true));
        t.write(next_addr(second), enc(first, true));
        let d = h.drain_up_to(10);
        assert_eq!(d.items, Vec::<u64>::new(), "marked nodes contribute no keys");
        assert!(
            d.truncated,
            "the marked-node cycle must still be reported as truncation"
        );
    }
}
