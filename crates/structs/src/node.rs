//! Node layouts and the marked-pointer encoding shared by every variant.
//!
//! Both structures use the same two-word persistent node so the per-operation
//! memory traffic is comparable across the family (and with the queues):
//!
//! ```text
//! word 0 : value (stack) / key (set)
//! word 1 : next  (plain pointer for the stack; marked-pointer encoding for the set)
//! ```
//!
//! Nodes are bump-allocated and never reused within a run, which keeps every
//! pointer CAS ABA-free — the property the recoverable CAS requires of its
//! callers (same argument as `queues::node`).
//!
//! ## The marked-pointer encoding (set only)
//!
//! The Harris–Michael list stores a node's *logical deletion* mark in the same
//! word as its successor pointer, so that one CAS can atomically freeze the
//! node (no insert can ever succeed after a marked predecessor — the mark
//! changes the very word the insert CAS expects). Word indices fit 32 bits
//! everywhere the workspace stores them in recoverable-CAS values (the
//! documented assumption of [`RcasLayout::DEFAULT`]), so the encoding shifts
//! the address up one bit and keeps the mark in bit 0:
//!
//! ```text
//! next = (successor_word_index << 1) | marked
//! ```
//!
//! Null (index 0) encodes to 0 both marked and not — a null successor is never
//! marked (marking happens on the *node being removed*, whose next word holds
//! its successor's encoding).
//!
//! In the detectable set variants the `next` words are recoverable-CAS
//! formatted; the encoding must therefore fit the layout's *value* field, which
//! the default 32-bit-value layout cannot hold (33 bits with the mark). The
//! set variants use [`SET_RCAS_LAYOUT`] — 33-bit values, 6-bit pids, 25-bit
//! sequence numbers (33M capsules per process, far beyond any sweep here).

use pmem::{PAddr, PThread};
use rcas::RcasLayout;

/// Word offset of the value (stack) / key (set) field.
pub const VALUE: u64 = 0;
/// Word offset of the next-pointer field.
pub const NEXT: u64 = 1;
/// Number of words in a node (fits one cache line, so one flush persists it).
pub const NODE_WORDS: u64 = 2;

/// The recoverable-CAS packing used by the detectable set variants: wide enough
/// for the shifted marked-pointer encoding (see the module docs).
pub const SET_RCAS_LAYOUT: RcasLayout = RcasLayout {
    value_bits: 33,
    pid_bits: 6,
    seq_bits: 25,
};

/// Allocate a node holding `value` with a null next pointer (fresh words are
/// durably zero, and zero is null in both the plain and the marked encoding).
pub fn alloc_node(thread: &PThread<'_>, value: u64) -> PAddr {
    let node = thread.alloc(NODE_WORDS);
    thread.write(node.offset(VALUE), value);
    node
}

/// Address of a node's value/key word.
pub fn value_addr(node: PAddr) -> PAddr {
    node.offset(VALUE)
}

/// Address of a node's next word.
pub fn next_addr(node: PAddr) -> PAddr {
    node.offset(NEXT)
}

/// The node whose next word sits at `next`: inverse of [`next_addr`].
pub fn node_of_next(next: PAddr) -> PAddr {
    PAddr::from_raw(next.to_raw() - NEXT)
}

/// Encode a successor address plus mark bit.
pub fn enc(succ: PAddr, marked: bool) -> u64 {
    (succ.to_raw() << 1) | marked as u64
}

/// The successor address of an encoded next word.
pub fn enc_addr(word: u64) -> PAddr {
    PAddr::from_raw(word >> 1)
}

/// The mark bit of an encoded next word.
pub fn enc_marked(word: u64) -> bool {
    word & 1 != 0
}

/// Shared bounded ascending snapshot for the set handles: walk the chain from
/// the already-read `head_enc`, collecting unmarked keys, visiting at most
/// `max` nodes (marked or not — a cycle consisting only of marked nodes never
/// grows the key list, so the bound must count *visits*).
///
/// `truncated` is precise for sets: it is set exactly when the walk stopped
/// at the cap with chain nodes still unvisited. Oracle callers bound `max` by
/// the total nodes the replay could have allocated, so truncation proves a
/// corrupted (cyclic) chain even when the collected keys alone would have
/// matched the model — the marked-cycle case a pure length check misses.
pub(crate) fn snapshot_up_to(
    max: usize,
    head_enc: u64,
    read_next: impl Fn(PAddr) -> u64,
    read_key: impl Fn(PAddr) -> u64,
) -> crate::api::Drain {
    let mut items = Vec::new();
    let mut visited = 0usize;
    let mut node = enc_addr(head_enc);
    while !node.is_null() && visited < max {
        visited += 1;
        let next = read_next(next_addr(node));
        if !enc_marked(next) {
            items.push(read_key(value_addr(node)));
        }
        node = enc_addr(next);
    }
    crate::api::Drain {
        items,
        truncated: !node.is_null(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PMem;

    #[test]
    fn nodes_are_laid_out_as_documented() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let n = alloc_node(&t, 42);
        assert_eq!(t.read(value_addr(n)), 42);
        assert_eq!(t.read(next_addr(n)), 0);
        assert_eq!(next_addr(n).to_raw(), n.to_raw() + 1);
        assert_eq!(node_of_next(next_addr(n)), n);
    }

    #[test]
    fn nodes_do_not_straddle_cache_lines() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        for _ in 0..64 {
            let n = alloc_node(&t, 1);
            assert_eq!(
                n.line_base(),
                n.offset(NODE_WORDS - 1).line_base(),
                "a node must fit in one cache line so one flush persists it"
            );
        }
    }

    #[test]
    fn marked_pointer_encoding_round_trips() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let n = alloc_node(&t, 0);
        for marked in [false, true] {
            let w = enc(n, marked);
            assert_eq!(enc_addr(w), n);
            assert_eq!(enc_marked(w), marked);
        }
        // Null encodes to zero unmarked — the durable-fresh-word contract.
        assert_eq!(enc(PAddr::NULL, false), 0);
        assert!(enc_addr(0).is_null());
        assert!(!enc_marked(0));
    }

    #[test]
    fn set_layout_is_valid_and_fits_the_encoding() {
        // Construct through `new` so the width assertions run.
        let l = RcasLayout::new(
            SET_RCAS_LAYOUT.value_bits,
            SET_RCAS_LAYOUT.pid_bits,
            SET_RCAS_LAYOUT.seq_bits,
        );
        assert_eq!(l, SET_RCAS_LAYOUT);
        // Every address the default layout can carry (the workspace-wide
        // "word indices fit in 32 bits" assumption of `RcasLayout::DEFAULT`),
        // shifted and marked, must fit this layout's value field.
        let max_index = RcasLayout::DEFAULT.max_value();
        assert!(enc(PAddr::from_raw(max_index), true) <= l.max_value());
    }
}
