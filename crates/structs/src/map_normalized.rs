//! The "Normalized" detectable map: the bucketed protocol of
//! [`map`](crate::map) in Timnat & Petrank's three-part normalized form, run
//! through the Persistent Normalized Simulator of §7.
//!
//! The decomposition assigns each part exactly the role §7 prescribes:
//!
//! * the **generator** routes to the owning generation (performing any resize
//!   migration the route owes — freezes, copy inserts, cursor and directory
//!   installs are all parallelizable helping on [`NormalizedCtx::helping_cas`])
//!   and searches the bucket;
//! * the **executor** performs the operation's single linearizing CAS — the
//!   window link for an insert, the tombstone mark for a remove — with the
//!   recoverable CAS; always a one-entry list, so the inline-list optimisation
//!   applies;
//! * the **wrap-up** reports the result; a successful insert's wrap-up also
//!   runs the resize trigger (helping again — repetition-safe).
//!
//! The no-unlink tombstone policy (see the map module docs) means the remove
//! needs no unlink helping in its wrap-up, unlike the list set's.
//!
//! `contains` is a pure parallelizable method: its generator proposes an
//! empty CAS list and the wrap-up answers from a read-only routed traversal.

use capsules::{BoundaryStyle, CapsuleRuntime};
use delayfree::{CasDesc, CasList, NormalizedCtx, NormalizedOp, NormalizedSimulator, WrapUp};
use pmem::{PAddr, PThread};
use rcas::RcasSpace;

use crate::api::{bool_ret, Drain, StructHandle, StructOp};
use crate::map::{
    alloc_gen, contains_at, drain_map, find_in, map_len, maybe_grow, menc, route_read,
    route_update, ChainLen, FindRes, MapConfig, MapMem, MapWindow, SpaceMem, DEL, MAP_RCAS_LAYOUT,
};
use crate::node::{next_addr, value_addr, NODE_WORDS};

/// Number of user locals the handle's capsule runtime needs (inline CAS lists:
/// every map operation proposes at most one CAS).
pub const MAP_NORMALIZED_LOCALS: usize = delayfree::NORMALIZED_INLINE_LOCALS;

/// Normalized-simulator accessor for the shared map protocol: reads, plain
/// writes and allocation go through the ctx (so they are accounted to the
/// simulated method), helping CASes use the ctx's anonymous CAS.
struct CtxMem<'a, 'c, 't, 'm> {
    ctx: &'a mut NormalizedCtx<'c, 't, 'm>,
    manual: bool,
}

impl MapMem for CtxMem<'_, '_, '_, '_> {
    fn read(&mut self, addr: PAddr) -> u64 {
        self.ctx.read(addr)
    }
    fn read_plain(&mut self, addr: PAddr) -> u64 {
        self.ctx.read_plain(addr)
    }
    fn help_cas(&mut self, addr: PAddr, expected: u64, new: u64) -> bool {
        self.ctx.helping_cas(addr, expected, new)
    }
    fn init_word(&mut self, addr: PAddr, value: u64) {
        self.ctx.space().init_word(self.ctx.thread(), addr, value)
    }
    fn write_plain(&mut self, addr: PAddr, value: u64) {
        self.ctx.write_private(addr, value)
    }
    fn alloc(&mut self, nwords: u64) -> PAddr {
        self.ctx.alloc(nwords)
    }
    fn flush_line(&mut self, addr: PAddr) {
        if self.manual {
            self.ctx.thread().flush(addr);
        }
    }
    fn fence(&mut self) {
        if self.manual {
            self.ctx.thread().fence();
        }
    }
}

/// The shared, persistent part of the normalized map.
#[derive(Clone, Copy, Debug)]
pub struct NormalizedDetMap {
    dir: PAddr,
    cfg: MapConfig,
    space: RcasSpace,
    manual: bool,
    optimised: bool,
}

impl NormalizedDetMap {
    /// Create an empty map for `nprocs` processes. `manual` selects the
    /// hand-placed flush discipline; `optimised` the compact-frame style.
    pub fn new(
        thread: &PThread<'_>,
        nprocs: usize,
        cfg: MapConfig,
        manual: bool,
        optimised: bool,
    ) -> NormalizedDetMap {
        let space = RcasSpace::new(thread, nprocs, MAP_RCAS_LAYOUT).with_durability(manual);
        let g = {
            let mut m = SpaceMem {
                space: &space,
                t: thread,
                manual,
            };
            alloc_gen(&mut m, cfg.initial_buckets)
        };
        let dir = thread.alloc(1);
        space.init_word(thread, dir, g.to_raw());
        if manual {
            thread.persist(dir);
        }
        NormalizedDetMap {
            dir,
            cfg,
            space,
            manual,
            optimised,
        }
    }

    /// The recoverable-CAS space used by this map.
    pub fn space(&self) -> &RcasSpace {
        &self.space
    }

    fn style(&self) -> BoundaryStyle {
        if self.optimised {
            BoundaryStyle::Compact
        } else {
            BoundaryStyle::General
        }
    }

    fn simulator(&self) -> NormalizedSimulator {
        NormalizedSimulator::new(self.space, self.manual).with_inline_lists()
    }

    /// Create the calling thread's handle (allocating its capsule frame).
    pub fn handle<'q, 't, 'm>(
        &'q self,
        thread: &'t PThread<'m>,
    ) -> NormalizedDetMapHandle<'q, 't, 'm> {
        let rt = CapsuleRuntime::new(thread, self.style(), MAP_NORMALIZED_LOCALS);
        NormalizedDetMapHandle {
            map: self,
            sim: self.simulator(),
            rt,
        }
    }

    /// Live-key count (diagnostic; not linearizable).
    pub fn len(&self, thread: &PThread<'_>) -> usize {
        let mut m = SpaceMem {
            space: &self.space,
            t: thread,
            manual: self.manual,
        };
        map_len(&mut m, self.dir)
    }

    /// Routed search inside a parallelizable method: migration helping plus
    /// the tombstone-skipping window search, retried past freezes.
    fn find(&self, ctx: &mut NormalizedCtx<'_, '_, '_>, k: u64) -> (MapWindow, ChainLen) {
        let mut m = CtxMem {
            ctx,
            manual: self.manual,
        };
        loop {
            let head = route_update(&mut m, self.dir, k);
            match find_in(&mut m, head, k) {
                (FindRes::Frozen, _) => continue,
                (FindRes::Win(w), len) => return (w, len),
            }
        }
    }
}

/// The normalized insert: the generator routes, searches and allocates the
/// node; the executor links it; the wrap-up reports and runs the resize
/// trigger. An empty CAS list means the key was already present.
struct MapInsertOp {
    map: NormalizedDetMap,
}

impl NormalizedOp for MapInsertOp {
    type Input = u64;
    type Output = bool;

    fn generator(&self, ctx: &mut NormalizedCtx<'_, '_, '_>, k: &u64) -> CasList {
        let m = &self.map;
        let (w, len) = m.find(ctx, *k);
        if w.found {
            return Vec::new();
        }
        let node = ctx.alloc(NODE_WORDS);
        ctx.write_private(value_addr(node), *k);
        m.space.init_word(ctx.thread(), next_addr(node), w.pred_enc);
        if m.manual {
            ctx.persist(node);
        }
        vec![CasDesc::new(w.pred_addr, w.pred_enc, menc(node, 0)).with_aux(len.pack())]
    }

    fn wrap_up(
        &self,
        ctx: &mut NormalizedCtx<'_, '_, '_>,
        _k: &u64,
        cas_list: &CasList,
        executed: usize,
    ) -> WrapUp<bool> {
        if cas_list.is_empty() {
            return WrapUp::Done(false);
        }
        if executed != cas_list.len() {
            return WrapUp::Restart;
        }
        // Resize trigger (helping, repetition-safe): the chain measure rides
        // in the descriptor's aux word.
        let len = ChainLen::unpack(cas_list[0].aux);
        let mut m = CtxMem {
            ctx,
            manual: self.map.manual,
        };
        maybe_grow(&mut m, self.map.dir, len.plus_inserted(), self.map.cfg.max_chain);
        WrapUp::Done(true)
    }
}

/// The normalized remove: the executor performs the tombstone mark — the
/// linearization point and, under the no-unlink policy, the whole protocol.
struct MapRemoveOp {
    map: NormalizedDetMap,
}

impl NormalizedOp for MapRemoveOp {
    type Input = u64;
    type Output = bool;

    fn generator(&self, ctx: &mut NormalizedCtx<'_, '_, '_>, k: &u64) -> CasList {
        let m = &self.map;
        let (w, _) = m.find(ctx, *k);
        if !w.found {
            return Vec::new();
        }
        vec![CasDesc::new(next_addr(w.curr), w.curr_enc, w.curr_enc | DEL)]
    }

    fn wrap_up(
        &self,
        _ctx: &mut NormalizedCtx<'_, '_, '_>,
        _k: &u64,
        cas_list: &CasList,
        executed: usize,
    ) -> WrapUp<bool> {
        if cas_list.is_empty() {
            return WrapUp::Done(false);
        }
        if executed == cas_list.len() {
            WrapUp::Done(true)
        } else {
            WrapUp::Restart
        }
    }
}

/// The normalized contains: a pure parallelizable method (empty CAS list; the
/// wrap-up routes read-only and answers).
struct MapContainsOp {
    map: NormalizedDetMap,
}

impl NormalizedOp for MapContainsOp {
    type Input = u64;
    type Output = bool;

    fn generator(&self, _ctx: &mut NormalizedCtx<'_, '_, '_>, _k: &u64) -> CasList {
        Vec::new()
    }

    fn wrap_up(
        &self,
        ctx: &mut NormalizedCtx<'_, '_, '_>,
        k: &u64,
        _cas_list: &CasList,
        _executed: usize,
    ) -> WrapUp<bool> {
        let mut m = CtxMem {
            ctx,
            manual: self.map.manual,
        };
        let head = route_read(&mut m, self.map.dir, *k);
        WrapUp::Done(contains_at(&mut m, head, *k))
    }
}

/// Per-thread handle for the normalized map.
pub struct NormalizedDetMapHandle<'q, 't, 'm> {
    map: &'q NormalizedDetMap,
    sim: NormalizedSimulator,
    rt: CapsuleRuntime<'t, 'm>,
}

impl<'q, 't, 'm> NormalizedDetMapHandle<'q, 't, 'm> {
    /// Access the underlying capsule runtime (metrics, crash flavour…).
    pub fn runtime_mut(&mut self) -> &mut CapsuleRuntime<'t, 'm> {
        &mut self.rt
    }

    /// See [`CapsuleRuntime::set_entry_boundary`].
    pub fn set_entry_boundary(&mut self, enabled: bool) {
        self.rt.set_entry_boundary(enabled);
    }

    /// Insert `k` (detectably); returns whether it was absent.
    pub fn insert(&mut self, k: u64) -> bool {
        let op = MapInsertOp { map: *self.map };
        self.sim.run(&mut self.rt, &op, &k)
    }

    /// Remove `k` (detectably); returns whether it was present.
    pub fn remove(&mut self, k: u64) -> bool {
        let op = MapRemoveOp { map: *self.map };
        self.sim.run(&mut self.rt, &op, &k)
    }

    /// Membership test (detectably reported).
    pub fn contains(&mut self, k: u64) -> bool {
        let op = MapContainsOp { map: *self.map };
        self.sim.run(&mut self.rt, &op, &k)
    }
}

impl StructHandle for NormalizedDetMapHandle<'_, '_, '_> {
    fn apply(&mut self, op: StructOp) -> Option<u64> {
        match op {
            StructOp::Insert(k) => bool_ret(self.insert(k)),
            StructOp::Remove(k) => bool_ret(self.remove(k)),
            StructOp::Contains(k) => bool_ret(self.contains(k)),
            other => panic!("map handle cannot apply stack operation {other:?}"),
        }
    }

    fn drain_up_to(&mut self, max: usize) -> Drain {
        let map = self.map;
        let mut m = SpaceMem {
            space: &map.space,
            t: self.rt.thread(),
            manual: map.manual,
        };
        drain_map(&mut m, map.dir, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{install_quiet_crash_hook, CrashPlan, CrashPolicy, MemConfig, Mode, PMem};

    #[test]
    fn insert_remove_contains_single_thread_both_variants() {
        for optimised in [false, true] {
            let mem = PMem::with_threads(1);
            let t = mem.thread(0);
            let map = NormalizedDetMap::new(&t, 1, MapConfig::new(4, 64), true, optimised);
            let mut h = map.handle(&t);
            assert!(h.insert(5));
            assert!(h.insert(3));
            assert!(!h.insert(5), "optimised={optimised}");
            assert!(h.contains(3));
            assert!(!h.contains(4));
            assert!(h.remove(3));
            assert!(!h.remove(3));
            assert_eq!(h.drain_up_to(16).items, vec![5]);
            assert_eq!(map.len(&t), 1);
        }
    }

    #[test]
    fn growth_migrates_every_key_under_the_simulator() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let map = NormalizedDetMap::new(&t, 1, MapConfig::tiny(), true, false);
        let mut h = map.handle(&t);
        let mut model = std::collections::BTreeSet::new();
        for k in 0..120u64 {
            assert!(h.insert(k));
            model.insert(k);
            if k % 4 == 1 {
                assert!(h.remove(k));
                model.remove(&k);
            }
        }
        for k in 0..120u64 {
            assert_eq!(h.contains(k), model.contains(&k), "contains({k})");
        }
        let d = h.drain_up_to(100_000);
        assert!(!d.truncated);
        assert_eq!(d.items, model.iter().copied().collect::<Vec<u64>>());
    }

    #[test]
    fn operations_survive_random_crashes_across_resizes() {
        install_quiet_crash_hook();
        for optimised in [false, true] {
            let mem = PMem::with_threads(1);
            let t = mem.thread(0);
            let map = NormalizedDetMap::new(&t, 1, MapConfig::tiny(), true, optimised);
            let mut h = map.handle(&t);
            t.set_crash_policy(CrashPolicy::Random { prob: 0.02, seed: 53 });
            let mut model = std::collections::BTreeSet::new();
            for r in 0..300u64 {
                let k = (r * 11) % 23;
                if r % 3 == 2 {
                    assert_eq!(h.remove(k), model.remove(&k), "optimised={optimised} round {r}");
                } else {
                    assert_eq!(h.insert(k), model.insert(k), "optimised={optimised} round {r}");
                }
            }
            t.disarm_crashes();
            assert!(t.stats().crashes > 0);
            let d = h.drain_up_to(100_000);
            assert!(!d.truncated);
            assert_eq!(d.items, model.iter().copied().collect::<Vec<u64>>());
        }
    }

    #[test]
    fn manual_durability_survives_full_system_crash_mid_growth() {
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        let t = mem.thread(0);
        let map = NormalizedDetMap::new(&t, 1, MapConfig::tiny(), true, false);
        {
            let mut h = map.handle(&t);
            for k in 0..30u64 {
                assert!(h.insert(k));
            }
            assert!(h.remove(11));
        }
        mem.crash_all();
        let t = mem.thread(0);
        let mut h = map.handle(&t);
        let d = h.drain_up_to(10_000);
        assert!(!d.truncated);
        let expect: Vec<u64> = (0..30).filter(|&k| k != 11).collect();
        assert_eq!(d.items, expect);
    }

    /// Exhaustive crash-point sweep over a scripted window that crosses a
    /// resize, single + nested schedules, both crash flavours.
    #[test]
    fn exhaustive_crash_point_sweep_is_exact_across_a_resize() {
        install_quiet_crash_hook();
        type History = (Vec<Option<u64>>, Vec<u64>);
        let run = |plan: Option<CrashPlan>, system: bool| -> (History, u64, u64) {
            let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
            let t = mem.thread(0);
            let map = NormalizedDetMap::new(&t, 1, MapConfig::tiny(), true, false);
            let mut h = map.handle(&t);
            h.runtime_mut().set_system_crashes(system);
            assert!(h.insert(10));
            assert!(h.insert(20));
            assert!(h.insert(30));
            mem.persist_everything();
            let _ = t.take_stats();
            if let Some(p) = plan {
                t.set_crash_schedule(p);
            }
            let rets = vec![
                h.apply(StructOp::Insert(15)),
                h.apply(StructOp::Insert(25)),
                h.apply(StructOp::Insert(15)),
                h.apply(StructOp::Remove(10)),
                h.apply(StructOp::Contains(15)),
                h.apply(StructOp::Remove(99)),
            ];
            let points = t.stats().crash_points;
            t.disarm_crashes();
            let drained = h.drain_up_to(10_000);
            assert!(!drained.truncated);
            (
                (rets, drained.items),
                points,
                h.runtime_mut().metrics().recovery_crashes,
            )
        };
        for system in [false, true] {
            let (base, n, _) = run(None, system);
            assert_eq!(
                base,
                (
                    vec![Some(1), Some(1), Some(0), Some(1), Some(1), Some(0)],
                    vec![15, 20, 25, 30]
                )
            );
            assert!(n > 0);
            let mut nested_recovery_crashes = 0;
            for k in 0..n {
                let (hist, _, _) = run(Some(CrashPlan::once(k)), system);
                assert_eq!(hist, base, "system={system} crash at point {k}");
                let (hist, _, rc) = run(Some(CrashPlan::nested(k, &[0])), system);
                assert_eq!(hist, base, "system={system} nested crash at point {k}");
                nested_recovery_crashes += rc;
            }
            assert!(
                nested_recovery_crashes > 0,
                "the nested sweep must interrupt at least one recovery (system={system})"
            );
        }
    }
}
