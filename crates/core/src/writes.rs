//! §8: handling shared writes.
//!
//! The simulators of this crate (and the recoverable CAS they rely on) speak CAS, so
//! shared *writes* in the original program have to be dealt with first. The paper
//! gives a two-part answer:
//!
//! 1. **Non-racy writes** — a write that never races with a CAS on the same location
//!    can be replaced by a read followed by a single CAS. If the CAS fails, the
//!    write is treated as having succeeded and been immediately overwritten; no
//!    retry is needed. [`write_as_cas`] implements this.
//! 2. **Racy writes** — a write that can race with a CAS must win even though its
//!    expected value may be stale. Those locations are implemented as *writable CAS
//!    objects* ([`rcas::WritableCasArray`], Algorithm 8), which separate the writer
//!    and the CASer onto different low-level words via a level of indirection.
//!
//! After either rewrite, every remaining shared update is a CAS, and the simulators
//! apply unchanged — which is why Theorem 1.1 covers programs with reads, writes and
//! CASes.

use capsules::CapsuleRuntime;
use pmem::PAddr;
use rcas::RcasSpace;

/// Replace a non-racy shared write by a read + recoverable CAS (one attempt).
///
/// Semantics: the write is linearized at the CAS if the CAS succeeds, and
/// immediately before the update that invalidated the expected value otherwise —
/// either way the caller proceeds as if the write happened. Only valid when no CAS
/// in the original program races with this write (otherwise use
/// [`rcas::WritableCasArray`]).
///
/// Consumes one sequence number, so a repetition after a crash is detected through
/// the usual `checkRecovery` path and never applied twice.
pub fn write_as_cas(
    rt: &mut CapsuleRuntime<'_, '_>,
    space: &RcasSpace,
    addr: PAddr,
    value: u64,
) {
    let expected = space.read(rt.thread(), addr);
    let _ = capsules::recoverable_cas(rt, space, addr, expected, value);
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsules::BoundaryStyle;
    use pmem::PMem;
    use rcas::RcasSpace;

    #[test]
    fn uncontended_write_as_cas_stores_the_value() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let space = RcasSpace::with_default_layout(&t, 1);
        let x = space.create(&t, 10).addr();
        let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::General, 1);
        rt.boundary(0);
        write_as_cas(&mut rt, &space, x, 99);
        assert_eq!(space.read(&t, x), 99);
    }

    #[test]
    fn lost_write_is_equivalent_to_immediate_overwrite() {
        let mem = PMem::with_threads(2);
        let t0 = mem.thread(0);
        let t1 = mem.thread(1);
        let space = RcasSpace::with_default_layout(&t0, 2);
        let x = space.create(&t0, 0).addr();
        let mut rt0 = CapsuleRuntime::new(&t0, BoundaryStyle::General, 1);
        rt0.boundary(0);
        // t1 sneaks in a CAS between t0's read and CAS — simulate by changing the
        // value after constructing the expected value manually.
        let stale_expected = space.read(&t0, x);
        assert!(space.cas(&t1, x, 0, 7, 1));
        // t0's "write" now fails its CAS, which the transformation treats as the
        // write having been immediately overwritten: the program just moves on.
        let seq = rt0.advance_seq();
        let ok = space.cas(&t0, x, stale_expected, 42, seq);
        assert!(!ok);
        assert_eq!(space.read(&t0, x), 7, "the later update's value remains");
    }

    #[test]
    fn many_writers_last_value_is_one_of_the_written_values() {
        let mem = PMem::with_threads(4);
        let t0 = mem.thread(0);
        let space = RcasSpace::with_default_layout(&t0, 4);
        let x = space.create(&t0, 0).addr();
        std::thread::scope(|s| {
            for pid in 0..4 {
                let mem = &mem;
                let space = &space;
                s.spawn(move || {
                    let t = mem.thread(pid);
                    let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::General, 1);
                    rt.boundary(0);
                    for i in 0..500u64 {
                        write_as_cas(&mut rt, space, x, (pid as u64) * 10_000 + i);
                        rt.boundary(0);
                    }
                });
            }
        });
        let v = space.read(&mem.thread(0), x);
        assert!(v % 10_000 < 500, "final value {v} was never written");
    }
}
