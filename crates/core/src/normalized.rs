//! §7 / Algorithm 4: the Persistent Normalized Simulator.
//!
//! A *normalized* lock-free operation (Timnat & Petrank) consists of three parts:
//!
//! 1. a **CAS generator** — reads shared memory and produces the list of CASes that
//!    would make the operation take effect; parallelizable (safe to repeat),
//! 2. a **CAS executor** — performs the CASes in order until the first failure,
//! 3. a **wrap-up** — inspects how far the executor got and either produces the
//!    operation's result or asks for the whole operation to restart; parallelizable.
//!
//! Because the generator and wrap-up are parallelizable, they need no recoverable-CAS
//! machinery and no internal boundaries: the simulator places exactly **one capsule
//! boundary per iteration of the retry loop**, immediately before the executor, and
//! persists the generated CAS list there. The executor's CASes use the recoverable
//! CAS with consecutive sequence numbers, so after a crash the recovery function
//! pinpoints the last CAS that succeeded and execution resumes from the next one
//! (Theorem 7.1).
//!
//! Locations that both an executor and a generator/wrap-up may CAS must use the
//! *anonymous* CAS ([`NormalizedCtx::helping_cas`]) in the parallelizable parts so
//! that executor notifications are never clobbered (§7).

use capsules::{CapsuleRuntime, CapsuleStep};
use pmem::{PAddr, PThread};
use rcas::{check_recovery, RcasSpace};

/// One entry of a CAS list: CAS `obj` from `expected` to `new`. The `aux` word is
/// carried along untouched — data structures use it to pass information from the
/// generator to the wrap-up (e.g. the value a dequeue is about to return), and it is
/// persisted together with the rest of the list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CasDesc {
    /// The recoverable-CAS-formatted word to CAS.
    pub obj: PAddr,
    /// Expected application value.
    pub expected: u64,
    /// New application value.
    pub new: u64,
    /// Operation-defined payload persisted with the list.
    pub aux: u64,
}

impl CasDesc {
    /// A CAS description with no auxiliary payload.
    pub fn new(obj: PAddr, expected: u64, new: u64) -> CasDesc {
        CasDesc {
            obj,
            expected,
            new,
            aux: 0,
        }
    }

    /// Attach an auxiliary payload.
    pub fn with_aux(mut self, aux: u64) -> CasDesc {
        self.aux = aux;
        self
    }
}

/// The list of CASes produced by a generator.
pub type CasList = Vec<CasDesc>;

/// What a wrap-up decides.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WrapUp<T> {
    /// The operation is complete with this result.
    Done(T),
    /// The operation must restart from the generator.
    Restart,
}

/// Results that can be persisted in a single word at the operation's final boundary
/// (needed for detectability: a crash after the final boundary must still be able to
/// report the operation's return value).
pub trait PersistResult: Copy {
    /// Encode into one word.
    fn to_word(self) -> u64;
    /// Decode from one word.
    fn from_word(word: u64) -> Self;
}

impl PersistResult for () {
    fn to_word(self) -> u64 {
        0
    }
    fn from_word(_: u64) -> Self {}
}

impl PersistResult for u64 {
    fn to_word(self) -> u64 {
        self
    }
    fn from_word(word: u64) -> Self {
        word
    }
}

impl PersistResult for bool {
    fn to_word(self) -> u64 {
        self as u64
    }
    fn from_word(word: u64) -> Self {
        word != 0
    }
}

/// `None` ↦ 0, `Some(v)` ↦ `(v << 1) | 1`; values must fit in 63 bits.
impl PersistResult for Option<u64> {
    fn to_word(self) -> u64 {
        match self {
            None => 0,
            Some(v) => {
                assert!(v < (1 << 63), "Option<u64> results must fit in 63 bits");
                (v << 1) | 1
            }
        }
    }
    fn from_word(word: u64) -> Self {
        if word & 1 == 0 {
            None
        } else {
            Some(word >> 1)
        }
    }
}

/// The environment handed to generators and wrap-ups: shared-memory access plus the
/// helping CAS for locations the executor also updates.
pub struct NormalizedCtx<'a, 't, 'm> {
    rt: &'a mut CapsuleRuntime<'t, 'm>,
    space: &'a RcasSpace,
}

impl<'a, 't, 'm> NormalizedCtx<'a, 't, 'm> {
    /// Wrap a capsule runtime for use inside a parallelizable method.
    pub fn new(rt: &'a mut CapsuleRuntime<'t, 'm>, space: &'a RcasSpace) -> Self {
        NormalizedCtx { rt, space }
    }

    /// The thread issuing instructions.
    pub fn thread(&self) -> &'t PThread<'m> {
        self.rt.thread()
    }

    /// The recoverable-CAS space of the enclosing simulator.
    pub fn space(&self) -> &RcasSpace {
        self.space
    }

    /// Read a recoverable-CAS-formatted word (returns its application value).
    pub fn read(&self, addr: PAddr) -> u64 {
        self.space.read(self.rt.thread(), addr)
    }

    /// Read a plain persistent word.
    pub fn read_plain(&self, addr: PAddr) -> u64 {
        self.rt.thread().read(addr)
    }

    /// Write to a private persistent location (e.g. initialise a new node). Safe in
    /// a parallelizable method: repetition overwrites the same data.
    pub fn write_private(&self, addr: PAddr, value: u64) {
        self.rt.thread().write(addr, value)
    }

    /// Allocate persistent words.
    pub fn alloc(&self, nwords: u64) -> PAddr {
        self.rt.thread().alloc(nwords)
    }

    /// A *helping* CAS on a recoverable-CAS-formatted word that the executor may
    /// also CAS: installs the anonymous pid so the executor's notifications survive
    /// (§7). Safe to repeat; only use inside generators and wrap-ups.
    pub fn helping_cas(&mut self, addr: PAddr, expected: u64, new: u64) -> bool {
        self.space.cas_anonymous(self.rt.thread(), addr, expected, new)
    }

    /// A plain CAS on a word that no executor ever touches (e.g. the tail pointer of
    /// the Michael–Scott queue, which is only advanced by helping code).
    pub fn plain_cas(&mut self, addr: PAddr, expected: u64, new: u64) -> bool {
        self.rt.thread().cas(addr, expected, new)
    }

    /// Flush + fence a line (for hand-placed durability in the shared-cache model).
    pub fn persist(&self, addr: PAddr) {
        self.rt.thread().persist(addr)
    }
}

/// A normalized lock-free operation, in the three-part form of Timnat & Petrank.
pub trait NormalizedOp {
    /// The operation's input (owned by the caller; available to every part).
    type Input;
    /// The operation's result; must be persistable for detectability.
    type Output: PersistResult;

    /// The CAS generator (parallelizable): read shared memory, produce the CAS list.
    fn generator(&self, ctx: &mut NormalizedCtx<'_, '_, '_>, input: &Self::Input) -> CasList;

    /// The wrap-up (parallelizable): given the CAS list and the index of the first
    /// executor CAS that failed (= `cas_list.len()` if all succeeded), finish the
    /// operation or request a restart.
    fn wrap_up(
        &self,
        ctx: &mut NormalizedCtx<'_, '_, '_>,
        input: &Self::Input,
        cas_list: &CasList,
        executed: usize,
    ) -> WrapUp<Self::Output>;
}

/// Program counters of the simulator's capsule state machine.
const PC_GEN: u32 = 0;
const PC_EXEC: u32 = 1;
const PC_DONE: u32 = 2;
/// Contention-adaptive fast path: generator + single-CAS executor + wrap-up in
/// one un-checkpointed capsule (no persisted CAS list; crash recovery resolves
/// the attempt from the evidence on the announcement line instead).
const PC_FAST: u32 = 3;

/// Persisted local slots used by the simulator.
const L_BUF: usize = 0;
const L_LEN: usize = 1;
const L_OUT: usize = 2;
/// First of the four slots used when a single-entry CAS list is stored inline in
/// the frame instead of a heap buffer (the `-Opt` optimisation).
const L_INLINE: usize = 3;

/// Number of user locals a [`CapsuleRuntime`] needs to run this simulator.
pub const NORMALIZED_LOCALS: usize = 3;
/// Number of user locals needed when inline CAS lists are enabled
/// ([`NormalizedSimulator::with_inline_lists`]).
pub const NORMALIZED_INLINE_LOCALS: usize = 7;

/// The Persistent Normalized Simulator (Algorithm 4).
#[derive(Clone, Copy, Debug)]
pub struct NormalizedSimulator {
    space: RcasSpace,
    durable: bool,
    inline_lists: bool,
    adaptive: bool,
}

impl NormalizedSimulator {
    /// Build a simulator. With `durable = true` the simulator flushes the persisted
    /// CAS list and every object an executor CAS updates, which is the hand-placed
    /// flush discipline of the paper's "manual" shared-cache variants; with
    /// `durable = false` no flushes are issued (private-cache model, or the
    /// Izraelevitz construction supplied by the thread options).
    pub fn new(space: RcasSpace, durable: bool) -> NormalizedSimulator {
        NormalizedSimulator {
            space,
            durable,
            inline_lists: false,
            adaptive: false,
        }
    }

    /// Enable the hand-optimisation used by the paper's `Normalized-Opt` variant:
    /// a CAS list with at most one entry is persisted directly in the capsule frame
    /// (ideally a [`BoundaryStyle::Compact`](capsules::BoundaryStyle) frame, so the
    /// whole boundary is one flush and one fence) instead of a separate heap buffer,
    /// saving one flush + fence per operation. The runtime must provide
    /// [`NORMALIZED_INLINE_LOCALS`] user locals. Longer lists transparently fall
    /// back to the heap buffer.
    pub fn with_inline_lists(mut self) -> NormalizedSimulator {
        self.inline_lists = true;
        self
    }

    /// Enable the contention-adaptive fast path: an uncontended operation whose
    /// CAS list has at most one entry runs generator, executor and wrap-up in a
    /// single un-checkpointed capsule around one evidence-carrying recoverable
    /// CAS ([`RcasSpace::cas_with_evidence`]) — no persisted CAS list, no
    /// pre-executor boundary. The runtime's [`ContentionMeasure`] demotes the
    /// operation to the full Algorithm 4 machinery when that CAS keeps losing
    /// (or when a generator produces a multi-CAS list, which the fast path
    /// never attempts).
    ///
    /// [`ContentionMeasure`]: capsules::ContentionMeasure
    pub fn with_adaptive(mut self, adaptive: bool) -> NormalizedSimulator {
        self.adaptive = adaptive;
        self
    }

    /// Whether the contention-adaptive fast path is enabled.
    pub fn adaptive(&self) -> bool {
        self.adaptive
    }

    /// The recoverable-CAS space used by this simulator.
    pub fn space(&self) -> &RcasSpace {
        &self.space
    }

    /// Whether the simulator issues hand-placed flushes.
    pub fn durable(&self) -> bool {
        self.durable
    }

    /// Run one normalized operation to completion (surviving crashes).
    pub fn run<O: NormalizedOp>(
        &self,
        rt: &mut CapsuleRuntime<'_, '_>,
        op: &O,
        input: &O::Input,
    ) -> O::Output {
        // Volatile cache of the CAS list: valid only while no crash intervened
        // (after a crash the list is reloaded from its persisted buffer).
        let mut cached: Option<CasList> = None;
        let entry = if self.adaptive && !rt.contention_mut().begin_op() {
            PC_FAST
        } else {
            PC_GEN
        };
        rt.run_op(entry, |rt| {
            match rt.pc() {
                PC_FAST => match self.run_fast(rt, op, input, &mut cached) {
                    Some(out) => CapsuleStep::Done(out),
                    None => CapsuleStep::Continue,
                },
                PC_GEN => {
                    let list = op.generator(&mut NormalizedCtx::new(rt, &self.space), input);
                    self.persist_list_and_boundary(rt, &list);
                    cached = Some(list);
                    CapsuleStep::Continue
                }
                PC_EXEC => {
                    let list = if rt.crashed() || cached.is_none() {
                        self.load_list(rt)
                    } else {
                        cached.take().expect("volatile CAS-list cache disappeared")
                    };
                    let executed = self.cas_executor(rt, &list);
                    let wrap =
                        op.wrap_up(&mut NormalizedCtx::new(rt, &self.space), input, &list, executed);
                    match wrap {
                        WrapUp::Done(out) => {
                            rt.set_local(L_OUT, out.to_word());
                            rt.finish_boundary(PC_DONE);
                            CapsuleStep::Done(out)
                        }
                        WrapUp::Restart => {
                            if self.inline_lists && rt.crashed() {
                                // The crashed path read the inline list slots that
                                // regenerating would overwrite (a write-after-read
                                // hazard in single-copy frames). Pay one extra
                                // boundary on this crash+contention path and let the
                                // generator capsule rebuild the list.
                                rt.boundary(PC_GEN);
                                CapsuleStep::Continue
                            } else {
                                // §7: the wrap-up and the next iteration's generator
                                // share this capsule — one boundary per iteration.
                                let list =
                                    op.generator(&mut NormalizedCtx::new(rt, &self.space), input);
                                self.persist_list_and_boundary(rt, &list);
                                cached = Some(list);
                                CapsuleStep::Continue
                            }
                        }
                    }
                }
                PC_DONE => {
                    // The final boundary was published before the crash: the
                    // operation already completed; report its persisted result.
                    CapsuleStep::Done(O::Output::from_word(rt.local(L_OUT)))
                }
                pc => unreachable!("normalized simulator: unexpected pc {pc}"),
            }
        })
    }

    /// The contention-adaptive fast capsule: run the whole operation without
    /// intermediate boundaries as long as the generator proposes at most one
    /// CAS. Returns `Some(out)` when the operation finished (the final
    /// boundary has been emitted), `None` when it demoted itself to the full
    /// simulator (a boundary to `PC_GEN` or `PC_EXEC` has been emitted).
    fn run_fast<O: NormalizedOp>(
        &self,
        rt: &mut CapsuleRuntime<'_, '_>,
        op: &O,
        input: &O::Input,
        cached: &mut Option<CasList>,
    ) -> Option<O::Output> {
        if rt.crashed() {
            // Crash triage from the announcement line alone. Honour the
            // sharding contract first: re-run the notify step for the group.
            let t = rt.thread();
            let _ = self.space.help_group(t);
            let ann = self.space.announcement(t);
            if ann.seq > rt.seq() {
                // The crash hit at or after this operation's announce; no
                // sequence number may ever be reused, so raise ours past it.
                rt.sync_seq(ann.seq);
                if let Some(ev) = self.space.evidence(t) {
                    if ev.result.seq == ann.seq && self.space.recover(t, ev.x).flag {
                        // The fast CAS took effect: re-persist its target (the
                        // original flush may have been interrupted), rebuild
                        // the one-entry list from the evidence and let the
                        // wrap-up finish the operation.
                        if self.durable {
                            t.persist(ev.x);
                        }
                        let list = vec![CasDesc {
                            obj: ev.x,
                            expected: ev.expected,
                            new: ev.new,
                            aux: ev.aux,
                        }];
                        let wrap =
                            op.wrap_up(&mut NormalizedCtx::new(rt, &self.space), input, &list, 1);
                        if let WrapUp::Done(out) = wrap {
                            rt.set_local(L_OUT, out.to_word());
                            rt.finish_boundary(PC_DONE);
                            return Some(out);
                        }
                        // A wrap-up that restarts even though every CAS of its
                        // list succeeded (not the MSQ, but legal): fall through
                        // and run the loop below from a clean slate.
                    }
                }
                // No durable effect escaped the crash: plain retry is safe.
            }
        }
        loop {
            let list = op.generator(&mut NormalizedCtx::new(rt, &self.space), input);
            if list.len() > 1 {
                // The fast path only covers single-CAS operations; hand the
                // multi-CAS list to the full executor machinery.
                self.persist_list_and_boundary(rt, &list);
                *cached = Some(list);
                return None;
            }
            let mut failed = false;
            let executed = match list.first() {
                Some(c) => {
                    let seq = rt.advance_seq();
                    if self
                        .space
                        .cas_with_evidence(rt.thread(), c.obj, c.expected, c.new, seq, c.aux)
                    {
                        if self.durable {
                            rt.thread().persist(c.obj);
                        }
                        rt.contention_mut().record_success();
                        1
                    } else {
                        failed = true;
                        0
                    }
                }
                None => 0,
            };
            let wrap = op.wrap_up(&mut NormalizedCtx::new(rt, &self.space), input, &list, executed);
            match wrap {
                WrapUp::Done(out) => {
                    rt.set_local(L_OUT, out.to_word());
                    rt.finish_boundary(PC_DONE);
                    return Some(out);
                }
                WrapUp::Restart => {
                    if failed && rt.contention_mut().record_failure() {
                        // Contended: demote to the full simulator.
                        rt.boundary(PC_GEN);
                        return None;
                    }
                }
            }
        }
    }

    /// Write the CAS list to a fresh persistent buffer, record it in the frame
    /// locals and emit the pre-executor boundary. A fresh buffer per iteration keeps
    /// the previous iteration's list intact, so re-running the capsule that produced
    /// this one (which must re-read the *old* list for its executor) stays safe.
    fn persist_list_and_boundary(&self, rt: &mut CapsuleRuntime<'_, '_>, list: &CasList) {
        if self.inline_lists && list.len() <= 1 {
            // -Opt path: the (single-entry or empty) list travels inside the frame,
            // so the boundary itself is the only persistence work.
            if let Some(c) = list.first() {
                rt.set_local_addr(L_INLINE, c.obj);
                rt.set_local(L_INLINE + 1, c.expected);
                rt.set_local(L_INLINE + 2, c.new);
                rt.set_local(L_INLINE + 3, c.aux);
            }
            rt.set_local_addr(L_BUF, PAddr::NULL);
            rt.set_local(L_LEN, list.len() as u64);
            rt.boundary(PC_EXEC);
            return;
        }
        let thread = rt.thread();
        let words = 1 + 4 * list.len().max(1) as u64;
        let buf = thread.alloc(words);
        thread.write(buf, list.len() as u64);
        for (i, c) in list.iter().enumerate() {
            let base = buf.offset(1 + 4 * i as u64);
            thread.write(base, c.obj.to_raw());
            thread.write(base.offset(1), c.expected);
            thread.write(base.offset(2), c.new);
            thread.write(base.offset(3), c.aux);
        }
        if self.durable {
            // Persist the buffer (it may span multiple lines) before the boundary
            // publishes its address.
            let mut w = 0;
            while w < words {
                thread.flush(buf.offset(w));
                w += pmem::LINE_WORDS;
            }
            thread.fence();
        }
        rt.set_local_addr(L_BUF, buf);
        rt.set_local(L_LEN, list.len() as u64);
        rt.boundary(PC_EXEC);
    }

    /// Reload the persisted CAS list (crash path of the executor capsule).
    fn load_list(&self, rt: &mut CapsuleRuntime<'_, '_>) -> CasList {
        let buf = rt.local_addr(L_BUF);
        let len = rt.local(L_LEN) as usize;
        if buf.is_null() {
            // Inline list (the -Opt path).
            if len == 0 {
                return Vec::new();
            }
            return vec![CasDesc {
                obj: rt.local_addr(L_INLINE),
                expected: rt.local(L_INLINE + 1),
                new: rt.local(L_INLINE + 2),
                aux: rt.local(L_INLINE + 3),
            }];
        }
        let thread = rt.thread();
        let stored_len = thread.read(buf) as usize;
        debug_assert_eq!(stored_len, len, "persisted CAS-list header disagrees with frame");
        (0..len)
            .map(|i| {
                let base = buf.offset(1 + 4 * i as u64);
                CasDesc {
                    obj: PAddr::from_raw(thread.read(base)),
                    expected: thread.read(base.offset(1)),
                    new: thread.read(base.offset(2)),
                    aux: thread.read(base.offset(3)),
                }
            })
            .collect()
    }

    /// Algorithm 4's CAS-Executor: run the CASes in order until the first failure,
    /// resuming correctly after a crash via `checkRecovery`.
    fn cas_executor(&self, rt: &mut CapsuleRuntime<'_, '_>, list: &CasList) -> usize {
        let crashed = rt.crashed();
        for (i, c) in list.iter().enumerate() {
            let seq = rt.advance_seq();
            let mut done = false;
            if crashed {
                done = check_recovery(&self.space, rt.thread(), c.obj, seq);
            }
            if !done {
                if !self.space.cas(rt.thread(), c.obj, c.expected, c.new, seq) {
                    return i;
                }
                if self.durable {
                    rt.thread().persist(c.obj);
                }
            }
        }
        list.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsules::BoundaryStyle;
    use pmem::{install_quiet_crash_hook, CrashPolicy, PMem};

    /// A normalized fetch-and-add: generator reads the counter and proposes one CAS;
    /// wrap-up returns the old value on success and restarts on contention.
    struct NormalizedCounter {
        x: PAddr,
    }

    impl NormalizedOp for NormalizedCounter {
        type Input = u64; // amount to add
        type Output = u64; // previous value

        fn generator(&self, ctx: &mut NormalizedCtx<'_, '_, '_>, input: &u64) -> CasList {
            let v = ctx.read(self.x);
            vec![CasDesc::new(self.x, v, v + input).with_aux(v)]
        }

        fn wrap_up(
            &self,
            _ctx: &mut NormalizedCtx<'_, '_, '_>,
            _input: &u64,
            cas_list: &CasList,
            executed: usize,
        ) -> WrapUp<u64> {
            if executed == cas_list.len() {
                WrapUp::Done(cas_list[0].aux)
            } else {
                WrapUp::Restart
            }
        }
    }

    /// A normalized "set k flags" operation: the CAS list has several entries, which
    /// exercises the executor's resume-from-the-middle logic.
    struct SetFlags {
        flags: Vec<PAddr>,
    }

    impl NormalizedOp for SetFlags {
        type Input = ();
        type Output = u64; // number of flags this op set itself

        fn generator(&self, _ctx: &mut NormalizedCtx<'_, '_, '_>, _input: &()) -> CasList {
            self.flags
                .iter()
                .map(|&f| CasDesc::new(f, 0, 1))
                .collect()
        }

        fn wrap_up(
            &self,
            _ctx: &mut NormalizedCtx<'_, '_, '_>,
            _input: &(),
            _cas_list: &CasList,
            executed: usize,
        ) -> WrapUp<u64> {
            // Flags already set by someone else make the CAS fail; that is fine,
            // the operation's goal is achieved either way.
            WrapUp::Done(executed as u64)
        }
    }

    fn setup(threads: usize) -> (PMem, RcasSpace) {
        let mem = PMem::with_threads(threads);
        let space = RcasSpace::with_default_layout(&mem.thread(0), threads);
        (mem, space)
    }

    #[test]
    fn counter_accumulates_and_returns_old_values() {
        let (mem, space) = setup(1);
        let t = mem.thread(0);
        let x = space.create(&t, 0).addr();
        let sim = NormalizedSimulator::new(space, false);
        let op = NormalizedCounter { x };
        let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::General, NORMALIZED_LOCALS);
        let mut olds = Vec::new();
        for _ in 0..10 {
            olds.push(sim.run(&mut rt, &op, &3));
        }
        assert_eq!(olds, (0..10).map(|i| i * 3).collect::<Vec<u64>>());
        assert_eq!(space.read(&t, x), 30);
    }

    #[test]
    fn one_boundary_per_uncontended_iteration() {
        let (mem, space) = setup(1);
        let t = mem.thread(0);
        let x = space.create(&t, 0).addr();
        let sim = NormalizedSimulator::new(space, false);
        let op = NormalizedCounter { x };
        let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::General, NORMALIZED_LOCALS);
        rt.set_entry_boundary(false);
        let before = rt.metrics().boundaries;
        let _ = sim.run(&mut rt, &op, &1);
        let after = rt.metrics().boundaries;
        // One pre-executor boundary + the final (detectability) boundary.
        assert_eq!(after - before, 2);
    }

    #[test]
    fn counter_is_exact_under_crashes_single_thread() {
        install_quiet_crash_hook();
        let (mem, space) = setup(1);
        let t = mem.thread(0);
        let x = space.create(&t, 0).addr();
        let sim = NormalizedSimulator::new(space, false);
        let op = NormalizedCounter { x };
        let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::General, NORMALIZED_LOCALS);
        t.set_crash_policy(CrashPolicy::Random { prob: 0.03, seed: 5 });
        let mut sum_of_olds = 0;
        for _ in 0..200 {
            sum_of_olds += sim.run(&mut rt, &op, &1);
        }
        t.disarm_crashes();
        assert_eq!(space.read(&t, x), 200, "each add applied exactly once");
        // Old values 0..=199 must each be observed exactly once.
        assert_eq!(sum_of_olds, (0..200).sum::<u64>());
    }

    #[test]
    fn counter_is_exact_under_crashes_multi_thread() {
        install_quiet_crash_hook();
        const THREADS: usize = 3;
        const PER_THREAD: u64 = 120;
        let (mem, space) = setup(THREADS);
        let t0 = mem.thread(0);
        let x = space.create(&t0, 0).addr();
        std::thread::scope(|s| {
            for pid in 0..THREADS {
                let mem = &mem;
                let space = &space;
                s.spawn(move || {
                    let t = mem.thread(pid);
                    let sim = NormalizedSimulator::new(*space, false);
                    let op = NormalizedCounter { x };
                    let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::General, NORMALIZED_LOCALS);
                    // Arm crash injection only once the runtime's frame exists (a
                    // crash during set-up is the enclosing program's problem, not
                    // the operation's).
                    t.set_crash_policy(CrashPolicy::Random {
                        prob: 0.01,
                        seed: 900 + pid as u64,
                    });
                    for _ in 0..PER_THREAD {
                        let _ = sim.run(&mut rt, &op, &1);
                    }
                    t.disarm_crashes();
                });
            }
        });
        assert_eq!(
            space.read(&mem.thread(0), x),
            THREADS as u64 * PER_THREAD
        );
    }

    #[test]
    fn exhaustive_crash_point_sweep_is_exact() {
        // dfck-style enumeration for the normalized simulator: every crash point
        // of a 3-add run (count from Stats), single and nested [k, 0] schedules.
        // The nested replays deterministically exercise the recovery-interrupted
        // path of `CapsuleRuntime::run_op` under Algorithm 4.
        install_quiet_crash_hook();
        let run = |plan: Option<pmem::CrashPlan>| -> (u64, u64, u64, u64) {
            let (mem, space) = setup(1);
            let t = mem.thread(0);
            let x = space.create(&t, 0).addr();
            let sim = NormalizedSimulator::new(space, false);
            let op = NormalizedCounter { x };
            let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::General, NORMALIZED_LOCALS);
            let _ = t.take_stats();
            if let Some(p) = plan {
                t.set_crash_schedule(p);
            }
            let mut sum_of_olds = 0;
            for _ in 0..3 {
                sum_of_olds += sim.run(&mut rt, &op, &1);
            }
            let points = t.stats().crash_points;
            t.disarm_crashes();
            let m = rt.metrics();
            (space.read(&t, x) * 10 + sum_of_olds, points, m.recoveries, m.recovery_crashes)
        };
        let (history, n, _, _) = run(None);
        assert_eq!(history, 33, "3 adds, old values 0+1+2");
        assert!(n > 0);
        let mut nested_recovery_crashes = 0;
        for k in 0..n {
            let (h, _, _, _) = run(Some(pmem::CrashPlan::once(k)));
            assert_eq!(h, 33, "crash at point {k} changed the history");
            let (h, _, _, rc) = run(Some(pmem::CrashPlan::new(vec![k, 0])));
            assert_eq!(h, 33, "nested crash at point {k} changed the history");
            nested_recovery_crashes += rc;
        }
        assert!(
            nested_recovery_crashes > 0,
            "the nested sweep must interrupt at least one recovery"
        );
    }

    #[test]
    fn multi_cas_list_executes_each_entry_once_despite_crashes() {
        install_quiet_crash_hook();
        let (mem, space) = setup(1);
        let t = mem.thread(0);
        let flags: Vec<PAddr> = (0..6).map(|_| space.create(&t, 0).addr()).collect();
        let sim = NormalizedSimulator::new(space, false);
        let op = SetFlags {
            flags: flags.clone(),
        };
        let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::General, NORMALIZED_LOCALS);
        t.set_crash_policy(CrashPolicy::Random { prob: 0.08, seed: 21 });
        let set_by_op = sim.run(&mut rt, &op, &());
        t.disarm_crashes();
        assert_eq!(set_by_op, 6, "no other thread competed, all CASes must succeed");
        for f in &flags {
            assert_eq!(space.read(&t, *f), 1);
        }
    }

    #[test]
    fn durable_mode_flushes_list_and_targets() {
        let (mem, space) = setup(1);
        let t = mem.thread(0);
        let x = space.create(&t, 0).addr();
        let op = NormalizedCounter { x };
        let run_with = |durable: bool| {
            let sim = NormalizedSimulator::new(space, durable);
            let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::General, NORMALIZED_LOCALS);
            rt.set_entry_boundary(false);
            let before = t.stats();
            let _ = sim.run(&mut rt, &op, &1);
            t.stats().since(&before)
        };
        let plain = run_with(false);
        let durable = run_with(true);
        assert!(durable.flushes > plain.flushes);
        assert!(durable.fences > plain.fences);
    }

    #[test]
    fn persist_result_round_trips() {
        assert_eq!(<Option<u64>>::from_word(Some(7u64).to_word()), Some(7));
        assert_eq!(<Option<u64>>::from_word(None::<u64>.to_word()), None);
        assert_eq!(u64::from_word(42u64.to_word()), 42);
        assert!(bool::from_word(true.to_word()));
        assert!(!bool::from_word(false.to_word()));
        let () = <()>::from_word(().to_word());
    }
}
