//! # `delayfree` — delay-free persistent simulations
//!
//! This crate is the public face of the workspace's reproduction of *Delay-Free
//! Concurrency on Faulty Persistent Memory* (Ben-David, Blelloch, Friedman, Wei —
//! SPAA 2019). It packages the paper's three transformations as reusable simulators
//! on top of the `pmem`, `rcas` and `capsules` substrates:
//!
//! * [`ConstantDelaySimulator`] (§5) — single-instruction capsules: every simulated
//!   instruction is its own capsule, giving constant computation delay *and*
//!   constant recovery delay (Theorem 1.1 / 5.1).
//! * [`CasReadSimulator`] (§6) — the Low-Computation-Delay simulator: capsule
//!   boundaries only where required by the CAS-Read discipline (one CAS at the head
//!   of a capsule, reads afterwards), trading recovery delay for fewer boundaries.
//! * [`NormalizedSimulator`] (§7, Algorithm 4) — for normalized lock-free data
//!   structures (CAS generator / CAS executor / wrap-up): one capsule boundary per
//!   iteration of the operation's retry loop.
//!
//! plus:
//!
//! * [`delay`] — helpers for measuring computation delay and recovery delay against
//!   an un-transformed baseline (Definition 3.1/3.3),
//! * [`writes`] — the §8 story for shared writes: replace non-racy writes by a CAS,
//!   and use [`rcas::WritableCasArray`] (Algorithm 8) where a write genuinely races
//!   with a CAS.
//!
//! ## Which simulator do I use?
//!
//! | Simulator | Applies to | Computation delay | Recovery delay |
//! |---|---|---|---|
//! | `ConstantDelaySimulator` | any program (reads/CASes/writes) | constant, largest | constant |
//! | `CasReadSimulator` | any program (reads/CASes/writes) | smaller | one capsule |
//! | `NormalizedSimulator` | normalized data structures | smallest | one iteration |
//!
//! The `queues` crate contains complete worked examples: the Michael–Scott queue
//! transformed with the CAS-Read simulator ("General") and with the normalized
//! simulator ("Normalized"), exactly the variants evaluated in the paper's §10.

#![warn(missing_docs)]

pub mod cas_read;
pub mod constant_delay;
pub mod delay;
pub mod normalized;
pub mod writes;

pub use cas_read::CasReadSimulator;
pub use constant_delay::ConstantDelaySimulator;
pub use delay::{DelayReport, RecoveryProbe};
pub use normalized::{
    CasDesc, CasList, NormalizedCtx, NormalizedOp, NormalizedSimulator, PersistResult, WrapUp,
    NORMALIZED_INLINE_LOCALS, NORMALIZED_LOCALS,
};
pub use writes::write_as_cas;

/// Convenient re-exports of the substrate types most user code needs.
pub mod prelude {
    pub use crate::{
        write_as_cas, CasDesc, CasList, CasReadSimulator, ConstantDelaySimulator, NormalizedCtx,
        NormalizedOp, NormalizedSimulator, PersistResult, WrapUp, NORMALIZED_LOCALS,
    };
    pub use capsules::{recoverable_cas, BoundaryStyle, CapsuleRuntime, CapsuleStep};
    pub use pmem::{CrashPolicy, MemConfig, Mode, PAddr, PMem, PThread, Stats, ThreadOptions};
    pub use rcas::{check_recovery, RCas, RcasLayout, RcasSpace};
}
