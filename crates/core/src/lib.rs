//! # `delayfree` — delay-free persistent simulations
//!
//! This crate is the public face of the workspace's reproduction of *Delay-Free
//! Concurrency on Faulty Persistent Memory* (Ben-David, Blelloch, Friedman, Wei —
//! SPAA 2019). It packages the paper's three transformations as reusable simulators
//! on top of the `pmem`, `rcas` and `capsules` substrates:
//!
//! * [`ConstantDelaySimulator`] (§5) — single-instruction capsules: every simulated
//!   instruction is its own capsule, giving constant computation delay *and*
//!   constant recovery delay (Theorem 1.1 / 5.1).
//! * [`CasReadSimulator`] (§6) — the Low-Computation-Delay simulator: capsule
//!   boundaries only where required by the CAS-Read discipline (one CAS at the head
//!   of a capsule, reads afterwards), trading recovery delay for fewer boundaries.
//! * [`NormalizedSimulator`] (§7, Algorithm 4) — for normalized lock-free data
//!   structures (CAS generator / CAS executor / wrap-up): one capsule boundary per
//!   iteration of the operation's retry loop.
//!
//! plus:
//!
//! * [`delay`] — helpers for measuring computation delay and recovery delay against
//!   an un-transformed baseline (Definition 3.1/3.3),
//! * [`writes`] — the §8 story for shared writes: replace non-racy writes by a CAS,
//!   and use [`rcas::WritableCasArray`] (Algorithm 8) where a write genuinely races
//!   with a CAS.
//!
//! ## Which simulator do I use?
//!
//! | Simulator | Applies to | Computation delay | Recovery delay |
//! |---|---|---|---|
//! | `ConstantDelaySimulator` | any program (reads/CASes/writes) | constant, largest | constant |
//! | `CasReadSimulator` | any program (reads/CASes/writes) | smaller | one capsule |
//! | `NormalizedSimulator` | normalized data structures | smallest | one iteration |
//!
//! The `queues` crate contains complete worked examples: the Michael–Scott queue
//! transformed with the CAS-Read simulator ("General") and with the normalized
//! simulator ("Normalized"), exactly the variants evaluated in the paper's §10.
//!
//! ## Quick tour
//!
//! A fetch-and-add written as a normalized operation (generator → CAS executor →
//! wrap-up) and driven by the [`NormalizedSimulator`], which makes it persistent
//! and detectable with one capsule boundary per retry iteration:
//!
//! ```
//! use delayfree::prelude::*;
//!
//! struct FetchAdd { x: PAddr }
//!
//! impl NormalizedOp for FetchAdd {
//!     type Input = u64;   // amount to add
//!     type Output = u64;  // previous value
//!
//!     fn generator(&self, ctx: &mut NormalizedCtx<'_, '_, '_>, add: &u64) -> CasList {
//!         let v = ctx.read(self.x);
//!         vec![CasDesc::new(self.x, v, v + add).with_aux(v)]
//!     }
//!
//!     fn wrap_up(
//!         &self,
//!         _ctx: &mut NormalizedCtx<'_, '_, '_>,
//!         _add: &u64,
//!         list: &CasList,
//!         executed: usize,
//!     ) -> WrapUp<u64> {
//!         if executed == list.len() { WrapUp::Done(list[0].aux) } else { WrapUp::Restart }
//!     }
//! }
//!
//! let mem = PMem::with_threads(1);
//! let t = mem.thread(0);
//! let space = RcasSpace::with_default_layout(&t, 1);
//! let op = FetchAdd { x: space.create(&t, 0).addr() };
//!
//! let sim = NormalizedSimulator::new(space, false);
//! let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::General, NORMALIZED_LOCALS);
//! assert_eq!(sim.run(&mut rt, &op, &5), 0); // returns the old value...
//! assert_eq!(sim.run(&mut rt, &op, &2), 5); // ...exactly once, even across crashes
//! assert_eq!(space.read(&t, op.x), 7);
//! ```

#![warn(missing_docs)]

pub mod cas_read;
pub mod constant_delay;
pub mod delay;
pub mod normalized;
pub mod writes;

pub use cas_read::CasReadSimulator;
pub use constant_delay::ConstantDelaySimulator;
pub use delay::{DelayReport, RecoveryProbe};
pub use normalized::{
    CasDesc, CasList, NormalizedCtx, NormalizedOp, NormalizedSimulator, PersistResult, WrapUp,
    NORMALIZED_INLINE_LOCALS, NORMALIZED_LOCALS,
};
pub use writes::write_as_cas;

/// Convenient re-exports of the substrate types most user code needs.
pub mod prelude {
    pub use crate::{
        write_as_cas, CasDesc, CasList, CasReadSimulator, ConstantDelaySimulator, NormalizedCtx,
        NormalizedOp, NormalizedSimulator, PersistResult, WrapUp, NORMALIZED_LOCALS,
    };
    pub use capsules::{recoverable_cas, BoundaryStyle, CapsuleRuntime, CapsuleStep};
    pub use pmem::{CrashPolicy, MemConfig, Mode, PAddr, PMem, PThread, Stats, ThreadOptions};
    pub use rcas::{check_recovery, RCas, RcasLayout, RcasSpace};
}
