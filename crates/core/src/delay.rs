//! Measuring computation delay and recovery delay (§3).
//!
//! A simulation has *k-computation delay* if it replaces every instruction of the
//! original program with at most `k` instructions, and *k-recovery delay* if a
//! crashed process is back at the point it crashed within `k` instructions. These
//! helpers turn the raw [`pmem::Stats`] counters into those two numbers so tests
//! and benchmarks can check the theorems empirically (the delay tables in
//! `EXPERIMENTS.md` are produced with them).

use pmem::Stats;

/// Empirical computation-delay report: how many simulated instructions the
/// transformed program used per instruction of the original program.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DelayReport {
    /// Instructions (shared-memory + persistence) per operation in the original.
    pub baseline_steps_per_op: f64,
    /// Instructions per operation in the simulation.
    pub simulated_steps_per_op: f64,
    /// The empirical computation-delay factor (simulated / baseline).
    pub computation_delay: f64,
    /// Flushes per operation in the simulation.
    pub flushes_per_op: f64,
    /// Fences per operation in the simulation.
    pub fences_per_op: f64,
}

impl DelayReport {
    /// Build a report from the two stat blocks and the number of high-level
    /// operations each of them executed.
    pub fn compare(baseline: &Stats, baseline_ops: u64, simulated: &Stats, simulated_ops: u64) -> DelayReport {
        let base = if baseline_ops == 0 {
            0.0
        } else {
            baseline.steps() as f64 / baseline_ops as f64
        };
        let sim = if simulated_ops == 0 {
            0.0
        } else {
            simulated.steps() as f64 / simulated_ops as f64
        };
        DelayReport {
            baseline_steps_per_op: base,
            simulated_steps_per_op: sim,
            computation_delay: if base > 0.0 { sim / base } else { 0.0 },
            flushes_per_op: simulated.flushes_per_op(simulated_ops),
            fences_per_op: simulated.fences_per_op(simulated_ops),
        }
    }
}

impl std::fmt::Display for DelayReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "computation delay {:.2}x ({:.1} -> {:.1} steps/op), {:.2} flushes/op, {:.2} fences/op",
            self.computation_delay,
            self.baseline_steps_per_op,
            self.simulated_steps_per_op,
            self.flushes_per_op,
            self.fences_per_op
        )
    }
}

/// Measures recovery delay: the number of simulated instructions a process executes
/// between observing a crash and being ready to continue (Definition 3.3).
///
/// Usage: call [`RecoveryProbe::before`] just before triggering recovery and
/// [`RecoveryProbe::after`] once the process has re-reached its pre-crash point;
/// the probe reads the `recovery_steps` counter that
/// [`CapsuleRuntime::recover`](capsules::CapsuleRuntime::recover) (and any code
/// wrapped in `begin_recovery`/`end_recovery`) accumulates.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryProbe {
    start: u64,
}

impl RecoveryProbe {
    /// Snapshot the recovery-step counter before recovery begins.
    pub fn before(thread: &pmem::PThread<'_>) -> RecoveryProbe {
        RecoveryProbe {
            start: thread.stats().recovery_steps,
        }
    }

    /// Number of recovery steps executed since [`before`](Self::before).
    pub fn after(&self, thread: &pmem::PThread<'_>) -> u64 {
        thread.stats().recovery_steps - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(reads: u64, flushes: u64, fences: u64) -> Stats {
        Stats {
            reads,
            flushes,
            fences,
            ..Stats::new()
        }
    }

    #[test]
    fn compare_computes_per_op_factors() {
        let baseline = stats(100, 0, 0);
        let simulated = stats(250, 50, 25);
        let report = DelayReport::compare(&baseline, 10, &simulated, 10);
        assert!((report.baseline_steps_per_op - 10.0).abs() < 1e-9);
        assert!((report.simulated_steps_per_op - 32.5).abs() < 1e-9);
        assert!((report.computation_delay - 3.25).abs() < 1e-9);
        assert!((report.flushes_per_op - 5.0).abs() < 1e-9);
        assert!((report.fences_per_op - 2.5).abs() < 1e-9);
    }

    #[test]
    fn zero_ops_do_not_divide_by_zero() {
        let report = DelayReport::compare(&stats(0, 0, 0), 0, &stats(10, 0, 0), 0);
        assert_eq!(report.computation_delay, 0.0);
        assert_eq!(report.baseline_steps_per_op, 0.0);
    }

    #[test]
    fn display_is_readable() {
        let report = DelayReport::compare(&stats(10, 0, 0), 1, &stats(27, 2, 1), 1);
        let text = report.to_string();
        assert!(text.contains("computation delay 3.00x"), "got: {text}");
    }

    #[test]
    fn recovery_probe_counts_only_recovery_steps() {
        let mem = pmem::PMem::with_threads(1);
        let t = mem.thread(0);
        let a = t.alloc(1);
        t.read(a);
        let probe = RecoveryProbe::before(&t);
        t.begin_recovery();
        t.read(a);
        t.read(a);
        t.end_recovery();
        t.read(a);
        assert_eq!(probe.after(&t), 2);
    }
}
