//! §6: the Low-Computation-Delay Simulator (CAS-Read and Read-Only capsules).
//!
//! Instead of a boundary after *every* instruction, boundaries are placed only where
//! the CAS-Read discipline requires one:
//!
//! * a capsule contains **at most one CAS** to shared memory, and it must be the
//!   capsule's first shared-memory effect,
//! * any number of shared **reads** and local operations may follow,
//! * a capsule that begins with a persistent write of a private heap location may
//!   freely read and rewrite that location (there is no write-after-read hazard:
//!   restarting the capsule overwrites it again),
//! * otherwise, a read of a heap location followed by a write to it needs a boundary
//!   in between (§6 / the Blelloch-et-al. idempotence rule).
//!
//! Fewer boundaries mean less computation delay but a longer re-execution after a
//! crash — exactly the trade-off of the paper's "General" queue variant.
//!
//! The simulator is a thin layer: the CAS entry point is
//! [`capsules::recoverable_cas`]; this type adds the read helpers and records how
//! many boundaries a transformed operation actually used so tests can verify the
//! boundary-count claims (e.g. that the General queue uses more boundaries per
//! operation than the Normalized one).

use capsules::{recoverable_cas, CapsuleRuntime};
use pmem::PAddr;
use rcas::RcasSpace;

/// The Low-Computation-Delay (CAS-Read) simulator.
#[derive(Clone, Copy, Debug)]
pub struct CasReadSimulator {
    space: RcasSpace,
}

impl CasReadSimulator {
    /// Build a simulator that uses `space` for its recoverable CASes.
    pub fn new(space: RcasSpace) -> CasReadSimulator {
        CasReadSimulator { space }
    }

    /// The recoverable-CAS space used by this simulator.
    pub fn space(&self) -> &RcasSpace {
        &self.space
    }

    /// The CAS that opens a CAS-Read capsule (Algorithm 3). Must be the capsule's
    /// first shared-memory effect; `expected`/`new` must come from state persisted
    /// at the previous boundary.
    pub fn capsule_cas(
        &self,
        rt: &mut CapsuleRuntime<'_, '_>,
        addr: PAddr,
        expected: u64,
        new: u64,
    ) -> bool {
        recoverable_cas(rt, &self.space, addr, expected, new)
    }

    /// A shared read of a recoverable-CAS-formatted word. Reads are invisible and
    /// may appear anywhere in a capsule.
    pub fn read(&self, rt: &mut CapsuleRuntime<'_, '_>, addr: PAddr) -> u64 {
        self.space.read(rt.thread(), addr)
    }

    /// A shared read of a plain persistent word.
    pub fn read_plain(&self, rt: &mut CapsuleRuntime<'_, '_>, addr: PAddr) -> u64 {
        rt.thread().read(addr)
    }

    /// A persistent write to a *private* heap location (e.g. initialising a freshly
    /// allocated node before it is published). Safe anywhere in a capsule because a
    /// restart simply performs the write again.
    pub fn write_private(&self, rt: &mut CapsuleRuntime<'_, '_>, addr: PAddr, value: u64) {
        rt.thread().write(addr, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsules::{BoundaryStyle, CapsuleStep};
    use pmem::{install_quiet_crash_hook, CrashPolicy, PMem};

    /// The canonical CAS-Read encapsulation of a fetch-and-increment: capsule 0
    /// (read-only) reads and persists the expected value, capsule 1 (CAS-Read) does
    /// the CAS. Compare with the constant-delay test: same machine, half the
    /// boundaries for the read part.
    fn increment(
        mem: &PMem,
        pid: usize,
        space: &RcasSpace,
        x: PAddr,
        n: u64,
        policy: CrashPolicy,
    ) -> capsules::CapsuleMetrics {
        let t = mem.thread(pid);
        let sim = CasReadSimulator::new(*space);
        let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::General, 2);
        // Arm crash injection only after the runtime's frame exists.
        t.set_crash_policy(policy);
        for _ in 0..n {
            rt.run_op(0, |rt| match rt.pc() {
                0 => {
                    let v = sim.read(rt, x);
                    rt.set_local(0, v);
                    rt.boundary(1);
                    CapsuleStep::Continue
                }
                1 => {
                    let v = rt.local(0);
                    if sim.capsule_cas(rt, x, v, v + 1) {
                        rt.boundary(2);
                        CapsuleStep::Done(())
                    } else {
                        rt.boundary(0);
                        CapsuleStep::Continue
                    }
                }
                2 => CapsuleStep::Done(()),
                pc => unreachable!("pc {pc}"),
            });
        }
        t.disarm_crashes();
        rt.metrics()
    }

    #[test]
    fn increments_are_exact_without_crashes() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let space = RcasSpace::with_default_layout(&t, 1);
        let x = space.create(&t, 0).addr();
        increment(&mem, 0, &space, x, 64, CrashPolicy::Never);
        assert_eq!(space.read(&mem.thread(0), x), 64);
    }

    #[test]
    fn increments_are_exact_with_crashes() {
        install_quiet_crash_hook();
        let mem = PMem::with_threads(2);
        let t = mem.thread(0);
        let space = RcasSpace::with_default_layout(&t, 2);
        let x = space.create(&t, 0).addr();
        std::thread::scope(|s| {
            for pid in 0..2 {
                let mem = &mem;
                let space = &space;
                s.spawn(move || {
                    increment(
                        mem,
                        pid,
                        space,
                        x,
                        120,
                        CrashPolicy::Random {
                            prob: 0.02,
                            seed: 11 + pid as u64,
                        },
                    );
                });
            }
        });
        assert_eq!(space.read(&mem.thread(0), x), 240);
    }

    #[test]
    fn exhaustive_crash_point_sweep_is_exact() {
        // dfck-style enumeration at the simulator level: learn the crash-point
        // count of a crash-free run from Stats, then replay once per point k
        // (and once per nested [k, 0] crash-during-recovery schedule) asserting
        // the counter is exact every time.
        install_quiet_crash_hook();
        let run = |plan: Option<pmem::CrashPlan>| -> (u64, u64) {
            let mem = PMem::with_threads(1);
            let t = mem.thread(0);
            let space = RcasSpace::with_default_layout(&t, 1);
            let x = space.create(&t, 0).addr();
            let sim = CasReadSimulator::new(space);
            let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::General, 2);
            let _ = t.take_stats();
            if let Some(p) = plan {
                t.set_crash_schedule(p);
            }
            for _ in 0..3 {
                rt.run_op(0, |rt| match rt.pc() {
                    0 => {
                        let v = sim.read(rt, x);
                        rt.set_local(0, v);
                        rt.boundary(1);
                        CapsuleStep::Continue
                    }
                    1 => {
                        let v = rt.local(0);
                        if sim.capsule_cas(rt, x, v, v + 1) {
                            rt.boundary(2);
                            CapsuleStep::Done(())
                        } else {
                            rt.boundary(0);
                            CapsuleStep::Continue
                        }
                    }
                    2 => CapsuleStep::Done(()),
                    pc => unreachable!("pc {pc}"),
                });
            }
            let points = t.stats().crash_points;
            t.disarm_crashes();
            (space.read(&t, x), points)
        };
        let (value, n) = run(None);
        assert_eq!(value, 3);
        assert!(n > 0);
        for k in 0..n {
            let (v, _) = run(Some(pmem::CrashPlan::once(k)));
            assert_eq!(v, 3, "crash at point {k} changed the result");
            let (v, _) = run(Some(pmem::CrashPlan::new(vec![k, 0])));
            assert_eq!(v, 3, "nested crash at point {k} changed the result");
        }
    }

    #[test]
    fn uses_fewer_boundaries_than_constant_delay() {
        // Both simulators execute the same 20 uncontended increments; the CAS-Read
        // encapsulation needs 2 boundaries per op (read capsule + CAS capsule +
        // entry disabled), the single-instruction encapsulation needs one per
        // instruction which is strictly more once the extra result-persists are
        // counted.
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let space = RcasSpace::with_default_layout(&t, 1);
        let x = space.create(&t, 0).addr();
        let metrics = increment(&mem, 0, &space, x, 20, CrashPolicy::Never);
        // entry boundary + read capsule + CAS capsule = 3 boundaries per operation.
        assert_eq!(metrics.boundaries, 3 * 20);
        assert_eq!(metrics.operations, 20);
    }
}
