//! §5: the Constant-Delay Simulator (single-instruction capsules).
//!
//! Every simulated instruction of the original program becomes its own capsule: the
//! instruction executes and is immediately followed by a capsule boundary. Reads and
//! private writes are trivially invisible when repeated; CASes are replaced by the
//! recoverable CAS wrapped in the `checkRecovery` protocol. The result is a
//! simulation with constant computation delay and constant recovery delay
//! (Theorem 5.1) — the most robust but most expensive of the three simulators.
//!
//! Operations are still expressed as program-counter state machines over a
//! [`CapsuleRuntime`] (that is the shape the paper's transformation emits); this
//! module supplies the per-instruction wrappers, each of which ends the current
//! capsule by emitting a boundary that advances the pc by one.

use capsules::{recoverable_cas, CapsuleRuntime};
use pmem::PAddr;
use rcas::RcasSpace;

/// The Constant-Delay Simulator: per-instruction capsule wrappers.
///
/// All wrappers take the *next* program counter explicitly, because in a state
/// machine the instruction's successor is not always `pc + 1` (branches).
#[derive(Clone, Copy, Debug)]
pub struct ConstantDelaySimulator {
    space: RcasSpace,
}

impl ConstantDelaySimulator {
    /// Build a simulator that uses `space` for its recoverable CASes.
    pub fn new(space: RcasSpace) -> ConstantDelaySimulator {
        ConstantDelaySimulator { space }
    }

    /// The recoverable-CAS space used by this simulator.
    pub fn space(&self) -> &RcasSpace {
        &self.space
    }

    /// Simulate a shared read as a single-instruction capsule: read, persist the
    /// result into `result_local`, boundary.
    pub fn read(
        &self,
        rt: &mut CapsuleRuntime<'_, '_>,
        addr: PAddr,
        result_local: usize,
        next_pc: u32,
    ) -> u64 {
        let v = self.space.read(rt.thread(), addr);
        rt.set_local(result_local, v);
        rt.boundary(next_pc);
        v
    }

    /// Simulate a read of a plain (non-recoverable-CAS) persistent word.
    pub fn read_plain(
        &self,
        rt: &mut CapsuleRuntime<'_, '_>,
        addr: PAddr,
        result_local: usize,
        next_pc: u32,
    ) -> u64 {
        let v = rt.thread().read(addr);
        rt.set_local(result_local, v);
        rt.boundary(next_pc);
        v
    }

    /// Simulate a private persistent write (no other process writes this location)
    /// as a single-instruction capsule. Repetition simply overwrites the same value,
    /// so the instruction is invisible when repeated (§5).
    pub fn write_private(
        &self,
        rt: &mut CapsuleRuntime<'_, '_>,
        addr: PAddr,
        value: u64,
        next_pc: u32,
    ) {
        rt.thread().write(addr, value);
        rt.boundary(next_pc);
    }

    /// Simulate a shared CAS as a single-instruction capsule: recoverable CAS with
    /// the `checkRecovery` protocol, persist the result into `result_local`,
    /// boundary. Returns whether the CAS took effect.
    pub fn cas(
        &self,
        rt: &mut CapsuleRuntime<'_, '_>,
        addr: PAddr,
        expected: u64,
        new: u64,
        result_local: usize,
        next_pc: u32,
    ) -> bool {
        let ok = recoverable_cas(rt, &self.space, addr, expected, new);
        rt.set_local(result_local, ok as u64);
        rt.boundary(next_pc);
        ok
    }

    /// Simulate a purely local computation step as its own capsule: store its result
    /// and advance. (The definition of k-computation delay counts local instructions
    /// too; keeping them encapsulated preserves the constant recovery delay.)
    pub fn local(
        &self,
        rt: &mut CapsuleRuntime<'_, '_>,
        result_local: usize,
        value: u64,
        next_pc: u32,
    ) {
        rt.set_local(result_local, value);
        rt.boundary(next_pc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsules::{BoundaryStyle, CapsuleStep};
    use pmem::{install_quiet_crash_hook, CrashPolicy, PMem};

    /// A tiny "program": increment a shared counter `n` times, every instruction in
    /// its own capsule (read; cas; repeat). `arm` installs the crash schedule once
    /// the runtime's frame exists (so set-up is never interrupted).
    fn run_counter_with(
        mem: &PMem,
        pid: usize,
        space: &RcasSpace,
        x: PAddr,
        n: u64,
        arm: impl FnOnce(&pmem::PThread<'_>),
    ) -> u64 {
        let t = mem.thread(pid);
        let sim = ConstantDelaySimulator::new(*space);
        let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::General, 2);
        let _ = t.take_stats();
        arm(&t);
        for _ in 0..n {
            rt.run_op(0, |rt| match rt.pc() {
                0 => {
                    sim.read(rt, x, 0, 1);
                    CapsuleStep::Continue
                }
                1 => {
                    let v = rt.local(0);
                    let ok = sim.cas(rt, x, v, v + 1, 1, 2);
                    if ok {
                        CapsuleStep::Continue
                    } else {
                        rt.boundary(0);
                        CapsuleStep::Continue
                    }
                }
                2 => CapsuleStep::Done(()),
                pc => unreachable!("pc {pc}"),
            });
        }
        t.disarm_crashes();
        t.stats().crash_points
    }

    /// Policy-based wrapper kept for the torture tests below.
    fn run_counter(mem: &PMem, pid: usize, space: &RcasSpace, x: PAddr, n: u64, policy: CrashPolicy) -> u64 {
        run_counter_with(mem, pid, space, x, n, |t| t.set_crash_policy(policy))
    }

    #[test]
    fn counter_is_exact_without_crashes() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let space = RcasSpace::with_default_layout(&t, 1);
        let x = space.create(&t, 0).addr();
        run_counter(&mem, 0, &space, x, 50, CrashPolicy::Never);
        assert_eq!(space.read(&mem.thread(0), x), 50);
    }

    #[test]
    fn counter_is_exact_with_crashes() {
        install_quiet_crash_hook();
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let space = RcasSpace::with_default_layout(&t, 1);
        let x = space.create(&t, 0).addr();
        run_counter(
            &mem,
            0,
            &space,
            x,
            100,
            CrashPolicy::Random { prob: 0.03, seed: 3 },
        );
        assert_eq!(space.read(&mem.thread(0), x), 100);
    }

    #[test]
    fn concurrent_counter_is_exact_with_crashes() {
        install_quiet_crash_hook();
        const THREADS: usize = 3;
        const PER_THREAD: u64 = 80;
        let mem = PMem::with_threads(THREADS);
        let t0 = mem.thread(0);
        let space = RcasSpace::with_default_layout(&t0, THREADS);
        let x = space.create(&t0, 0).addr();
        std::thread::scope(|s| {
            for pid in 0..THREADS {
                let mem = &mem;
                let space = &space;
                s.spawn(move || {
                    run_counter(
                        mem,
                        pid,
                        space,
                        x,
                        PER_THREAD,
                        CrashPolicy::Random {
                            prob: 0.01,
                            seed: 77 + pid as u64,
                        },
                    );
                });
            }
        });
        assert_eq!(space.read(&mem.thread(0), x), THREADS as u64 * PER_THREAD);
    }

    #[test]
    fn exhaustive_crash_point_sweep_is_exact() {
        // Enumerate every crash point of a 3-increment run (count taken from
        // Stats) and replay with a single crash at k, then with a nested
        // crash-during-recovery schedule [k, 0]. Theorem 5.1 says every replay
        // must be invisible.
        install_quiet_crash_hook();
        let run = |plan: Option<pmem::CrashPlan>| -> (u64, u64) {
            let mem = PMem::with_threads(1);
            let t = mem.thread(0);
            let space = RcasSpace::with_default_layout(&t, 1);
            let x = space.create(&t, 0).addr();
            let points = run_counter_with(&mem, 0, &space, x, 3, |t| {
                if let Some(p) = plan {
                    t.set_crash_schedule(p);
                }
            });
            (space.read(&t, x), points)
        };
        let (value, n) = run(None);
        assert_eq!(value, 3);
        assert!(n > 0);
        for k in 0..n {
            let (v, _) = run(Some(pmem::CrashPlan::once(k)));
            assert_eq!(v, 3, "crash at point {k} changed the result");
            let (v, _) = run(Some(pmem::CrashPlan::new(vec![k, 0])));
            assert_eq!(v, 3, "nested crash at point {k} changed the result");
        }
    }

    #[test]
    fn every_instruction_gets_its_own_boundary() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let space = RcasSpace::with_default_layout(&t, 1);
        let x = space.create(&t, 0).addr();
        let sim = ConstantDelaySimulator::new(space);
        let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::General, 2);
        rt.set_entry_boundary(false);
        let before = rt.metrics().boundaries;
        rt.run_op(0, |rt| match rt.pc() {
            0 => {
                sim.read(rt, x, 0, 1);
                CapsuleStep::Continue
            }
            1 => {
                let v = rt.local(0);
                sim.cas(rt, x, v, v + 1, 1, 2);
                CapsuleStep::Continue
            }
            2 => CapsuleStep::Done(()),
            _ => unreachable!(),
        });
        let after = rt.metrics().boundaries;
        assert_eq!(after - before, 2, "one boundary per simulated instruction");
    }

    #[test]
    fn write_private_and_local_advance_the_machine() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let space = RcasSpace::with_default_layout(&t, 1);
        let sim = ConstantDelaySimulator::new(space);
        let scratch = t.alloc(1);
        let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::General, 2);
        let out = rt.run_op(0, |rt| match rt.pc() {
            0 => {
                sim.write_private(rt, scratch, 9, 1);
                CapsuleStep::Continue
            }
            1 => {
                sim.local(rt, 0, 33, 2);
                CapsuleStep::Continue
            }
            2 => {
                let v = sim.read_plain(rt, scratch, 1, 3);
                CapsuleStep::Done(v + rt.local(0))
            }
            3 => CapsuleStep::Done(rt.local(1) + rt.local(0)),
            _ => unreachable!(),
        });
        assert_eq!(out, 42);
    }
}
