//! Criterion version of the figure workloads: single data points (small run
//! lengths) per queue variant, so `cargo bench` exercises the same code paths the
//! figure binaries sweep. For the full thread sweeps and paper-shaped tables use
//! the `fig5`/`fig6`/`fig7` binaries.

use bench::{run_workload, Variant, WorkloadConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn queue_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_throughput");
    group.sample_size(10);
    let cfg = WorkloadConfig {
        threads: 2,
        pairs_per_thread: 2_000,
        prefill: 500,
        adaptive: capsules::adaptive_enabled(),
    };
    for variant in Variant::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(variant.label()),
            &variant,
            |b, &variant| {
                b.iter(|| black_box(run_workload(variant, &cfg)));
            },
        );
    }
    group.finish();
}

criterion_group!(figures, queue_variants);
criterion_main!(figures);
