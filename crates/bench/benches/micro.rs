//! Micro/ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * recoverable CAS: the paper's Algorithm 1 (packed word) vs the Attiya-style
//!   O(P²) variant vs the indirection-based encoding vs a plain CAS,
//! * capsule boundaries: general (double-buffered + mask) vs compact (one line),
//! * writable CAS objects (Algorithm 8) vs plain persistent words.

use capsules::{BoundaryStyle, CapsuleRuntime};
use criterion::{criterion_group, criterion_main, Criterion};
use pmem::PMem;
use rcas::{AttiyaRcas, IndirectRcas, RcasSpace, WritableCasArray};
use std::hint::black_box;

fn bench_recoverable_cas(c: &mut Criterion) {
    let mut group = c.benchmark_group("recoverable_cas");
    group.sample_size(30);

    group.bench_function("plain_cas", |b| {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let x = t.alloc(1);
        let mut v = 0u64;
        b.iter(|| {
            assert!(t.cas(x, v, v + 1));
            v += 1;
            black_box(v)
        });
    });

    group.bench_function("algorithm1_packed", |b| {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let space = RcasSpace::with_default_layout(&t, 1);
        let x = space.create(&t, 0).addr();
        let mut v = 0u64;
        let mut seq = 0u64;
        b.iter(|| {
            // Keep the sequence number inside the packed field's width; single
            // threaded, so wrapping cannot introduce ABA.
            seq = if seq >= (1 << 26) - 2 { 1 } else { seq + 1 };
            assert!(space.cas(&t, x, v, v + 1, seq));
            v += 1;
            black_box(v)
        });
    });

    group.bench_function("attiya_style", |b| {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let obj = AttiyaRcas::new(&t, 1, 0);
        let mut v = 0u64;
        let mut seq = 0u64;
        b.iter(|| {
            seq = if seq >= (1 << 26) - 2 { 1 } else { seq + 1 };
            assert!(obj.cas(&t, v, v + 1, seq));
            v += 1;
            black_box(v)
        });
    });

    group.bench_function("indirect_descriptor", |b| {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let fam = IndirectRcas::new(&t, 1, false);
        let x = fam.create(&t, 0);
        let mut v = 0u64;
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            assert!(fam.cas(&t, x, v, v + 1, seq));
            v += 1;
            black_box(v)
        });
    });

    group.finish();
}

fn bench_capsule_boundary(c: &mut Criterion) {
    let mut group = c.benchmark_group("capsule_boundary");
    group.sample_size(30);

    for (name, style) in [
        ("general_two_fences", BoundaryStyle::General),
        ("compact_one_fence", BoundaryStyle::Compact),
    ] {
        group.bench_function(name, |b| {
            let mem = PMem::with_threads(1);
            let t = mem.thread(0);
            let mut rt = CapsuleRuntime::new(&t, style, 3);
            rt.set_war_check(false);
            let mut i = 0u64;
            b.iter(|| {
                rt.set_local(0, i);
                rt.set_local(1, i + 1);
                rt.boundary((i % 1000) as u32);
                i += 1;
                black_box(i)
            });
        });
    }

    group.finish();
}

fn bench_writable_cas(c: &mut Criterion) {
    let mut group = c.benchmark_group("writable_cas");
    group.sample_size(30);

    group.bench_function("plain_word_write", |b| {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let x = t.alloc(1);
        let mut i = 0u64;
        b.iter(|| {
            t.write(x, i);
            i += 1;
            black_box(i)
        });
    });

    group.bench_function("algorithm8_write", |b| {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let arr = WritableCasArray::new(&t, 1, 1);
        let mut h = arr.handle(&t);
        let mut i = 0u64;
        b.iter(|| {
            h.write(&t, 0, i);
            i += 1;
            black_box(i)
        });
    });

    group.bench_function("algorithm8_cas", |b| {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let arr = WritableCasArray::new(&t, 1, 1);
        let h = arr.handle(&t);
        let mut v = 0u64;
        b.iter(|| {
            assert!(h.cas(&t, 0, v, v + 1));
            v += 1;
            black_box(v)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_recoverable_cas, bench_capsule_boundary, bench_writable_cas);
criterion_main!(benches);
