//! Machine-readable benchmark output (`BENCH_*.json`).
//!
//! Every figure binary (and the instruction-overhead microbench) can emit its
//! results as a small JSON document so that the perf trajectory of the simulator
//! can be tracked across PRs by diffing/plotting the files instead of scraping
//! stdout tables. The schema is documented in the README ("Machine-readable
//! benchmark output"); the writer is hand-rolled because the workspace builds
//! offline (no serde).
//!
//! Emission is opt-in through the `DF_JSON` environment variable:
//!
//! * unset — no JSON is written (stdout tables only),
//! * `DF_JSON=1` — write `BENCH_<name>.json` into the current directory,
//! * `DF_JSON=<dir>` — write `BENCH_<name>.json` into `<dir>` (created if needed).

use std::path::PathBuf;

use crate::Measurement;

/// Schema identifier stamped into every emitted document. Bump only on breaking
/// changes to the layout; additions of new fields keep the same identifier.
pub const SCHEMA: &str = "delayfree-bench-v1";

/// One row of a JSON benchmark report. Mirrors [`Measurement`] but with a free-form
/// series label so that non-queue benchmarks (e.g. the instruction-overhead
/// microbench) can use the same schema.
#[derive(Clone, Debug)]
pub struct JsonRow {
    /// Series label (queue variant name, or `"read/disarmed"`-style for micro runs).
    pub variant: String,
    /// Worker-thread count the row was measured with.
    pub threads: usize,
    /// Throughput in million operations per second.
    pub mops: f64,
    /// Cache-line flushes per operation.
    pub flushes_per_op: f64,
    /// Fences per operation.
    pub fences_per_op: f64,
    /// Additional benchmark-specific key/value pairs appended to the row object
    /// (e.g. `recovery_steps` for the recovery table, `crash_points` for the
    /// `dfck` coverage report). Additive with respect to the schema: readers of
    /// `delayfree-bench-v1` that only know the fixed fields keep working.
    pub extra: Vec<(&'static str, f64)>,
}

impl JsonRow {
    /// A row with the fixed fields set and no extras.
    pub fn new(variant: impl Into<String>, threads: usize, mops: f64) -> JsonRow {
        JsonRow {
            variant: variant.into(),
            threads,
            mops,
            flushes_per_op: 0.0,
            fences_per_op: 0.0,
            extra: Vec::new(),
        }
    }

    /// Append a benchmark-specific key/value pair.
    pub fn with(mut self, key: &'static str, value: f64) -> JsonRow {
        self.extra.push((key, value));
        self
    }
}

impl From<&Measurement> for JsonRow {
    fn from(m: &Measurement) -> JsonRow {
        JsonRow {
            variant: m.variant.label().to_string(),
            threads: m.threads,
            mops: m.mops,
            flushes_per_op: m.flushes_per_op,
            fences_per_op: m.fences_per_op,
            // Additive field (schema stays delayfree-bench-v1): only
            // measurement-derived rows carry the duplicate-flush rate.
            extra: vec![("duplicate_flushes_per_op", m.duplicate_flushes_per_op)],
        }
    }
}

/// Where JSON output should go: `None` when `DF_JSON` is unset (emission disabled).
pub fn json_dir() -> Option<PathBuf> {
    let raw = std::env::var("DF_JSON").ok()?;
    if raw.is_empty() || raw == "0" {
        return None;
    }
    if raw == "1" {
        Some(PathBuf::from("."))
    } else {
        Some(PathBuf::from(raw))
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Format a float as a JSON number (JSON has no NaN/Inf; those become 0).
fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0.0".to_string()
    }
}

/// Render a benchmark report as a JSON document (pretty-printed, trailing newline).
pub fn render(bench: &str, params: &[(&str, u64)], wall_clock_secs: f64, rows: &[JsonRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{}\",\n", escape(SCHEMA)));
    out.push_str(&format!("  \"bench\": \"{}\",\n", escape(bench)));
    out.push_str("  \"params\": {");
    for (i, (k, v)) in params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": {}", escape(k), v));
    }
    out.push_str("},\n");
    out.push_str(&format!("  \"wall_clock_secs\": {},\n", number(wall_clock_secs)));
    out.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let mut extras = String::new();
        for (k, v) in &row.extra {
            extras.push_str(&format!(", \"{}\": {}", escape(k), number(*v)));
        }
        out.push_str(&format!(
            "    {{\"variant\": \"{}\", \"threads\": {}, \"mops\": {}, \"flushes_per_op\": {}, \"fences_per_op\": {}{}}}{}\n",
            escape(&row.variant),
            row.threads,
            number(row.mops),
            number(row.flushes_per_op),
            number(row.fences_per_op),
            extras,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extra-field keys that count as a *measured* signal for the
/// `DF_REQUIRE_NONZERO` guard. Parameter-like extras (`queue_len`,
/// `crash_points`, …) are deliberately excluded: they are non-zero by
/// construction, so accepting them would let a broken measurement upload a
/// "green" baseline — the exact failure the guard exists to stop.
const NONZERO_METRIC_KEYS: [&str; 2] = ["recovery_steps", "crashes_injected"];

/// Write `BENCH_<name>.json` if `DF_JSON` is set; returns the path written.
///
/// When `DF_REQUIRE_NONZERO` is set, exits with an error if any row reports no
/// measured signal — zero (or negative) throughput and, for rows that carry
/// benchmark-specific `extra` metrics instead of a throughput (the recovery
/// table, the dfck coverage report), every [`NONZERO_METRIC_KEYS`] extra zero
/// as well. The CI bench-smoke job uses this as its pass/fail criterion so a
/// silently broken variant cannot upload a "green" baseline.
pub fn emit(bench: &str, params: &[(&str, u64)], wall_clock_secs: f64, rows: &[JsonRow]) -> Option<PathBuf> {
    if std::env::var_os("DF_REQUIRE_NONZERO").is_some() {
        for row in rows {
            let has_signal = row.mops > 0.0
                || row
                    .extra
                    .iter()
                    .any(|(k, v)| NONZERO_METRIC_KEYS.contains(k) && *v > 0.0);
            assert!(
                has_signal,
                "DF_REQUIRE_NONZERO: {} @ {} threads reported {} Mops/s and no non-zero metric extra",
                row.variant,
                row.threads,
                row.mops
            );
        }
    }
    let dir = json_dir()?;
    std::fs::create_dir_all(&dir).expect("creating DF_JSON output directory");
    let path = dir.join(format!("BENCH_{bench}.json"));
    let doc = render(bench, params, wall_clock_secs, rows);
    std::fs::write(&path, doc).expect("writing BENCH json file");
    eprintln!("# wrote {}", path.display());
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(variant: &str, mops: f64) -> JsonRow {
        JsonRow {
            variant: variant.to_string(),
            threads: 2,
            mops,
            flushes_per_op: 1.5,
            fences_per_op: 0.5,
            extra: Vec::new(),
        }
    }

    #[test]
    fn render_produces_well_formed_json() {
        let doc = render("fig7", &[("pairs", 500), ("prefill", 100)], 1.25, &[row("MSQ", 10.0), row("LogQueue", 2.0)]);
        // Structural checks (no JSON parser in the offline workspace): balanced
        // braces/brackets, schema string, both rows, no trailing comma.
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
        assert!(doc.contains("\"schema\": \"delayfree-bench-v1\""));
        assert!(doc.contains("\"bench\": \"fig7\""));
        assert!(doc.contains("\"pairs\": 500"));
        assert!(doc.contains("\"variant\": \"MSQ\""));
        assert!(doc.contains("\"variant\": \"LogQueue\""));
        assert!(!doc.contains(",\n  ]"));
        assert!(doc.contains("\"wall_clock_secs\": 1.250000"));
    }

    #[test]
    fn render_appends_extra_fields_per_row() {
        let r = JsonRow::new("General/pair", 1, 2.5)
            .with("crash_points", 321.0)
            .with("oracle_failures", 0.0);
        let doc = render("dfck", &[("ops", 2)], 0.5, &[r]);
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert!(doc.contains("\"crash_points\": 321.000000"));
        assert!(doc.contains("\"oracle_failures\": 0.000000"));
        assert!(doc.contains("\"variant\": \"General/pair\""));
    }

    #[test]
    fn render_escapes_strings_and_sanitises_floats() {
        let doc = render("x\"y", &[], f64::NAN, &[row("a\\b", f64::INFINITY)]);
        assert!(doc.contains("\"bench\": \"x\\\"y\""));
        assert!(doc.contains("\"variant\": \"a\\\\b\""));
        assert!(!doc.contains("NaN"));
        assert!(!doc.contains("inf"));
    }

    #[test]
    fn json_dir_parses_the_env_convention() {
        // Can't mutate the process environment safely in parallel tests; just
        // exercise the pure parts via render/escape above and the row conversion.
        let m = crate::Measurement {
            variant: crate::Variant::Msq,
            threads: 3,
            mops: 1.0,
            flushes_per_op: 0.0,
            fences_per_op: 0.0,
            duplicate_flushes_per_op: 0.0,
        };
        let r = JsonRow::from(&m);
        assert_eq!(r.variant, "MSQ");
        assert_eq!(r.threads, 3);
    }
}
