//! `sweep` — the machinery shared by the exhaustive crash-point sweepers.
//!
//! [`crate::dfck`] (queues) and [`crate::dfck_struct`] (stacks and sets) run
//! the same engine over different shapes: a crash-free baseline learns the
//! crash-point count, each point `k` is replayed with a scripted
//! [`CrashPlan`], the independent replays fan out across worker threads, and
//! per-replay results are merged into a report in `k` order. This module owns
//! that engine — the replay record, the report, the fan-out/striping, the
//! kill-aware crash application and the drain-bound discipline — so the two
//! sweepers contribute only their drivers (how to run one replay) and their
//! sequential models (what a correct history looks like).
//!
//! It also owns the **generalized oracle**: a Wing&Gong-style linearization
//! checker over timed operation histories ([`check_linearizable`]). The
//! single-threaded sweeps drive it with a totally ordered history
//! ([`check_sequential`] — equivalent to the original forked-model oracles,
//! with interrupted operations forking applied/not-applied branches in place),
//! and the interleaved sweeps ([`run_conc_sweep`]) drive it with real
//! concurrent timestamps taken from the deterministic
//! [`ThreadScheduler`](pmem::ThreadScheduler)'s global instruction clock, so
//! the check becomes "consistent with *some* valid linearization of the
//! concurrent history".

use std::collections::{BTreeSet, HashSet};
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};

use pmem::{CrashPlan, PThread, Stats, ThreadScheduler};

/// What a replay driver observed for one operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpOutcome {
    /// The operation ran to completion; the return value is carried (e.g. a
    /// dequeue's result; `None` for operations that return nothing).
    Completed(Option<u64>),
    /// A crash interrupted the operation and the variant cannot tell whether
    /// it took effect (only possible for non-detectable variants).
    Interrupted,
}

/// Everything one single-threaded replay produced, for the oracle and the
/// report. Shared verbatim by the queue and structure sweepers.
#[derive(Clone, Debug)]
pub struct ReplayRecord {
    /// Per-operation outcomes, in program order.
    pub outcomes: Vec<OpOutcome>,
    /// The final bounded drain of the container.
    pub drained: Vec<u64>,
    /// The drain returned more elements than the replay could possibly have
    /// left behind: the chain is corrupted — almost certainly cyclic. The
    /// bounded drain is what keeps the sweep from hanging on it.
    pub drain_overflow: bool,
    /// Crash points passed inside the swept window (meaningful for the
    /// crash-free baseline, where it defines the sweep range).
    pub crash_points: u64,
    /// Simulated crashes the thread experienced.
    pub crashes: u64,
    /// Frame recoveries (capsule variants) or recovery calls (LogQueue).
    pub recoveries: u64,
    /// Crashes absorbed by retrying the operation-entry boundary (capsule
    /// variants only).
    pub entry_retries: u64,
    /// Crashes that landed inside recovery itself (the nested path).
    pub recovery_crashes: u64,
    /// Operations routed to the contention-adaptive fast entry point
    /// (capsule variants; zero for variants without a fast path).
    pub fast_ops: u64,
    /// Fast→slow demotions: fast-path operations that fell back to the full
    /// simulator after losing their CAS streak (capsule variants only).
    pub demotions: u64,
    /// Flush-order violations the armed [`pmem::FlushAuditor`] flagged.
    pub audit_flags: u64,
    /// The auditor's human-readable reports for those flags.
    pub audit_reports: Vec<String>,
    /// Happens-before violations (data races + cross-failure races) the armed
    /// [`pmem::HbAnalyzer`] flagged.
    pub hb_flags: u64,
    /// The analyzer's human-readable reports for those flags.
    pub hb_reports: Vec<String>,
}

/// Aggregate result of sweeping one (variant, workload) combination. `V` is
/// the sweeper's variant enum ([`crate::dfck::SweepVariant`] or
/// [`crate::dfck_struct::StructVariant`]); everything else is shared.
#[derive(Clone, Debug)]
pub struct Report<V> {
    /// The swept variant.
    pub variant: V,
    /// Workload name ("pair" / "multi").
    pub workload: &'static str,
    /// Crash schedule family: the gaps injected *after* the swept crash point.
    /// Empty for the single-crash sweep; `[m]` for the nested sweep that
    /// crashes again `m` crash points into the recovery the first crash
    /// triggered; `[m, n]` for depth-2 schedules; and so on.
    pub nested: Vec<u64>,
    /// Whether crashes were full-system power failures (unflushed lines rolled
    /// back) rather than per-process faults.
    pub system: bool,
    /// Total crash points of the crash-free run (all of them were swept).
    pub crash_points: u64,
    /// Replays executed (= crash points, plus the crash-free baseline).
    pub replays: u64,
    /// Total simulated crashes injected across all replays.
    pub crashes_injected: u64,
    /// Total recoveries observed across all replays.
    pub recoveries: u64,
    /// Crashes absorbed by entry-boundary retries across all replays.
    pub entry_retries: u64,
    /// Crashes that interrupted recovery itself (proof the nested path ran).
    pub recovery_crashes: u64,
    /// Operations routed to the adaptive fast entry point across all replays
    /// (baseline included) — the coverage proof that the sweep was crashing
    /// fast-path code, not just the simulator.
    pub fast_ops: u64,
    /// Fast→slow demotions across all replays (baseline included).
    pub demotions: u64,
    /// Flush-order violations the armed auditor flagged across all replays
    /// (also folded into `violations`). Must be zero.
    pub audit_flags: u64,
    /// Happens-before violations the armed analyzer flagged across all
    /// replays (also folded into `violations`). Must be zero.
    pub hb_flags: u64,
    /// Oracle violations, as human-readable descriptions. Must be empty.
    pub violations: Vec<String>,
}

impl<V> Report<V> {
    /// Whether every replay satisfied the oracle.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Apply a caught crash to the machine from a sweep *driver* (code outside the
/// capsule runtime, e.g. the MSQ-Izraelevitz and LogQueue protocol drivers).
///
/// Kill-aware: when the crash this thread just caught was the collateral of a
/// peer's full-system crash delivered through the
/// [`ThreadScheduler`](pmem::ThreadScheduler)
/// ([`PThread::take_killed`]), the peer already applied the machine-level
/// effects (rollback + crashed flags); re-applying them would double the
/// rollback and re-kill the peers in turn. Otherwise this is the crash the
/// thread's own schedule raised: apply a full-system power failure (roll back
/// every unflushed cache line and kill the scheduled peers — sound because
/// only the baton holder executes instructions, so every peer is parked
/// before its next access) or the default per-process fault.
pub fn apply_driver_crash(t: &PThread, system: bool) {
    t.note_crash();
    if t.take_killed() {
        let _ = t.mem().take_crashed(t.pid());
        return;
    }
    if system {
        t.mem().crash_all();
        t.kill_peers();
    } else {
        t.mem().crash_thread(t.pid());
    }
    let _ = t.mem().take_crashed(t.pid());
}

/// Worker-thread count for the sweep fan-out: `DF_DFCK_THREADS`, defaulting
/// to `available_parallelism` capped at 8, never more than one per replay.
pub fn sweep_workers(replays: u64) -> usize {
    let default = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);
    let configured = crate::env_u64("DF_DFCK_THREADS", default as u64).max(1) as usize;
    configured.min(replays.max(1) as usize)
}

/// Fan `run_one` out over `0..n` across `workers` OS threads (striped, since
/// the per-`k` costs are roughly uniform) and return the results sorted by
/// `k` — the merge is deterministic regardless of the worker count. Replays
/// share nothing (each builds its own machine), so plain fan-out is sound.
pub fn fan_out<R: Send>(
    n: u64,
    workers: usize,
    run_one: impl Fn(u64) -> R + Sync,
) -> Vec<(u64, R)> {
    let workers = workers.max(1);
    if workers <= 1 {
        return (0..n).map(|k| (k, run_one(k))).collect();
    }
    let mut all: Vec<(u64, R)> = std::thread::scope(|s| {
        let run_one = &run_one;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || {
                    (w as u64..n)
                        .step_by(workers)
                        .map(|k| (k, run_one(k)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    all.sort_by_key(|&(k, _)| k);
    all
}

/// The shared single-threaded sweep engine: run the crash-free baseline, fan
/// one replay per crash point out over [`sweep_workers`], and assemble the
/// [`Report`] — audit flags, schedule-never-fired detection, the
/// model-consistency check, and (for `strict` = detectable variants) the
/// exactly-once obligations: history identical to the crash-free run and at
/// least one recovery action per injected crash.
///
/// `trace_tag` prefixes the optional `DF_DFCK_TRACE` schedule log; `replay`
/// runs one replay under the given plan; `check` is the model-consistency
/// oracle for one replay (typically [`check_sequential`] behind a
/// drain-overflow guard).
#[allow(clippy::too_many_arguments)] // one assembly site, two thin callers
pub fn run_sweep<V: Copy>(
    variant: V,
    trace_tag: &str,
    workload_name: &'static str,
    nested: &[u64],
    system: bool,
    strict: bool,
    workers_override: Option<usize>,
    replay: impl Fn(&CrashPlan) -> ReplayRecord + Sync,
    check: impl Fn(&ReplayRecord) -> Result<(), String>,
) -> Report<V> {
    // Crash-free baseline: defines the sweep range and the reference history.
    let baseline = replay(&CrashPlan::new(Vec::new()));
    assert_eq!(baseline.crashes, 0);
    let mut report = Report {
        variant,
        workload: workload_name,
        nested: nested.to_vec(),
        system,
        crash_points: baseline.crash_points,
        replays: 1,
        crashes_injected: 0,
        recoveries: 0,
        entry_retries: 0,
        recovery_crashes: 0,
        fast_ops: baseline.fast_ops,
        demotions: baseline.demotions,
        audit_flags: baseline.audit_flags,
        hb_flags: baseline.hb_flags,
        violations: Vec::new(),
    };
    if let Err(e) = check(&baseline) {
        report
            .violations
            .push(format!("baseline (crash-free): {e}"));
    }
    if baseline.audit_flags > 0 {
        report.violations.push(format!(
            "baseline (crash-free): {} flush-audit flag(s): {:?}",
            baseline.audit_flags, baseline.audit_reports
        ));
    }
    if baseline.hb_flags > 0 {
        report.violations.push(format!(
            "baseline (crash-free): {} happens-before flag(s): {:?}",
            baseline.hb_flags, baseline.hb_reports
        ));
    }
    // One source of truth for the scripted schedule shape: `CrashPlan::nested`
    // builds `[k, nested…]`, and `script()` is what the reports print.
    let plan_for = |k: u64| CrashPlan::nested(k, nested);
    let run_one = |k: u64| -> ReplayRecord {
        let plan = plan_for(k);
        if std::env::var_os("DF_DFCK_TRACE").is_some() {
            eprintln!("{trace_tag}: k={k} gaps={:?} system={system}", plan.script());
        }
        replay(&plan)
    };
    let n = baseline.crash_points;
    let workers = workers_override
        .map(|w| w.max(1))
        .unwrap_or_else(|| sweep_workers(n));
    for (k, r) in fan_out(n, workers, run_one) {
        let gaps = plan_for(k).script().to_vec();
        report.replays += 1;
        report.crashes_injected += r.crashes;
        report.recoveries += r.recoveries;
        report.entry_retries += r.entry_retries;
        report.recovery_crashes += r.recovery_crashes;
        report.fast_ops += r.fast_ops;
        report.demotions += r.demotions;
        report.audit_flags += r.audit_flags;
        report.hb_flags += r.hb_flags;
        if r.audit_flags > 0 {
            report.violations.push(format!(
                "k={k} gaps={gaps:?}: {} flush-audit flag(s): {:?}",
                r.audit_flags, r.audit_reports
            ));
        }
        if r.hb_flags > 0 {
            report.violations.push(format!(
                "k={k} gaps={gaps:?}: {} happens-before flag(s): {:?}",
                r.hb_flags, r.hb_reports
            ));
        }
        if r.crashes == 0 {
            report.violations.push(format!(
                "k={k}: the schedule never fired (swept range disagrees with the replay)"
            ));
            continue;
        }
        if let Err(e) = check(&r) {
            report.violations.push(format!("k={k} gaps={gaps:?}: {e}"));
            continue;
        }
        if strict {
            // Detectable variants: the history must be *identical* to the
            // crash-free one — crashes must be invisible (Definition 2.2) —
            // and the crash must actually have forced a recovery, proving the
            // "re-executed but invisible" claim rather than a vacuous pass.
            if r.outcomes != baseline.outcomes || r.drained != baseline.drained {
                report.violations.push(format!(
                    "k={k} gaps={gaps:?}: history differs from the crash-free run \
                     (outcomes {:?} vs {:?}, drain {:?} vs {:?})",
                    r.outcomes, baseline.outcomes, r.drained, baseline.drained
                ));
            }
            if r.recoveries + r.entry_retries == 0 {
                report.violations.push(format!(
                    "k={k}: a crash was injected but no recovery action ran"
                ));
            }
        }
    }
    report
}

// ---------------------------------------------------------------------------
// The generalized oracle: linearization checking over timed histories.
// ---------------------------------------------------------------------------

/// A sequential model of the shape under test, used by the linearization
/// checker. Implementations are tiny in-memory references: a `VecDeque` for
/// FIFO queues, a `Vec` for LIFO stacks, a `BTreeSet` for ordered sets.
///
/// `Clone + Eq + Hash` let the checker fork the model at interrupted
/// operations and memoize visited (decided-set, state) pairs.
pub trait SeqModel: Clone + Eq + Hash {
    /// The operation alphabet of the shape.
    type Op: Copy + std::fmt::Debug;
    /// Apply `op` to the model, returning the model's return value (compared
    /// against the observed [`OpOutcome::Completed`] payload).
    fn apply(&mut self, op: Self::Op) -> Option<u64>;
    /// The drain the harness would observe from this state (FIFO order,
    /// top-down for stacks, ascending for sets).
    fn final_drain(&self) -> Vec<u64>;
}

/// One operation of a (possibly concurrent) history, with the interval of
/// global instruction timestamps it occupied.
///
/// Timestamps come from the [`ThreadScheduler`](pmem::ThreadScheduler)'s
/// global clock ([`PThread::sched_step`]): `start` is a lower bound on the
/// operation's first instruction, `end` an upper bound on its linearization
/// point ([`u64::MAX`] for interrupted operations, whose effect — if any —
/// may surface arbitrarily late, e.g. through a peer's helping). Loose starts
/// and tight ends keep the checker *sound*: it may miss a real-time ordering
/// edge (accepting a history a sharper clock would reject) but never invents
/// one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimedOp<O> {
    /// The operation.
    pub op: O,
    /// What the driver observed for it.
    pub outcome: OpOutcome,
    /// Lower bound on the operation's invocation time.
    pub start: u64,
    /// Upper bound on the operation's linearization point.
    pub end: u64,
}

/// Bit-set over history indices, sized at runtime (no 64-op cap: seeded
/// workloads scale with `DF_DFCK_OPS`).
#[derive(Clone, PartialEq, Eq, Hash)]
struct DoneSet(Vec<u64>);

impl DoneSet {
    fn new(n: usize) -> DoneSet {
        DoneSet(vec![0; n.div_ceil(64)])
    }
    fn get(&self, i: usize) -> bool {
        self.0[i / 64] >> (i % 64) & 1 == 1
    }
    fn with(&self, i: usize) -> DoneSet {
        let mut next = self.clone();
        next.0[i / 64] |= 1 << (i % 64);
        next
    }
    fn count(&self) -> usize {
        self.0.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Check a timed operation history against a sequential model: succeed iff
/// *some* valid linearization of the history — an order of the operations
/// that respects real time (an operation that completed before another was
/// invoked must linearize first), with every interrupted operation either
/// applied or dropped — reproduces every completed operation's return value
/// *and* the final drained contents.
///
/// This is the forked-model oracle generalized from total orders (the
/// original sequential sweeps, via [`check_sequential`]) to the partial
/// orders of genuinely concurrent replays. Search is exhaustive
/// (Wing & Gong-style DFS) with memoization over (decided-set, model state),
/// which keeps the tiny sweep histories (a handful of ops per process) cheap.
pub fn check_linearizable<M: SeqModel>(
    initial: M,
    history: &[TimedOp<M::Op>],
    drained: &[u64],
) -> Result<(), String> {
    fn dfs<M: SeqModel>(
        history: &[TimedOp<M::Op>],
        drained: &[u64],
        done: &DoneSet,
        model: &M,
        memo: &mut HashSet<(DoneSet, M)>,
    ) -> bool {
        if done.count() == history.len() {
            return model.final_drain() == drained;
        }
        if !memo.insert((done.clone(), model.clone())) {
            return false;
        }
        for (i, item) in history.iter().enumerate() {
            if done.get(i) {
                continue;
            }
            // Real-time order: `i` may linearize next only if no other still
            // pending operation *completed* before `i` was invoked.
            let blocked = history
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && !done.get(j) && other.end < item.start);
            if blocked {
                continue;
            }
            let next_done = done.with(i);
            match item.outcome {
                OpOutcome::Completed(ret) => {
                    let mut next = model.clone();
                    if next.apply(item.op) == ret
                        && dfs(history, drained, &next_done, &next, memo)
                    {
                        return true;
                    }
                }
                OpOutcome::Interrupted => {
                    // Fork: the interrupted operation either applied (its
                    // return value was lost with the crash) or never happened.
                    let mut applied = model.clone();
                    let _ = applied.apply(item.op);
                    if dfs(history, drained, &next_done, &applied, memo)
                        || dfs(history, drained, &next_done, model, memo)
                    {
                        return true;
                    }
                }
            }
        }
        false
    }
    let mut memo = HashSet::new();
    if dfs(history, drained, &DoneSet::new(history.len()), &initial, &mut memo) {
        Ok(())
    } else {
        Err(format!(
            "no valid linearization of the history reproduces the observed \
             returns and final drain {drained:?} (history: {history:?})"
        ))
    }
}

/// [`check_linearizable`] over a totally ordered (single-threaded) history:
/// op `i` gets the degenerate interval `[i, i]`, which forces program order
/// and makes every interrupted operation fork applied/not-applied *in place*
/// — exactly the original sequential forked-model oracles.
pub fn check_sequential<M: SeqModel>(
    initial: M,
    ops: &[M::Op],
    outcomes: &[OpOutcome],
    drained: &[u64],
) -> Result<(), String> {
    assert_eq!(ops.len(), outcomes.len(), "one outcome per operation");
    let history: Vec<TimedOp<M::Op>> = ops
        .iter()
        .zip(outcomes)
        .enumerate()
        .map(|(i, (&op, &outcome))| TimedOp {
            op,
            outcome,
            start: i as u64,
            end: i as u64,
        })
        .collect();
    check_linearizable(initial, &history, drained)
}

// ---------------------------------------------------------------------------
// The interleaved (schedule × crash point) sweep engine.
// ---------------------------------------------------------------------------

/// A pid-ordered turn gate the concurrent replay drivers use to serialise
/// *unscheduled* per-process setup (handle construction). Construction
/// allocates persistent memory before the scheduler is armed, and the
/// allocation layout — hence cache-line co-location, which line-granular
/// flush/rollback acts on — must be deterministic for equal seeds to
/// reproduce replays bit-for-bit.
pub struct TurnGate {
    turn: Mutex<usize>,
    cv: Condvar,
}

impl TurnGate {
    /// A gate whose first turn belongs to pid 0.
    pub fn new() -> TurnGate {
        TurnGate {
            turn: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// Block until it is `pid`'s turn.
    pub fn wait_for(&self, pid: usize) {
        let mut g = self.turn.lock().unwrap();
        while *g != pid {
            g = self.cv.wait(g).unwrap();
        }
    }

    /// Pass the turn to `pid + 1`.
    pub fn advance(&self, pid: usize) {
        *self.turn.lock().unwrap() = pid + 1;
        self.cv.notify_all();
    }
}

impl Default for TurnGate {
    fn default() -> TurnGate {
        TurnGate::new()
    }
}

/// Per-pid crash-schedule assignment for one scheduled replay: the *primary*
/// victim carries the swept scripted plan (or none, for the crash-free
/// baseline), and any number of *co-victims* carry independent plans of their
/// own — so a single deterministic interleaving can crash two (or more) pids,
/// exercising recovery code racing against a peer's recovery.
#[derive(Clone, Debug)]
pub struct VictimPlans {
    victim: usize,
    victim_plan: Option<CrashPlan>,
    covictims: Vec<(usize, CrashPlan)>,
}

impl VictimPlans {
    /// The crash-free baseline: `victim` is recorded (its crash-point count
    /// defines the sweep range) but no schedule is installed anywhere.
    pub fn baseline(victim: usize) -> VictimPlans {
        VictimPlans {
            victim,
            victim_plan: None,
            covictims: Vec::new(),
        }
    }

    /// A single-victim replay with `plan` installed on `victim` — the shape
    /// every pre-multi-victim sweep used.
    pub fn scripted(victim: usize, plan: CrashPlan) -> VictimPlans {
        VictimPlans {
            victim,
            victim_plan: Some(plan),
            covictims: Vec::new(),
        }
    }

    /// Compatibility constructor mirroring the old `(victim, Option<&CrashPlan>)`
    /// pair: `None` ⇒ baseline.
    pub fn single(victim: usize, plan: Option<&CrashPlan>) -> VictimPlans {
        match plan {
            Some(p) => VictimPlans::scripted(victim, p.clone()),
            None => VictimPlans::baseline(victim),
        }
    }

    /// Add a co-victim with its own independent plan. Panics if `pid` is the
    /// primary victim or already a co-victim (one schedule per pid).
    pub fn with_covictim(mut self, pid: usize, plan: CrashPlan) -> VictimPlans {
        assert_ne!(pid, self.victim, "co-victim must differ from the victim");
        assert!(
            self.covictims.iter().all(|(p, _)| *p != pid),
            "pid {pid} already has a plan"
        );
        self.covictims.push((pid, plan));
        self
    }

    /// The primary victim pid.
    pub fn victim(&self) -> usize {
        self.victim
    }

    /// The plan assigned to `pid`, if any.
    pub fn plan_for(&self, pid: usize) -> Option<&CrashPlan> {
        if pid == self.victim {
            return self.victim_plan.as_ref();
        }
        self.covictims
            .iter()
            .find(|(p, _)| *p == pid)
            .map(|(_, plan)| plan)
    }

    /// The co-victim pids (empty for single-victim replays).
    pub fn covictim_pids(&self) -> impl Iterator<Item = usize> + '_ {
        self.covictims.iter().map(|(p, _)| *p)
    }

    /// Largest pid with any role (for range asserts in the drivers).
    pub fn max_pid(&self) -> usize {
        self.covictim_pids().fold(self.victim, usize::max)
    }
}

/// The scheduled-window protocol every concurrent replay worker follows:
/// register with the deterministic scheduler, install the crash schedule this
/// pid is assigned (victim or co-victim), reset the stats window, run the
/// operations with global timestamps taken from [`PThread::sched_step`], then
/// capture the window's [`Stats`] and detach from the scheduler.
///
/// `start` is recorded as `sched_step() + 1`: a sound lower bound on the
/// operation's first instruction that also keeps consecutive operations of
/// one pid strictly ordered (`end < start`), so the linearization checker
/// preserves program order. `end` is the global step of the operation's last
/// instruction — an upper bound on its linearization point — or [`u64::MAX`]
/// for interrupted operations, whose effect may surface arbitrarily late.
pub fn run_scheduled_window<O: Copy>(
    t: &PThread<'_>,
    sched: &Arc<ThreadScheduler>,
    pid: usize,
    plans: &VictimPlans,
    ops: &[O],
    mut run_op: impl FnMut(O) -> OpOutcome,
) -> (Vec<TimedOp<O>>, Stats) {
    t.set_thread_scheduler(Arc::clone(sched));
    let _guard = sched.finish_guard(pid);
    if let Some(plan) = plans.plan_for(pid) {
        if plan.remaining() > 0 {
            t.set_crash_schedule(plan.clone());
        }
    }
    let _ = t.take_stats();
    let mut history = Vec::with_capacity(ops.len());
    for &op in ops {
        let start = t.sched_step() + 1;
        let outcome = run_op(op);
        let end = match outcome {
            OpOutcome::Completed(_) => t.sched_step(),
            OpOutcome::Interrupted => u64::MAX,
        };
        history.push(TimedOp {
            op,
            outcome,
            start,
            end,
        });
    }
    let window = t.stats();
    t.disarm_crashes();
    t.clear_thread_scheduler();
    (history, window)
}

/// Everything one *concurrent* replay produced: the timed per-operation
/// history across all processes, the final drain, the scheduler's trace
/// digest, and the victim/aggregate crash bookkeeping.
#[derive(Clone, Debug, PartialEq)]
pub struct ConcReplayRecord<O> {
    /// Every process's operations with outcomes and global timestamps
    /// (flattened; the checker orders by timestamps, not position).
    pub history: Vec<TimedOp<O>>,
    /// The final bounded drain of the container.
    pub drained: Vec<u64>,
    /// The drain exceeded the replay's maximum possible survivors (corrupted,
    /// almost certainly cyclic, chain).
    pub drain_overflow: bool,
    /// The scheduler's trace fingerprint
    /// ([`pmem::ThreadScheduler::fingerprint`]): equal seeds must reproduce
    /// it bit-for-bit, distinct seeds should perturb it.
    pub fingerprint: u64,
    /// Crash points the victim pid passed inside the scheduled window
    /// (defines the sweep range for its seed).
    pub victim_crash_points: u64,
    /// Simulated crashes the victim experienced (0 in a replay with a plan ⇒
    /// the schedule never fired).
    pub victim_crashes: u64,
    /// Crashes that hit the co-victim pids (0 in single-victim replays; in
    /// multi-victim replays the aggregate across the sweep must be nonzero or
    /// the co-victim dimension verified nothing).
    pub covictim_crashes: u64,
    /// The victim's recovery actions (frame recoveries + entry retries, or
    /// LogQueue recovery passes).
    pub victim_recovery_actions: u64,
    /// Crashes across *all* processes (kills included).
    pub crashes: u64,
    /// Recoveries across all processes.
    pub recoveries: u64,
    /// Entry-boundary retries across all processes.
    pub entry_retries: u64,
    /// Crashes that landed inside recovery itself, across all processes.
    pub recovery_crashes: u64,
    /// Operations routed to the adaptive fast entry point, across all
    /// processes (capsule variants; zero elsewhere).
    pub fast_ops: u64,
    /// Fast→slow demotions across all processes — nonzero exactly when the
    /// interleaving produced enough CAS contention to trip the streak, which
    /// is the coverage proof for the demotion-boundary crash site.
    pub demotions: u64,
    /// Flush-order violations the armed auditor flagged (0 when the variant
    /// runs with the auditor disarmed — see the drivers).
    pub audit_flags: u64,
    /// The auditor's reports for those flags.
    pub audit_reports: Vec<String>,
    /// Happens-before violations the armed [`pmem::HbAnalyzer`] flagged.
    /// Unlike the auditor, the analyzer stays armed in scheduled replays: its
    /// ordering model is schedule-aware (baton handovers draw no edges).
    pub hb_flags: u64,
    /// The analyzer's reports for those flags.
    pub hb_reports: Vec<String>,
}

/// Aggregate result of an interleaved sweep: one (variant, workload,
/// schedule-flavour) combination enumerated over (interleaving seed × crash
/// point).
#[derive(Clone, Debug)]
pub struct ConcReport<V> {
    /// The swept variant.
    pub variant: V,
    /// Workload name ("conc-pair" / "conc-multi").
    pub workload: &'static str,
    /// Number of scheduled processes.
    pub threads: usize,
    /// The interleaving seeds enumerated.
    pub seeds: Vec<u64>,
    /// Nested crash-schedule gaps (as in [`Report::nested`]).
    pub nested: Vec<u64>,
    /// Whether crashes were full-system power failures.
    pub system: bool,
    /// The co-victim gap of a multi-victim sweep (`None` = single victim).
    pub covictim_gap: Option<u64>,
    /// Distinct scheduler fingerprints among the crash-free baselines — the
    /// number of genuinely different interleavings the seed set produced.
    pub distinct_interleavings: u64,
    /// Total victim crash points across all seeds (all were swept).
    pub crash_points: u64,
    /// Replays executed (crash points + one crash-free baseline per seed).
    pub replays: u64,
    /// Total simulated crashes injected across all replays and processes.
    pub crashes_injected: u64,
    /// Crashes that hit co-victim pids (nonzero only for multi-victim sweeps).
    pub covictim_crashes: u64,
    /// Total recoveries observed.
    pub recoveries: u64,
    /// Total entry-boundary retries.
    pub entry_retries: u64,
    /// Crashes that interrupted recovery itself.
    pub recovery_crashes: u64,
    /// Operations routed to the adaptive fast entry point, across all replays
    /// and processes.
    pub fast_ops: u64,
    /// Fast→slow demotions across all replays and processes (the coverage
    /// proof that the sweep crashed the demotion boundary, not just the fast
    /// and slow steady states).
    pub demotions: u64,
    /// Flush-order auditor flags (also folded into `violations`).
    pub audit_flags: u64,
    /// Happens-before analyzer flags (also folded into `violations`).
    pub hb_flags: u64,
    /// Oracle violations. Must be empty.
    pub violations: Vec<String>,
}

impl<V> ConcReport<V> {
    /// Whether every replay satisfied the oracle.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The shared interleaved-sweep engine: for every seed, run a crash-free
/// scheduled baseline to learn the victim's crash-point count, then fan out
/// one replay per (seed, crash point `k`) with the scripted schedule
/// `[k, nested…]` installed on the victim pid (`seed % threads`, so the
/// victim rotates across the seed set). Every replay is checked with
/// [`check_linearizable`] against `initial()`; `strict` (detectable variants)
/// additionally requires every operation to complete — concurrent returns may
/// legitimately differ across interleavings, so exact baseline equality is
/// *not* required — and at least one victim recovery action per injected
/// crash.
///
/// With `covictim_gap = Some(g)`, every scripted replay additionally arms the
/// pid after the victim (`(victim + 1) % threads`) with the independent
/// single-crash plan [`CrashPlan::once`]`(g)` — two pids crash inside one
/// deterministic interleaving, so one pid's recovery races the other's. The
/// sweep fails if the co-victim schedule never fires across the whole sweep.
///
/// `replay(seed, plans)` runs one scheduled replay (a baseline when
/// `plans.plan_for` is empty everywhere); everything else mirrors
/// [`run_sweep`].
#[allow(clippy::too_many_arguments)] // one assembly site, two thin callers
pub fn run_conc_sweep<V: Copy, M: SeqModel>(
    variant: V,
    trace_tag: &str,
    workload_name: &'static str,
    threads: usize,
    seeds: &[u64],
    nested: &[u64],
    covictim_gap: Option<u64>,
    system: bool,
    strict: bool,
    workers_override: Option<usize>,
    initial: impl Fn() -> M,
    replay: impl Fn(u64, &VictimPlans) -> ConcReplayRecord<M::Op> + Sync,
) -> ConcReport<V>
where
    M::Op: Send,
{
    assert!(
        covictim_gap.is_none() || threads >= 2,
        "multi-victim sweeps need at least two scheduled pids"
    );
    let mut report = ConcReport {
        variant,
        workload: workload_name,
        threads,
        seeds: seeds.to_vec(),
        nested: nested.to_vec(),
        system,
        covictim_gap,
        distinct_interleavings: 0,
        crash_points: 0,
        replays: 0,
        crashes_injected: 0,
        covictim_crashes: 0,
        recoveries: 0,
        entry_retries: 0,
        recovery_crashes: 0,
        fast_ops: 0,
        demotions: 0,
        audit_flags: 0,
        hb_flags: 0,
        violations: Vec::new(),
    };
    let mut fingerprints = BTreeSet::new();
    for &seed in seeds {
        let victim = (seed as usize) % threads;
        let baseline = replay(seed, &VictimPlans::baseline(victim));
        assert_eq!(baseline.crashes, 0, "crash-free baseline must not crash");
        report.replays += 1;
        report.fast_ops += baseline.fast_ops;
        report.demotions += baseline.demotions;
        report.audit_flags += baseline.audit_flags;
        report.hb_flags += baseline.hb_flags;
        fingerprints.insert(baseline.fingerprint);
        let base_tag = format!("seed={seed} victim={victim}");
        if baseline.drain_overflow {
            report.violations.push(format!(
                "{base_tag} baseline: drain overflow — corrupted (cyclic?) chain"
            ));
        } else if let Err(e) =
            check_linearizable(initial(), &baseline.history, &baseline.drained)
        {
            report.violations.push(format!("{base_tag} baseline: {e}"));
        }
        if baseline.audit_flags > 0 {
            report.violations.push(format!(
                "{base_tag} baseline: {} flush-audit flag(s): {:?}",
                baseline.audit_flags, baseline.audit_reports
            ));
        }
        if baseline.hb_flags > 0 {
            report.violations.push(format!(
                "{base_tag} baseline: {} happens-before flag(s): {:?}",
                baseline.hb_flags, baseline.hb_reports
            ));
        }
        let covictim = (victim + 1) % threads;
        // The victim's reachable crash-point range must be calibrated under
        // the schedule the fan-out will actually run: with a co-victim armed,
        // its early crash perturbs the victim's execution (shorter window,
        // different retry loops), so the crash-free baseline's count would
        // over- or under-shoot. Run one calibration replay arming only the
        // co-victim and sweep the victim over *that* range.
        let n = match covictim_gap {
            None => baseline.victim_crash_points,
            Some(gap) => {
                let plans = VictimPlans::baseline(victim)
                    .with_covictim(covictim, CrashPlan::once(gap));
                let cal = replay(seed, &plans);
                report.replays += 1;
                report.crashes_injected += cal.crashes;
                report.covictim_crashes += cal.covictim_crashes;
                report.recoveries += cal.recoveries;
                report.entry_retries += cal.entry_retries;
                report.recovery_crashes += cal.recovery_crashes;
                report.fast_ops += cal.fast_ops;
                report.demotions += cal.demotions;
                report.audit_flags += cal.audit_flags;
                report.hb_flags += cal.hb_flags;
                let cal_tag = format!("{base_tag} calibration covictim={covictim} gap={gap}");
                if cal.audit_flags > 0 {
                    report.violations.push(format!(
                        "{cal_tag}: {} flush-audit flag(s): {:?}",
                        cal.audit_flags, cal.audit_reports
                    ));
                }
                if cal.hb_flags > 0 {
                    report.violations.push(format!(
                        "{cal_tag}: {} happens-before flag(s): {:?}",
                        cal.hb_flags, cal.hb_reports
                    ));
                }
                if cal.drain_overflow {
                    report.violations.push(format!(
                        "{cal_tag}: drain overflow — corrupted (cyclic?) chain"
                    ));
                } else if let Err(e) = check_linearizable(initial(), &cal.history, &cal.drained) {
                    report.violations.push(format!("{cal_tag}: {e}"));
                }
                cal.victim_crash_points
            }
        };
        if n == 0 {
            report.violations.push(format!(
                "{base_tag}: the victim passed no crash points — nothing to sweep"
            ));
            continue;
        }
        report.crash_points += n;
        let workers = workers_override
            .map(|w| w.max(1))
            .unwrap_or_else(|| sweep_workers(n));
        let plans_for = |k: u64| {
            let mut plans = VictimPlans::scripted(victim, CrashPlan::nested(k, nested));
            if let Some(gap) = covictim_gap {
                plans = plans.with_covictim(covictim, CrashPlan::once(gap));
            }
            plans
        };
        let run_one = |k: u64| -> ConcReplayRecord<M::Op> {
            let plans = plans_for(k);
            if std::env::var_os("DF_DFCK_TRACE").is_some() {
                eprintln!(
                    "{trace_tag}: seed={seed} victim={victim} k={k} gaps={:?} covictim_gap={covictim_gap:?} system={system}",
                    CrashPlan::nested(k, nested).script()
                );
            }
            replay(seed, &plans)
        };
        for (k, r) in fan_out(n, workers, run_one) {
            let mut tag = format!(
                "seed={seed} victim={victim} k={k} gaps={:?}",
                CrashPlan::nested(k, nested).script()
            );
            if let Some(gap) = covictim_gap {
                tag.push_str(&format!(" covictim={covictim} covictim_gap={gap}"));
            }
            report.replays += 1;
            report.crashes_injected += r.crashes;
            report.covictim_crashes += r.covictim_crashes;
            report.recoveries += r.recoveries;
            report.entry_retries += r.entry_retries;
            report.recovery_crashes += r.recovery_crashes;
            report.fast_ops += r.fast_ops;
            report.demotions += r.demotions;
            report.audit_flags += r.audit_flags;
            report.hb_flags += r.hb_flags;
            if r.audit_flags > 0 {
                report.violations.push(format!(
                    "{tag}: {} flush-audit flag(s): {:?}",
                    r.audit_flags, r.audit_reports
                ));
            }
            if r.hb_flags > 0 {
                report.violations.push(format!(
                    "{tag}: {} happens-before flag(s): {:?}",
                    r.hb_flags, r.hb_reports
                ));
            }
            if r.victim_crashes == 0 {
                report.violations.push(format!(
                    "{tag}: the schedule never fired on the victim"
                ));
                continue;
            }
            if r.drain_overflow {
                report.violations.push(format!(
                    "{tag}: drain returned {} elements — corrupted (cyclic?) chain",
                    r.drained.len()
                ));
                continue;
            }
            if strict {
                if let Some(interrupted) = r
                    .history
                    .iter()
                    .find(|t| t.outcome == OpOutcome::Interrupted)
                {
                    report.violations.push(format!(
                        "{tag}: a detectable variant left an operation interrupted: \
                         {interrupted:?}"
                    ));
                    continue;
                }
            }
            if let Err(e) = check_linearizable(initial(), &r.history, &r.drained) {
                report.violations.push(format!("{tag}: {e}"));
                continue;
            }
            if strict && r.victim_recovery_actions == 0 {
                report.violations.push(format!(
                    "{tag}: a crash was injected but no recovery action ran on the victim"
                ));
            }
        }
    }
    report.distinct_interleavings = fingerprints.len() as u64;
    // Colliding fingerprints silently collapse the seed dimension's coverage:
    // two seeds that schedule identically sweep the same crash points twice
    // instead of exploring a new interleaving. Report it as a violation so
    // the sweep (and CI) fails loudly rather than over-claiming coverage.
    let unique_seeds = seeds.iter().collect::<BTreeSet<_>>().len();
    if (report.distinct_interleavings as usize) < unique_seeds {
        report.violations.push(format!(
            "seed set collapsed: {unique_seeds} distinct seeds produced only {} distinct \
             interleavings",
            report.distinct_interleavings
        ));
    }
    // A multi-victim sweep whose co-victim schedule never fired anywhere
    // silently degenerates to the single-victim sweep — fail loudly instead
    // of over-claiming coverage.
    if covictim_gap.is_some() && report.crashes_injected > 0 && report.covictim_crashes == 0 {
        report.violations.push(
            "multi-victim sweep: the co-victim schedule never fired in any replay".to_string(),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal FIFO model for checker-level tests (the real sweepers bring
    /// their own).
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct Fifo(std::collections::VecDeque<u64>);

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    enum QOp {
        Enq(u64),
        Deq,
    }

    impl SeqModel for Fifo {
        type Op = QOp;
        fn apply(&mut self, op: QOp) -> Option<u64> {
            match op {
                QOp::Enq(v) => {
                    self.0.push_back(v);
                    None
                }
                QOp::Deq => self.0.pop_front(),
            }
        }
        fn final_drain(&self) -> Vec<u64> {
            self.0.iter().copied().collect()
        }
    }

    fn fifo(values: &[u64]) -> Fifo {
        Fifo(values.iter().copied().collect())
    }

    fn op(o: QOp, ret: Option<u64>, start: u64, end: u64) -> TimedOp<QOp> {
        TimedOp {
            op: o,
            outcome: OpOutcome::Completed(ret),
            start,
            end,
        }
    }

    #[test]
    fn overlapping_ops_may_linearize_in_either_order() {
        // Two overlapping enqueues; the drain fixes which came first. Both
        // drains must be accepted, since the intervals overlap.
        let history = [
            op(QOp::Enq(1), None, 1, 10),
            op(QOp::Enq(2), None, 2, 9),
        ];
        check_linearizable(fifo(&[]), &history, &[1, 2]).unwrap();
        check_linearizable(fifo(&[]), &history, &[2, 1]).unwrap();
        assert!(check_linearizable(fifo(&[]), &history, &[1]).is_err());
    }

    #[test]
    fn real_time_order_is_enforced() {
        // Enq(1) completed strictly before Enq(2) was invoked: only [1, 2]
        // linearizes.
        let history = [
            op(QOp::Enq(1), None, 1, 4),
            op(QOp::Enq(2), None, 5, 9),
        ];
        check_linearizable(fifo(&[]), &history, &[1, 2]).unwrap();
        assert!(check_linearizable(fifo(&[]), &history, &[2, 1]).is_err());
    }

    #[test]
    fn completed_returns_must_match_the_model() {
        // Dequeue from [7]: must return Some(7), leave [].
        let history = [op(QOp::Deq, Some(7), 1, 2)];
        check_linearizable(fifo(&[7]), &history, &[]).unwrap();
        let wrong = [op(QOp::Deq, Some(8), 1, 2)];
        assert!(check_linearizable(fifo(&[7]), &wrong, &[]).is_err());
    }

    #[test]
    fn interrupted_ops_fork_applied_and_not_applied() {
        let history = [TimedOp {
            op: QOp::Enq(42),
            outcome: OpOutcome::Interrupted,
            start: 1,
            end: u64::MAX,
        }];
        check_linearizable(fifo(&[7]), &history, &[7, 42]).unwrap();
        check_linearizable(fifo(&[7]), &history, &[7]).unwrap();
        assert!(check_linearizable(fifo(&[7]), &history, &[42]).is_err());
    }

    #[test]
    fn interrupted_op_can_take_effect_after_later_completed_ops() {
        // An interrupted enqueue (end = MAX) may be completed much later by a
        // helping peer: accept it linearizing after an op that started later.
        let history = [
            TimedOp {
                op: QOp::Enq(1),
                outcome: OpOutcome::Interrupted,
                start: 1,
                end: u64::MAX,
            },
            op(QOp::Enq(2), None, 10, 12),
        ];
        check_linearizable(fifo(&[]), &history, &[2, 1]).unwrap();
    }

    #[test]
    fn sequential_wrapper_forces_program_order() {
        // In the totally ordered wrapper the same two enqueues cannot be
        // reordered: [2, 1] must be rejected.
        let ops = [QOp::Enq(1), QOp::Enq(2)];
        let outcomes = [OpOutcome::Completed(None); 2];
        check_sequential(fifo(&[]), &ops, &outcomes, &[1, 2]).unwrap();
        assert!(check_sequential(fifo(&[]), &ops, &outcomes, &[2, 1]).is_err());
    }

    #[test]
    fn sequential_interrupted_ops_fork_in_place() {
        // Interrupted enqueue then completed dequeue: the dequeue's return
        // decides the fork retroactively, and inconsistent combinations fail.
        let ops = [QOp::Enq(5), QOp::Deq];
        let outcomes = [OpOutcome::Interrupted, OpOutcome::Completed(Some(5))];
        check_sequential(fifo(&[]), &ops, &outcomes, &[]).unwrap();
        let not_applied = [OpOutcome::Interrupted, OpOutcome::Completed(None)];
        check_sequential(fifo(&[]), &ops, &not_applied, &[]).unwrap();
        let impossible = [OpOutcome::Interrupted, OpOutcome::Completed(Some(6))];
        assert!(check_sequential(fifo(&[]), &ops, &impossible, &[]).is_err());
    }

    #[test]
    fn histories_longer_than_64_ops_are_supported() {
        // The DoneSet is runtime-sized; a 70-op totally ordered history must
        // check fine (DF_DFCK_OPS is user-controlled).
        let ops: Vec<QOp> = (0..70).map(QOp::Enq).collect();
        let outcomes = vec![OpOutcome::Completed(None); 70];
        let expected: Vec<u64> = (0..70).collect();
        check_sequential(fifo(&[]), &ops, &outcomes, &expected).unwrap();
    }

    #[test]
    fn fan_out_merges_in_k_order_for_any_worker_count() {
        for workers in [1, 3, 8] {
            let out = fan_out(10, workers, |k| k * k);
            let ks: Vec<u64> = out.iter().map(|&(k, _)| k).collect();
            assert_eq!(ks, (0..10).collect::<Vec<_>>());
            assert!(out.iter().all(|&(k, v)| v == k * k));
        }
    }
}
