//! Benchmark harness: the workload generator and queue-variant registry used by the
//! figure-reproduction binaries (`fig5`, `fig6`, `fig7`, `flush_table`,
//! `recovery_table`) and the Criterion benches.
//!
//! The workload reproduces §10: every thread runs enqueue–dequeue *pairs* on a queue
//! pre-filled with `prefill` nodes, and we report throughput in million operations
//! per second (an enqueue and a dequeue each count as one operation, as in the
//! paper). Thread counts sweep 1–8 by default. Run lengths are controlled by
//! environment variables so a laptop run finishes quickly while a paper-scale run is
//! one variable away:
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `DF_PAIRS` | enqueue–dequeue pairs per thread per data point | 50 000 |
//! | `DF_PREFILL` | nodes pre-inserted before timing | 10 000 (the paper used 1M) |
//! | `DF_MAX_THREADS` | largest thread count in the sweep | min(8, #cores) |

#![warn(missing_docs)]

pub mod dfck;
pub mod dfck_struct;
pub mod json;
pub mod structs_bench;
pub mod sweep;

use std::sync::Barrier;
use std::time::Instant;

use capsules::BoundaryStyle;
use pmem::{MemConfig, Mode, PMem, Stats, ThreadOptions};
use queues::{Durability, GeneralQueue, LogQueue, MsQueue, NormalizedQueue, QueueHandle};
use romulus::RomulusQueue;

/// Every queue configuration that appears in the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// The original Michael–Scott queue, no persistence (Figure 7 baseline).
    Msq,
    /// MSQ + the Izraelevitz construction (Figure 5 upper bound).
    IzraelevitzMsq,
    /// General (CAS-Read) transformation + Izraelevitz construction (Figure 5).
    GeneralIzraelevitz,
    /// Normalized transformation + Izraelevitz construction (Figure 5).
    NormalizedIzraelevitz,
    /// General transformation with manual flushes (Figure 6).
    GeneralManual,
    /// Hand-optimised General with manual flushes (Figure 6).
    GeneralOptManual,
    /// Normalized transformation with manual flushes (Figure 6).
    NormalizedManual,
    /// Hand-optimised Normalized with manual flushes (Figure 6).
    NormalizedOptManual,
    /// Friedman et al.'s durable, detectable LogQueue (Figure 6).
    LogQueue,
    /// The Romulus-style durable-TM queue (Figure 6).
    Romulus,
}

impl Variant {
    /// Short label used in tables and CSV output.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Msq => "MSQ",
            Variant::IzraelevitzMsq => "Izraelevitz-MSQ",
            Variant::GeneralIzraelevitz => "General (Izraelevitz)",
            Variant::NormalizedIzraelevitz => "Normalized (Izraelevitz)",
            Variant::GeneralManual => "General",
            Variant::GeneralOptManual => "General-Opt",
            Variant::NormalizedManual => "Normalized",
            Variant::NormalizedOptManual => "Normalized-Opt",
            Variant::LogQueue => "LogQueue",
            Variant::Romulus => "Romulus",
        }
    }

    /// Every variant, for exhaustive sweeps and smoke tests. Keep in sync with
    /// the enum: [`Variant::label`]'s exhaustive `match` breaks the build when a
    /// variant is added, and `variant_all_is_exhaustive` fails if it is not also
    /// added here.
    pub fn all() -> Vec<Variant> {
        vec![
            Variant::Msq,
            Variant::IzraelevitzMsq,
            Variant::GeneralIzraelevitz,
            Variant::NormalizedIzraelevitz,
            Variant::GeneralManual,
            Variant::GeneralOptManual,
            Variant::NormalizedManual,
            Variant::NormalizedOptManual,
            Variant::LogQueue,
            Variant::Romulus,
        ]
    }

    /// The series of Figure 5 (queues under the Izraelevitz construction).
    pub fn figure5() -> Vec<Variant> {
        vec![
            Variant::IzraelevitzMsq,
            Variant::GeneralIzraelevitz,
            Variant::NormalizedIzraelevitz,
        ]
    }

    /// The series of Figure 6 (manual flushes vs prior work).
    pub fn figure6() -> Vec<Variant> {
        vec![
            Variant::GeneralManual,
            Variant::GeneralOptManual,
            Variant::NormalizedManual,
            Variant::NormalizedOptManual,
            Variant::LogQueue,
            Variant::Romulus,
        ]
    }

    /// The series of Figure 7 (persistent queues vs the original MSQ).
    pub fn figure7() -> Vec<Variant> {
        vec![
            Variant::Msq,
            Variant::IzraelevitzMsq,
            Variant::GeneralManual,
            Variant::NormalizedOptManual,
            Variant::LogQueue,
            Variant::Romulus,
        ]
    }

    /// Whether the variant's thread handles apply the Izraelevitz construction.
    fn izraelevitz(&self) -> bool {
        matches!(
            self,
            Variant::IzraelevitzMsq | Variant::GeneralIzraelevitz | Variant::NormalizedIzraelevitz
        )
    }
}

/// Workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// Enqueue–dequeue pairs executed by each thread.
    pub pairs_per_thread: u64,
    /// Nodes inserted before timing starts.
    pub prefill: u64,
    /// Whether the capsule variants use the contention-adaptive fast path
    /// (defaults to the `DF_ADAPTIVE` knob; see [`capsules::adaptive_enabled`]).
    pub adaptive: bool,
}

/// Default enqueue–dequeue pairs per thread when `DF_PAIRS` is unset. Tiny under
/// `cfg(test)` so the harness's own tests run in smoke mode within tier-1.
#[cfg(not(test))]
pub const DEFAULT_PAIRS: u64 = 50_000;
/// Smoke-mode default (see the non-test value).
#[cfg(test)]
pub const DEFAULT_PAIRS: u64 = 200;

/// Default prefill when `DF_PREFILL` is unset (the paper used 1M). Tiny under
/// `cfg(test)` so the harness's own tests run in smoke mode within tier-1.
#[cfg(not(test))]
pub const DEFAULT_PREFILL: u64 = 10_000;
/// Smoke-mode default (see the non-test value).
#[cfg(test)]
pub const DEFAULT_PREFILL: u64 = 50;

impl WorkloadConfig {
    /// Read the run-length knobs from the environment (see crate docs).
    pub fn from_env(threads: usize) -> WorkloadConfig {
        WorkloadConfig {
            threads,
            pairs_per_thread: env_u64("DF_PAIRS", DEFAULT_PAIRS),
            prefill: env_u64("DF_PREFILL", DEFAULT_PREFILL),
            adaptive: capsules::adaptive_enabled(),
        }
    }
}

/// Read an integer environment variable with a default.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Largest thread count a sweep should use.
pub fn max_threads() -> usize {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(8);
    env_u64("DF_MAX_THREADS", cores.min(8) as u64) as usize
}

/// One measured data point.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// The queue configuration measured.
    pub variant: Variant,
    /// Worker-thread count.
    pub threads: usize,
    /// Throughput in million operations per second (enqueues + dequeues).
    pub mops: f64,
    /// Cache-line flushes per operation.
    pub flushes_per_op: f64,
    /// Fences per operation.
    pub fences_per_op: f64,
    /// Dedup-able flushes per operation: flushes of a line already flushed in
    /// the same fence window (counted whether or not coalescing elides them —
    /// `pmem`'s `Stats::duplicate_flushes`).
    pub duplicate_flushes_per_op: f64,
}

enum Built {
    Msq(MsQueue),
    General(GeneralQueue),
    Normalized(NormalizedQueue),
    Log(LogQueue),
    Romulus(RomulusQueue),
}

fn build(variant: Variant, mem: &PMem, cfg: &WorkloadConfig) -> Built {
    let t = mem.thread(0);
    let threads = cfg.threads;
    match variant {
        Variant::Msq | Variant::IzraelevitzMsq => Built::Msq(MsQueue::new(&t)),
        Variant::GeneralIzraelevitz => Built::General(
            GeneralQueue::new(&t, threads, Durability::None, BoundaryStyle::General)
                .with_adaptive(cfg.adaptive),
        ),
        Variant::GeneralManual => Built::General(
            GeneralQueue::new(&t, threads, Durability::Manual, BoundaryStyle::General)
                .with_adaptive(cfg.adaptive),
        ),
        Variant::GeneralOptManual => Built::General(
            GeneralQueue::new(&t, threads, Durability::Manual, BoundaryStyle::Compact)
                .with_adaptive(cfg.adaptive),
        ),
        Variant::NormalizedIzraelevitz => Built::Normalized(
            NormalizedQueue::new(&t, threads, Durability::None, false).with_adaptive(cfg.adaptive),
        ),
        Variant::NormalizedManual => Built::Normalized(
            NormalizedQueue::new(&t, threads, Durability::Manual, false)
                .with_adaptive(cfg.adaptive),
        ),
        Variant::NormalizedOptManual => Built::Normalized(
            NormalizedQueue::new(&t, threads, Durability::Manual, true)
                .with_adaptive(cfg.adaptive),
        ),
        Variant::LogQueue => Built::Log(LogQueue::new(&t, threads)),
        Variant::Romulus => {
            let capacity = cfg.prefill + cfg.pairs_per_thread * threads as u64 + 64;
            Built::Romulus(RomulusQueue::new(&t, capacity))
        }
    }
}

/// Run `pairs` enqueue–dequeue pairs through a handle, returning nothing; the
/// caller measures time and memory statistics around it.
fn run_pairs<H: QueueHandle>(handle: &mut H, pairs: u64, base: u64) {
    for i in 0..pairs {
        handle.enqueue(base + i);
        let _ = handle.dequeue();
    }
}

/// Execute the paper's enqueue–dequeue-pairs workload for one variant and thread
/// count, returning the measured throughput and persistence counts.
pub fn run_workload(variant: Variant, cfg: &WorkloadConfig) -> Measurement {
    let mem = PMem::new(MemConfig::new(cfg.threads.max(1)).mode(Mode::SharedCache));
    let built = build(variant, &mem, cfg);
    let opts = ThreadOptions {
        izraelevitz: variant.izraelevitz(),
    };

    // Pre-fill from thread 0 (not timed, not counted).
    {
        let t = mem.thread_with(0, opts);
        match &built {
            Built::Msq(q) => run_prefill(&mut q.handle(&t), cfg.prefill),
            Built::General(q) => {
                let mut h = q.handle(&t);
                h.set_entry_boundary(false);
                run_prefill(&mut h, cfg.prefill)
            }
            Built::Normalized(q) => {
                let mut h = q.handle(&t);
                h.set_entry_boundary(false);
                run_prefill(&mut h, cfg.prefill)
            }
            Built::Log(q) => run_prefill(&mut q.handle(&t), cfg.prefill),
            Built::Romulus(q) => {
                let mut h = q.handle(&t);
                for i in 0..cfg.prefill {
                    h.enqueue(i);
                }
            }
        }
    }
    mem.persist_everything();

    let barrier = Barrier::new(cfg.threads);
    let results: Vec<(f64, Stats, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|pid| {
                let mem = &mem;
                let built = &built;
                let barrier = &barrier;
                s.spawn(move || {
                    let t = mem.thread_with(pid, opts);
                    let pairs = cfg.pairs_per_thread;
                    let base = (pid as u64) << 48;
                    // Build the handle before the barrier so set-up cost is excluded.
                    match built {
                        Built::Msq(q) => {
                            let mut h = q.handle(&t);
                            barrier.wait();
                            let start = Instant::now();
                            run_pairs(&mut h, pairs, base);
                            (start.elapsed().as_secs_f64(), t.stats(), pairs * 2)
                        }
                        Built::General(q) => {
                            let mut h = q.handle(&t);
                            h.set_entry_boundary(false);
                            h.runtime_mut().set_final_boundary(false);
                            barrier.wait();
                            let start = Instant::now();
                            run_pairs(&mut h, pairs, base);
                            (start.elapsed().as_secs_f64(), t.stats(), pairs * 2)
                        }
                        Built::Normalized(q) => {
                            let mut h = q.handle(&t);
                            h.set_entry_boundary(false);
                            h.runtime_mut().set_final_boundary(false);
                            barrier.wait();
                            let start = Instant::now();
                            run_pairs(&mut h, pairs, base);
                            (start.elapsed().as_secs_f64(), t.stats(), pairs * 2)
                        }
                        Built::Log(q) => {
                            let mut h = q.handle(&t);
                            barrier.wait();
                            let start = Instant::now();
                            run_pairs(&mut h, pairs, base);
                            (start.elapsed().as_secs_f64(), t.stats(), pairs * 2)
                        }
                        Built::Romulus(q) => {
                            let mut h = q.handle(&t);
                            barrier.wait();
                            let start = Instant::now();
                            for i in 0..pairs {
                                h.enqueue(base + i);
                                let _ = h.dequeue();
                            }
                            (start.elapsed().as_secs_f64(), t.stats(), pairs * 2)
                        }
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let wall = results.iter().map(|(t, _, _)| *t).fold(0.0f64, f64::max);
    let total_ops: u64 = results.iter().map(|(_, _, ops)| ops).sum();
    let total_stats: Stats = results.iter().map(|(_, s, _)| *s).sum();
    Measurement {
        variant,
        threads: cfg.threads,
        mops: total_ops as f64 / wall / 1e6,
        flushes_per_op: total_stats.flushes_per_op(total_ops),
        fences_per_op: total_stats.fences_per_op(total_ops),
        duplicate_flushes_per_op: total_stats.duplicate_flushes_per_op(total_ops),
    }
}

fn run_prefill<H: QueueHandle>(handle: &mut H, prefill: u64) {
    for i in 0..prefill {
        handle.enqueue(i);
    }
}

/// Run a whole figure: the given variants over 1..=`max_threads` threads, printing a
/// CSV-ish table like the paper's plots (one row per (threads, variant)).
///
/// `name` is the machine-readable identifier (`"fig5"`, `"fig7"`, …): when the
/// `DF_JSON` environment variable is set, the sweep also writes
/// `BENCH_<name>.json` (schema in [`json`]; see README "Machine-readable
/// benchmark output") so the perf trajectory can be tracked across PRs.
pub fn run_figure(name: &str, title: &str, variants: &[Variant]) -> Vec<Measurement> {
    let max = max_threads();
    let wall = Instant::now();
    println!("# {title}");
    println!(
        "# pairs/thread = {}, prefill = {}, threads = 1..={max}",
        env_u64("DF_PAIRS", DEFAULT_PAIRS),
        env_u64("DF_PREFILL", DEFAULT_PREFILL)
    );
    println!("{:<10} {:<28} {:>10} {:>12} {:>12}", "threads", "variant", "Mops/s", "flushes/op", "fences/op");
    let mut all = Vec::new();
    for threads in 1..=max {
        let cfg = WorkloadConfig::from_env(threads);
        for &variant in variants {
            let m = run_workload(variant, &cfg);
            println!(
                "{:<10} {:<28} {:>10.3} {:>12.2} {:>12.2}",
                m.threads,
                m.variant.label(),
                m.mops,
                m.flushes_per_op,
                m.fences_per_op
            );
            all.push(m);
        }
    }
    let rows: Vec<json::JsonRow> = all.iter().map(json::JsonRow::from).collect();
    json::emit(
        name,
        &[
            ("pairs_per_thread", env_u64("DF_PAIRS", DEFAULT_PAIRS)),
            ("prefill", env_u64("DF_PREFILL", DEFAULT_PREFILL)),
            ("max_threads", max as u64),
        ],
        wall.elapsed().as_secs_f64(),
        &rows,
    );
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(threads: usize) -> WorkloadConfig {
        WorkloadConfig {
            threads,
            pairs_per_thread: 200,
            prefill: 50,
            adaptive: capsules::adaptive_enabled(),
        }
    }

    #[test]
    fn every_variant_runs_the_workload() {
        for variant in Variant::all() {
            let m = run_workload(variant, &tiny(2));
            assert!(m.mops > 0.0, "{variant:?} produced no throughput");
        }
    }

    #[test]
    fn variant_all_is_exhaustive() {
        let all = Variant::all();
        for figure in [Variant::figure5(), Variant::figure6(), Variant::figure7()] {
            for v in figure {
                assert!(all.contains(&v), "{v:?} missing from Variant::all()");
            }
        }
        let mut labels: Vec<_> = all.iter().map(|v| v.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), all.len(), "duplicate entries in Variant::all()");
    }

    #[test]
    fn persistent_variants_flush_and_msq_does_not() {
        let msq = run_workload(Variant::Msq, &tiny(1));
        assert_eq!(msq.flushes_per_op, 0.0);
        for variant in [
            Variant::IzraelevitzMsq,
            Variant::GeneralManual,
            Variant::NormalizedManual,
            Variant::LogQueue,
            Variant::Romulus,
        ] {
            let m = run_workload(variant, &tiny(1));
            assert!(m.flushes_per_op > 0.0, "{variant:?} should flush");
        }
    }

    #[test]
    fn from_env_smoke_sweep_covers_every_variant() {
        // Under cfg(test) the env-var defaults are tiny, so driving the same
        // config path the figure binaries use stays fast enough for tier-1.
        // (If DF_PAIRS/DF_PREFILL are set in the environment they win, exactly
        // as they do for the binaries.)
        let cfg = WorkloadConfig::from_env(1);
        assert_eq!(cfg.threads, 1);
        for variant in Variant::all() {
            let m = run_workload(variant, &cfg);
            assert!(m.mops > 0.0, "{variant:?} produced no throughput");
        }
    }

    #[test]
    fn figure_lists_are_as_in_the_paper() {
        assert_eq!(Variant::figure5().len(), 3);
        assert_eq!(Variant::figure6().len(), 6);
        assert!(Variant::figure7().contains(&Variant::Msq));
    }

    #[test]
    fn opt_variants_use_fewer_fences_than_their_bases() {
        // This asserts on the *simulators'* instruction profiles, so pin the
        // slow path: under the adaptive fast path the General and Normalized
        // constructions converge to the same single-CAS profile when
        // uncontended (their remaining difference is the boundary style).
        let mut cfg = tiny(1);
        cfg.adaptive = false;
        let general = run_workload(Variant::GeneralManual, &cfg);
        let general_opt = run_workload(Variant::GeneralOptManual, &cfg);
        assert!(general_opt.fences_per_op < general.fences_per_op);
        let normalized = run_workload(Variant::NormalizedManual, &cfg);
        let normalized_opt = run_workload(Variant::NormalizedOptManual, &cfg);
        assert!(normalized_opt.fences_per_op < normalized.fences_per_op);
        // And the normalized construction needs fewer fences than the general one,
        // which is the mechanism behind its higher throughput in Figures 5 and 6.
        assert!(normalized.fences_per_op < general.fences_per_op);
        // The adaptive fast path must only ever lower the fence count.
        let adaptive = run_workload(Variant::GeneralManual, &tiny(1));
        assert!(adaptive.fences_per_op <= general.fences_per_op);
    }
}
