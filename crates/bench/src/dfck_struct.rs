//! `dfck_struct` — the exhaustive crash-point sweeper for the non-queue
//! structure family (`structs`: Treiber stack, linked-list set).
//!
//! Same discipline as [`crate::dfck`]: run a seeded workload once crash-free to
//! learn the crash-point count from [`pmem::Stats::crash_points`], then replay
//! it once per point `k` with a scripted [`CrashPlan`] (optionally nested:
//! crash again inside the triggered recovery), under per-process *and*
//! full-system crash semantics, flush auditor armed. What changes per shape is
//! the **oracle**:
//!
//! * **stack (LIFO exactly-once)** — detectable variants must reproduce the
//!   crash-free history verbatim; the Izraelevitz stack runs under a forked
//!   LIFO model (each interrupted push/pop may or may not have applied);
//! * **set (membership exactly-once)** — every insert/remove/contains return
//!   must agree with a sequential `BTreeSet` model, and the final ascending
//!   snapshot must match a consistent fork.
//!
//! Drains are bounded by the replay's maximum possible survivors (prefill +
//! pushes/inserts), so a corrupted cyclic chain surfaces as a violation
//! carrying the offending schedule instead of a hung sweep.

use std::collections::BTreeSet;

use capsules::{BoundaryStyle, CapsuleMetrics};
use pmem::{catch_crash, CrashPlan, MemConfig, Mode, PMem, ThreadOptions};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use structs::{
    GeneralSet, GeneralStack, ListSet, NormalizedSet, NormalizedStack, StructHandle, StructOp,
    TreiberStack,
};

/// The structure variants the sweeper covers: each shape in the same matrix as
/// the queues — Izraelevitz flush-everything (durable, not detectable),
/// General capsules and the Normalized simulator (both detectable).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StructVariant {
    /// Treiber stack + Izraelevitz construction.
    StackIzraelevitz,
    /// Treiber stack through the CAS-Read (General) transformation.
    StackGeneral,
    /// Treiber stack through the Persistent Normalized Simulator.
    StackNormalized,
    /// Harris–Michael list set + Izraelevitz construction.
    SetIzraelevitz,
    /// List set through the CAS-Read (General) transformation.
    SetGeneral,
    /// List set through the Persistent Normalized Simulator.
    SetNormalized,
}

impl StructVariant {
    /// Short label for tables and JSON rows.
    pub fn label(&self) -> &'static str {
        match self {
            StructVariant::StackIzraelevitz => "Stack-Izraelevitz",
            StructVariant::StackGeneral => "Stack-General",
            StructVariant::StackNormalized => "Stack-Normalized",
            StructVariant::SetIzraelevitz => "Set-Izraelevitz",
            StructVariant::SetGeneral => "Set-General",
            StructVariant::SetNormalized => "Set-Normalized",
        }
    }

    /// Every swept variant.
    pub fn all() -> Vec<StructVariant> {
        vec![
            StructVariant::StackIzraelevitz,
            StructVariant::StackGeneral,
            StructVariant::StackNormalized,
            StructVariant::SetIzraelevitz,
            StructVariant::SetGeneral,
            StructVariant::SetNormalized,
        ]
    }

    /// Whether the strict exactly-once oracle applies.
    pub fn detectable(&self) -> bool {
        !matches!(
            self,
            StructVariant::StackIzraelevitz | StructVariant::SetIzraelevitz
        )
    }

    /// Whether this is a stack-shaped variant (LIFO oracle) rather than a set.
    pub fn is_stack(&self) -> bool {
        matches!(
            self,
            StructVariant::StackIzraelevitz
                | StructVariant::StackGeneral
                | StructVariant::StackNormalized
        )
    }
}

/// A deterministic workload over one shape: prefilled contents plus a fixed
/// operation sequence (all ops must match the shape — [`StructOp`]).
#[derive(Clone, Debug)]
pub struct StructWorkload {
    /// Name used in reports ("pair" / "multi").
    pub name: &'static str,
    /// `true` for stack-shaped workloads, `false` for set-shaped ones.
    pub stack: bool,
    /// Stack: values pushed bottom-up before the swept window. Set: keys
    /// inserted before the window (must be distinct).
    pub prefill: Vec<u64>,
    /// The operations executed inside the swept window.
    pub ops: Vec<StructOp>,
}

impl StructWorkload {
    /// The canonical stack pair: one push, one pop, on a lightly prefilled
    /// stack.
    pub fn stack_pair() -> StructWorkload {
        StructWorkload {
            name: "pair",
            stack: true,
            prefill: (0..4).map(|i| 10_000 + i).collect(),
            ops: vec![StructOp::Push(1), StructOp::Pop],
        }
    }

    /// The canonical set pair: one insert that lands mid-list, one remove of a
    /// prefilled key — both protocol paths (link CAS, mark + unlink) swept.
    pub fn set_pair() -> StructWorkload {
        StructWorkload {
            name: "pair",
            stack: false,
            prefill: vec![10, 20, 30],
            ops: vec![StructOp::Insert(15), StructOp::Remove(20)],
        }
    }

    /// Seeded multi-op stack workload (`seeded_full` with default prefill).
    pub fn stack_seeded(seed: u64, nops: usize) -> StructWorkload {
        StructWorkload::stack_seeded_full(seed, nops, 3, 0)
    }

    /// Fully parameterised seeded stack workload: `nops` operations, each
    /// independently a push (fresh value) or a pop, offset by `value_base`.
    pub fn stack_seeded_full(
        seed: u64,
        nops: usize,
        prefill: usize,
        value_base: u64,
    ) -> StructWorkload {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut next_value = value_base + 1;
        let ops = (0..nops)
            .map(|_| {
                if rng.gen_bool(0.5) {
                    let v = next_value;
                    next_value += 1;
                    StructOp::Push(v)
                } else {
                    StructOp::Pop
                }
            })
            .collect();
        StructWorkload {
            name: "multi",
            stack: true,
            prefill: (0..prefill as u64).map(|i| value_base + 10_000 + i).collect(),
            ops,
        }
    }

    /// Seeded multi-op set workload (`seeded_full` with default prefill).
    pub fn set_seeded(seed: u64, nops: usize) -> StructWorkload {
        StructWorkload::set_seeded_full(seed, nops, 3, 0)
    }

    /// Fully parameterised seeded set workload: keys are drawn from a small
    /// range around `key_base` (every other key prefilled) so inserts, removes
    /// and membership tests all hit both their *true* and *false* paths.
    pub fn set_seeded_full(
        seed: u64,
        nops: usize,
        prefill: usize,
        key_base: u64,
    ) -> StructWorkload {
        let mut rng = SmallRng::seed_from_u64(seed);
        let span = (2 * prefill as u64 + 4).max(6);
        let ops = (0..nops)
            .map(|_| {
                let k = key_base + rng.gen_range(0..span);
                match rng.gen_range(0..3u64) {
                    0 => StructOp::Insert(k),
                    1 => StructOp::Remove(k),
                    _ => StructOp::Contains(k),
                }
            })
            .collect();
        StructWorkload {
            name: "multi",
            stack: false,
            prefill: (0..prefill as u64).map(|i| key_base + 2 * i).collect(),
            ops,
        }
    }

    /// The prefill as [`StructOp`]s of the right shape.
    fn prefill_ops(&self) -> Vec<StructOp> {
        self.prefill
            .iter()
            .map(|&v| {
                if self.stack {
                    StructOp::Push(v)
                } else {
                    StructOp::Insert(v)
                }
            })
            .collect()
    }
}

/// Upper bound on the elements a replay can leave behind (prefill + every
/// push/insert in the window). Same role as the queue sweeper's bound: drains
/// run to `bound + 1` so corrupted cyclic chains terminate and fail.
fn drain_bound(workload: &StructWorkload) -> usize {
    workload.prefill.len()
        + workload
            .ops
            .iter()
            .filter(|op| matches!(op, StructOp::Push(_) | StructOp::Insert(_)))
            .count()
}

/// What the replay driver observed for one operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpOutcome {
    Completed(Option<u64>),
    Interrupted,
}

/// Everything one replay produced.
#[derive(Clone, Debug)]
struct Replay {
    outcomes: Vec<OpOutcome>,
    drained: Vec<u64>,
    drain_overflow: bool,
    crash_points: u64,
    crashes: u64,
    recoveries: u64,
    entry_retries: u64,
    recovery_crashes: u64,
    audit_flags: u64,
    audit_reports: Vec<String>,
}

/// Aggregate result of sweeping one (variant, workload) combination; same
/// shape as [`crate::dfck::SweepReport`] with the struct variant enum.
#[derive(Clone, Debug)]
pub struct StructSweepReport {
    /// The swept variant.
    pub variant: StructVariant,
    /// Workload name ("pair" / "multi").
    pub workload: &'static str,
    /// Nested crash-schedule gaps (see [`crate::dfck::SweepReport::nested`]).
    pub nested: Vec<u64>,
    /// Whether crashes were full-system power failures.
    pub system: bool,
    /// Total crash points of the crash-free run.
    pub crash_points: u64,
    /// Replays executed (crash points + the crash-free baseline).
    pub replays: u64,
    /// Total simulated crashes injected across all replays.
    pub crashes_injected: u64,
    /// Total recoveries observed across all replays.
    pub recoveries: u64,
    /// Crashes absorbed by entry-boundary retries.
    pub entry_retries: u64,
    /// Crashes that interrupted recovery itself (nested path proof).
    pub recovery_crashes: u64,
    /// Flush-order auditor flags (also folded into `violations`). Must be zero.
    pub audit_flags: u64,
    /// Oracle violations. Must be empty.
    pub violations: Vec<String>,
}

impl StructSweepReport {
    /// Whether every replay satisfied the oracle.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

fn crash_machine(mem: &PMem, system: bool) {
    if system {
        mem.crash_all();
    } else {
        mem.crash_thread(0);
    }
    let _ = mem.take_crashed(0);
}

/// Run one replay of `workload` on `variant` with the given crash script.
fn replay(
    variant: StructVariant,
    workload: &StructWorkload,
    plan: &CrashPlan,
    system: bool,
) -> Replay {
    assert_eq!(
        variant.is_stack(),
        workload.stack,
        "workload shape must match the variant"
    );
    pmem::install_quiet_crash_hook();
    let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
    mem.flush_auditor().arm();
    let audit_of = |mem: &PMem| (mem.flush_auditor().flags(), mem.flush_auditor().take_reports());
    let bound = drain_bound(workload);
    match variant {
        StructVariant::StackIzraelevitz | StructVariant::SetIzraelevitz => {
            let t = mem.thread_with(0, ThreadOptions { izraelevitz: true });
            let stack;
            let set;
            let mut h: Box<dyn StructHandle + '_> = if variant.is_stack() {
                stack = TreiberStack::new(&t);
                Box::new(stack.handle(&t))
            } else {
                set = ListSet::new(&t);
                Box::new(set.handle(&t))
            };
            for op in workload.prefill_ops() {
                let _ = h.apply(op);
            }
            mem.persist_everything();
            let _ = t.take_stats();
            if plan.remaining() > 0 {
                t.set_crash_schedule(plan.clone());
            }
            let mut outcomes = Vec::with_capacity(workload.ops.len());
            for &op in &workload.ops {
                // No recovery protocol: a crash unwinds to here and the
                // process cannot tell whether the interrupted operation took
                // effect. The forked-model oracle owns the ambiguity.
                let outcome = catch_crash(|| h.apply(op));
                outcomes.push(match outcome {
                    Ok(ret) => OpOutcome::Completed(ret),
                    Err(_) => {
                        t.note_crash();
                        crash_machine(&mem, system);
                        OpOutcome::Interrupted
                    }
                });
            }
            let window = t.stats();
            t.disarm_crashes();
            // `truncated` covers the marked-node-cycle case, where the walk
            // hits the node cap without collecting an over-long key list.
            let drained = h.drain_up_to(bound + 1);
            let (audit_flags, audit_reports) = audit_of(&mem);
            Replay {
                outcomes,
                drain_overflow: drained.truncated || drained.items.len() > bound,
                drained: drained.items,
                crash_points: window.crash_points,
                crashes: window.crashes,
                recoveries: 0,
                entry_retries: 0,
                recovery_crashes: 0,
                audit_flags,
                audit_reports,
            }
        }
        StructVariant::StackGeneral
        | StructVariant::StackNormalized
        | StructVariant::SetGeneral
        | StructVariant::SetNormalized => {
            enum H<'q, 't, 'm> {
                Sg(structs::GeneralStackHandle<'q, 't, 'm>),
                Sn(structs::NormalizedStackHandle<'q, 't, 'm>),
                Tg(structs::GeneralSetHandle<'q, 't, 'm>),
                Tn(structs::NormalizedSetHandle<'q, 't, 'm>),
            }
            impl H<'_, '_, '_> {
                fn as_dyn(&mut self) -> &mut dyn StructHandle {
                    match self {
                        H::Sg(h) => h,
                        H::Sn(h) => h,
                        H::Tg(h) => h,
                        H::Tn(h) => h,
                    }
                }
                fn metrics(&mut self) -> CapsuleMetrics {
                    match self {
                        H::Sg(h) => h.runtime_mut().metrics(),
                        H::Sn(h) => h.runtime_mut().metrics(),
                        H::Tg(h) => h.runtime_mut().metrics(),
                        H::Tn(h) => h.runtime_mut().metrics(),
                    }
                }
                fn set_system_crashes(&mut self, system: bool) {
                    match self {
                        H::Sg(h) => h.runtime_mut().set_system_crashes(system),
                        H::Sn(h) => h.runtime_mut().set_system_crashes(system),
                        H::Tg(h) => h.runtime_mut().set_system_crashes(system),
                        H::Tn(h) => h.runtime_mut().set_system_crashes(system),
                    }
                }
            }
            let t = mem.thread(0);
            let gs;
            let ns;
            let gt;
            let nt;
            let mut h = match variant {
                StructVariant::StackGeneral => {
                    gs = GeneralStack::new(&t, 1, true, BoundaryStyle::General);
                    H::Sg(gs.handle(&t))
                }
                StructVariant::StackNormalized => {
                    ns = NormalizedStack::new(&t, 1, true, false);
                    H::Sn(ns.handle(&t))
                }
                StructVariant::SetGeneral => {
                    gt = GeneralSet::new(&t, 1, true, BoundaryStyle::General);
                    H::Tg(gt.handle(&t))
                }
                _ => {
                    nt = NormalizedSet::new(&t, 1, true, false);
                    H::Tn(nt.handle(&t))
                }
            };
            h.set_system_crashes(system);
            for op in workload.prefill_ops() {
                let _ = h.as_dyn().apply(op);
            }
            mem.persist_everything();
            let metrics_before = h.metrics();
            let _ = t.take_stats();
            if plan.remaining() > 0 {
                t.set_crash_schedule(plan.clone());
            }
            // The capsule runtime absorbs every crash: each operation completes
            // with its exact result — that completion is the detectability
            // claim the oracle verifies against the crash-free history.
            let outcomes = workload
                .ops
                .iter()
                .map(|&op| OpOutcome::Completed(h.as_dyn().apply(op)))
                .collect();
            let window = t.stats();
            t.disarm_crashes();
            let drained = h.as_dyn().drain_up_to(bound + 1);
            let metrics = h.metrics();
            let (audit_flags, audit_reports) = audit_of(&mem);
            Replay {
                outcomes,
                drain_overflow: drained.truncated || drained.items.len() > bound,
                drained: drained.items,
                crash_points: window.crash_points,
                crashes: window.crashes,
                recoveries: metrics.recoveries - metrics_before.recoveries,
                entry_retries: metrics.entry_retries - metrics_before.entry_retries,
                recovery_crashes: metrics.recovery_crashes - metrics_before.recovery_crashes,
                audit_flags,
                audit_reports,
            }
        }
    }
}

/// The forked sequential model: a LIFO stack or an ordered set.
#[derive(Clone, PartialEq, Eq)]
enum Model {
    Stack(Vec<u64>),
    Set(BTreeSet<u64>),
}

impl Model {
    fn expected_drain(&self) -> Vec<u64> {
        match self {
            // Stacks drain top-down.
            Model::Stack(items) => items.iter().rev().copied().collect(),
            // Sets snapshot ascending.
            Model::Set(keys) => keys.iter().copied().collect(),
        }
    }
}

/// Check one replayed history against the shape's oracle. For every
/// interrupted operation (non-detectable variants only) the model forks into
/// applied / not-applied branches; the replay passes iff at least one branch
/// reproduces every completed return *and* the final drain.
fn check_history(workload: &StructWorkload, r: &Replay) -> Result<(), String> {
    if r.drain_overflow {
        return Err(format!(
            "drain returned {} elements but at most {} could have survived the \
             replay — corrupted (cyclic?) chain",
            r.drained.len(),
            drain_bound(workload)
        ));
    }
    let initial = if workload.stack {
        Model::Stack(workload.prefill.clone())
    } else {
        Model::Set(workload.prefill.iter().copied().collect())
    };
    let mut branches = vec![initial];
    for (i, (&op, outcome)) in workload.ops.iter().zip(&r.outcomes).enumerate() {
        let mut next: Vec<Model> = Vec::with_capacity(branches.len() * 2);
        for model in branches {
            match (*outcome, op, model) {
                (OpOutcome::Completed(ret), StructOp::Push(v), Model::Stack(mut s)) => {
                    debug_assert_eq!(ret, None);
                    s.push(v);
                    next.push(Model::Stack(s));
                }
                (OpOutcome::Completed(ret), StructOp::Pop, Model::Stack(mut s)) => {
                    if s.pop() == ret {
                        next.push(Model::Stack(s));
                    }
                }
                (OpOutcome::Completed(ret), StructOp::Insert(k), Model::Set(mut s)) => {
                    if Some(s.insert(k) as u64) == ret {
                        next.push(Model::Set(s));
                    }
                }
                (OpOutcome::Completed(ret), StructOp::Remove(k), Model::Set(mut s)) => {
                    if Some(s.remove(&k) as u64) == ret {
                        next.push(Model::Set(s));
                    }
                }
                (OpOutcome::Completed(ret), StructOp::Contains(k), Model::Set(s)) => {
                    if Some(s.contains(&k) as u64) == ret {
                        next.push(Model::Set(s));
                    }
                }
                (OpOutcome::Interrupted, StructOp::Push(v), Model::Stack(s)) => {
                    let mut applied = s.clone();
                    applied.push(v);
                    next.push(Model::Stack(applied));
                    next.push(Model::Stack(s));
                }
                (OpOutcome::Interrupted, StructOp::Pop, Model::Stack(s)) => {
                    let mut applied = s.clone();
                    let _ = applied.pop(); // value was lost with the crash
                    next.push(Model::Stack(applied));
                    next.push(Model::Stack(s));
                }
                (OpOutcome::Interrupted, StructOp::Insert(k), Model::Set(s)) => {
                    let mut applied = s.clone();
                    applied.insert(k);
                    next.push(Model::Set(applied));
                    next.push(Model::Set(s));
                }
                (OpOutcome::Interrupted, StructOp::Remove(k), Model::Set(s)) => {
                    let mut applied = s.clone();
                    applied.remove(&k);
                    next.push(Model::Set(applied));
                    next.push(Model::Set(s));
                }
                (OpOutcome::Interrupted, StructOp::Contains(_), m) => {
                    next.push(m); // read-only: no state fork
                }
                (_, op, _) => {
                    return Err(format!("op {i} ({op:?}) does not match the workload shape"))
                }
            }
        }
        // Interrupted ops on an already-consistent state can fork into
        // identical branches; dedup to keep the frontier small.
        next.dedup();
        if next.is_empty() {
            return Err(format!(
                "op {i} ({op:?}) returned {outcome:?}, inconsistent with every model branch"
            ));
        }
        branches = next;
    }
    if branches.iter().any(|m| m.expected_drain() == r.drained) {
        Ok(())
    } else {
        Err(format!(
            "final drain {:?} matches no model branch (e.g. expected {:?})",
            r.drained,
            branches[0].expected_drain()
        ))
    }
}

/// Sweep every crash point under per-process crash semantics (the PPM model).
pub fn sweep(
    variant: StructVariant,
    workload: &StructWorkload,
    nested_gap: Option<u64>,
) -> StructSweepReport {
    let nested: Vec<u64> = nested_gap.into_iter().collect();
    sweep_plan(variant, workload, &nested, false)
}

/// Like [`sweep`] but with full-system crashes (unflushed lines roll back), so
/// the sweep additionally verifies the variant's flush placement.
pub fn sweep_system(
    variant: StructVariant,
    workload: &StructWorkload,
    nested_gap: Option<u64>,
) -> StructSweepReport {
    let nested: Vec<u64> = nested_gap.into_iter().collect();
    sweep_plan(variant, workload, &nested, true)
}

/// The general entry point: replay once per crash point `k` with the scripted
/// schedule `[k, nested…]`, fanning the independent replays out across worker
/// threads exactly like [`crate::dfck::sweep_plan`] (`DF_DFCK_THREADS`).
pub fn sweep_plan(
    variant: StructVariant,
    workload: &StructWorkload,
    nested: &[u64],
    system: bool,
) -> StructSweepReport {
    sweep_plan_with_workers(variant, workload, nested, system, None)
}

fn sweep_plan_with_workers(
    variant: StructVariant,
    workload: &StructWorkload,
    nested: &[u64],
    system: bool,
    workers_override: Option<usize>,
) -> StructSweepReport {
    let baseline = replay(variant, workload, &CrashPlan::new(Vec::new()), system);
    assert_eq!(baseline.crashes, 0);
    let strict = variant.detectable();
    let mut report = StructSweepReport {
        variant,
        workload: workload.name,
        nested: nested.to_vec(),
        system,
        crash_points: baseline.crash_points,
        replays: 1,
        crashes_injected: 0,
        recoveries: 0,
        entry_retries: 0,
        recovery_crashes: 0,
        audit_flags: baseline.audit_flags,
        violations: Vec::new(),
    };
    if let Err(e) = check_history(workload, &baseline) {
        report.violations.push(format!("baseline (crash-free): {e}"));
    }
    if baseline.audit_flags > 0 {
        report.violations.push(format!(
            "baseline (crash-free): {} flush-audit flag(s): {:?}",
            baseline.audit_flags, baseline.audit_reports
        ));
    }
    let plan_for = |k: u64| CrashPlan::nested(k, nested);
    let run_one = |k: u64| -> (u64, Replay) {
        if std::env::var_os("DF_DFCK_TRACE").is_some() {
            eprintln!(
                "dfck_struct trace: {:?} {} k={k} gaps={:?} system={system}",
                variant,
                workload.name,
                plan_for(k).script()
            );
        }
        (k, replay(variant, workload, &plan_for(k), system))
    };
    let n = baseline.crash_points;
    let workers = workers_override
        .map(|w| w.max(1))
        .unwrap_or_else(|| crate::dfck::sweep_workers(n));
    let results: Vec<(u64, Replay)> = if workers <= 1 {
        (0..n).map(run_one).collect()
    } else {
        let mut all: Vec<(u64, Replay)> = std::thread::scope(|s| {
            let run_one = &run_one;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    s.spawn(move || {
                        (w as u64..n)
                            .step_by(workers)
                            .map(run_one)
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("dfck_struct sweep worker panicked"))
                .collect()
        });
        all.sort_by_key(|&(k, _)| k);
        all
    };
    for (k, r) in results {
        let gaps = plan_for(k).script().to_vec();
        report.replays += 1;
        report.crashes_injected += r.crashes;
        report.recoveries += r.recoveries;
        report.entry_retries += r.entry_retries;
        report.recovery_crashes += r.recovery_crashes;
        report.audit_flags += r.audit_flags;
        if r.audit_flags > 0 {
            report.violations.push(format!(
                "k={k} gaps={gaps:?}: {} flush-audit flag(s): {:?}",
                r.audit_flags, r.audit_reports
            ));
        }
        if r.crashes == 0 {
            report.violations.push(format!(
                "k={k}: the schedule never fired (swept range disagrees with the replay)"
            ));
            continue;
        }
        if let Err(e) = check_history(workload, &r) {
            report.violations.push(format!("k={k} gaps={gaps:?}: {e}"));
            continue;
        }
        if strict {
            if r.outcomes != baseline.outcomes || r.drained != baseline.drained {
                report.violations.push(format!(
                    "k={k} gaps={gaps:?}: history differs from the crash-free run \
                     (outcomes {:?} vs {:?}, drain {:?} vs {:?})",
                    r.outcomes, baseline.outcomes, r.drained, baseline.drained
                ));
            }
            if r.recoveries + r.entry_retries == 0 {
                report.violations.push(format!(
                    "k={k}: a crash was injected but no recovery action ran"
                ));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_pair_histories_are_consistent() {
        for variant in StructVariant::all() {
            let w = if variant.is_stack() {
                StructWorkload::stack_pair()
            } else {
                StructWorkload::set_pair()
            };
            let r = replay(variant, &w, &CrashPlan::new(Vec::new()), false);
            assert_eq!(r.crashes, 0);
            assert!(
                r.crash_points > 0,
                "{variant:?}: workload passed no crash points"
            );
            check_history(&w, &r).unwrap();
        }
    }

    #[test]
    fn stack_oracle_rejects_corrupted_histories() {
        let w = StructWorkload::stack_pair();
        let good = replay(
            StructVariant::StackGeneral,
            &w,
            &CrashPlan::new(Vec::new()),
            false,
        );
        check_history(&w, &good).unwrap();
        // Lost element.
        let mut lost = good.clone();
        lost.drained.remove(0);
        assert!(check_history(&w, &lost).is_err());
        // Duplicated element.
        let mut dup = good.clone();
        let v = dup.drained[0];
        dup.drained.insert(0, v);
        assert!(check_history(&w, &dup).is_err());
        // FIFO instead of LIFO drain order.
        let mut fifo = good.clone();
        fifo.drained.reverse();
        assert!(check_history(&w, &fifo).is_err());
        // Over-long drain is diagnosed as a cycle.
        let mut cycled = good.clone();
        cycled.drain_overflow = true;
        let err = check_history(&w, &cycled).unwrap_err();
        assert!(err.contains("cyclic"), "diagnosis missing from: {err}");
    }

    #[test]
    fn set_oracle_rejects_wrong_membership_answers() {
        let w = StructWorkload::set_pair();
        let good = replay(
            StructVariant::SetGeneral,
            &w,
            &CrashPlan::new(Vec::new()),
            false,
        );
        check_history(&w, &good).unwrap();
        assert_eq!(good.drained, vec![10, 15, 30]);
        // A flipped insert return (claims the key was present).
        let mut flipped = good.clone();
        flipped.outcomes[0] = OpOutcome::Completed(Some(0));
        assert!(check_history(&w, &flipped).is_err());
        // A remove that "succeeded" but left the key behind.
        let mut stale = good.clone();
        stale.drained = vec![10, 15, 20, 30];
        assert!(check_history(&w, &stale).is_err());
    }

    #[test]
    fn set_oracle_accepts_interrupted_ops_either_way() {
        let w = StructWorkload {
            name: "ambig",
            stack: false,
            prefill: vec![7],
            ops: vec![StructOp::Insert(42)],
        };
        let base = Replay {
            outcomes: vec![OpOutcome::Interrupted],
            drained: vec![7, 42],
            drain_overflow: false,
            crash_points: 1,
            crashes: 1,
            recoveries: 0,
            entry_retries: 0,
            recovery_crashes: 0,
            audit_flags: 0,
            audit_reports: Vec::new(),
        };
        check_history(&w, &base).unwrap();
        let mut not_applied = base.clone();
        not_applied.drained = vec![7];
        check_history(&w, &not_applied).unwrap();
        let mut corrupt = base.clone();
        corrupt.drained = vec![42];
        assert!(check_history(&w, &corrupt).is_err());
    }

    #[test]
    fn seeded_workloads_are_reproducible_and_mixed() {
        let a = StructWorkload::stack_seeded(9, 12);
        assert_eq!(a.ops, StructWorkload::stack_seeded(9, 12).ops);
        assert!(a.ops.iter().any(|o| matches!(o, StructOp::Push(_))));
        assert!(a.ops.iter().any(|o| matches!(o, StructOp::Pop)));
        let s = StructWorkload::set_seeded(9, 24);
        assert_eq!(s.ops, StructWorkload::set_seeded(9, 24).ops);
        assert!(s.ops.iter().any(|o| matches!(o, StructOp::Insert(_))));
        assert!(s.ops.iter().any(|o| matches!(o, StructOp::Remove(_))));
        assert!(s.ops.iter().any(|o| matches!(o, StructOp::Contains(_))));
        // Offsets shift the key/value ranges so property cases stay disjoint.
        let shifted = StructWorkload::set_seeded_full(9, 24, 3, 1_000_000);
        assert!(shifted.prefill.iter().all(|&k| k >= 1_000_000));
    }

    #[test]
    fn parallel_sweep_matches_sequential_sweep() {
        let w = StructWorkload::stack_pair();
        let seq = sweep_plan_with_workers(StructVariant::StackGeneral, &w, &[0], false, Some(1));
        let par = sweep_plan_with_workers(StructVariant::StackGeneral, &w, &[0], false, Some(4));
        assert_eq!(seq.crash_points, par.crash_points);
        assert_eq!(seq.replays, par.replays);
        assert_eq!(seq.crashes_injected, par.crashes_injected);
        assert_eq!(seq.recoveries, par.recoveries);
        assert_eq!(seq.entry_retries, par.entry_retries);
        assert_eq!(seq.recovery_crashes, par.recovery_crashes);
        assert_eq!(seq.audit_flags, par.audit_flags);
        assert_eq!(seq.violations, par.violations);
        assert!(seq.passed());
    }

    // The full pair sweeps (every variant, single + nested, PPM + system) live
    // in tests/dfck_struct_sweep.rs, mirroring the queue sweeper's split.
}
