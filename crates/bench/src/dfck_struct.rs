//! `dfck_struct` — the exhaustive crash-point sweeper for the non-queue
//! structure family (`structs`: Treiber stack, linked-list set).
//!
//! Same discipline as [`crate::dfck`]: run a seeded workload once crash-free to
//! learn the crash-point count from [`pmem::Stats::crash_points`], then replay
//! it once per point `k` with a scripted [`CrashPlan`] (optionally nested:
//! crash again inside the triggered recovery), under per-process *and*
//! full-system crash semantics, flush auditor armed. What changes per shape is
//! the **oracle**:
//!
//! * **stack (LIFO exactly-once)** — detectable variants must reproduce the
//!   crash-free history verbatim; the Izraelevitz stack runs under a forked
//!   LIFO model (each interrupted push/pop may or may not have applied);
//! * **set (membership exactly-once)** — every insert/remove/contains return
//!   must agree with a sequential `BTreeSet` model, and the final ascending
//!   snapshot must match a consistent fork.
//!
//! Drains are bounded by the replay's maximum possible survivors (prefill +
//! pushes/inserts), so a corrupted cyclic chain surfaces as a violation
//! carrying the offending schedule instead of a hung sweep.
//!
//! The sweep engine and the oracle machinery live in [`crate::sweep`], shared
//! with the queue sweeper; this module contributes the structure drivers,
//! workloads and sequential models. [`sweep_interleaved`] adds the
//! (schedule × crash point) dimension for the detectable capsule variants,
//! mirroring [`crate::dfck::sweep_interleaved`].

use std::collections::BTreeSet;
use std::sync::Arc;

use capsules::{BoundaryStyle, CapsuleMetrics};
use pmem::{catch_crash, CrashPlan, MemConfig, Mode, PMem, SchedConfig, ThreadOptions, ThreadScheduler};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use structs::{
    DetMap, GeneralDetMap, GeneralSet, GeneralStack, ListSet, MapConfig, NormalizedDetMap,
    NormalizedSet, NormalizedStack, StructHandle, StructOp, TreiberStack,
};

use crate::sweep::{self, OpOutcome, ReplayRecord, TimedOp, TurnGate};

/// The structure variants the sweeper covers: each shape in the same matrix as
/// the queues — Izraelevitz flush-everything (durable, not detectable),
/// General capsules and the Normalized simulator (both detectable).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StructVariant {
    /// Treiber stack + Izraelevitz construction.
    StackIzraelevitz,
    /// Treiber stack through the CAS-Read (General) transformation.
    StackGeneral,
    /// Treiber stack through the Persistent Normalized Simulator.
    StackNormalized,
    /// Harris–Michael list set + Izraelevitz construction.
    SetIzraelevitz,
    /// List set through the CAS-Read (General) transformation.
    SetGeneral,
    /// List set through the Persistent Normalized Simulator.
    SetNormalized,
    /// Bucketed hash map + Izraelevitz construction.
    MapIzraelevitz,
    /// Hash map through the CAS-Read (General) transformation.
    MapGeneral,
    /// Hash map through the Persistent Normalized Simulator.
    MapNormalized,
}

impl StructVariant {
    /// Short label for tables and JSON rows.
    pub fn label(&self) -> &'static str {
        match self {
            StructVariant::StackIzraelevitz => "Stack-Izraelevitz",
            StructVariant::StackGeneral => "Stack-General",
            StructVariant::StackNormalized => "Stack-Normalized",
            StructVariant::SetIzraelevitz => "Set-Izraelevitz",
            StructVariant::SetGeneral => "Set-General",
            StructVariant::SetNormalized => "Set-Normalized",
            StructVariant::MapIzraelevitz => "Map-Izraelevitz",
            StructVariant::MapGeneral => "Map-General",
            StructVariant::MapNormalized => "Map-Normalized",
        }
    }

    /// Every swept variant.
    pub fn all() -> Vec<StructVariant> {
        vec![
            StructVariant::StackIzraelevitz,
            StructVariant::StackGeneral,
            StructVariant::StackNormalized,
            StructVariant::SetIzraelevitz,
            StructVariant::SetGeneral,
            StructVariant::SetNormalized,
            StructVariant::MapIzraelevitz,
            StructVariant::MapGeneral,
            StructVariant::MapNormalized,
        ]
    }

    /// Whether the strict exactly-once oracle applies.
    pub fn detectable(&self) -> bool {
        !matches!(
            self,
            StructVariant::StackIzraelevitz
                | StructVariant::SetIzraelevitz
                | StructVariant::MapIzraelevitz
        )
    }

    /// Whether this is a stack-shaped variant (LIFO oracle) rather than a set.
    pub fn is_stack(&self) -> bool {
        matches!(
            self,
            StructVariant::StackIzraelevitz
                | StructVariant::StackGeneral
                | StructVariant::StackNormalized
        )
    }

    /// Whether this is a map-shaped variant: same membership oracle as the
    /// set (so map workloads carry `stack: false`), but swept on the bucketed
    /// structure with [`MapConfig::tiny`] so the crash window crosses the
    /// resize protocol.
    pub fn is_map(&self) -> bool {
        matches!(
            self,
            StructVariant::MapIzraelevitz
                | StructVariant::MapGeneral
                | StructVariant::MapNormalized
        )
    }
}

/// A deterministic workload over one shape: prefilled contents plus a fixed
/// operation sequence (all ops must match the shape — [`StructOp`]).
#[derive(Clone, Debug)]
pub struct StructWorkload {
    /// Name used in reports ("pair" / "multi").
    pub name: &'static str,
    /// `true` for stack-shaped workloads, `false` for set-shaped ones.
    pub stack: bool,
    /// Stack: values pushed bottom-up before the swept window. Set: keys
    /// inserted before the window (must be distinct).
    pub prefill: Vec<u64>,
    /// The operations executed inside the swept window.
    pub ops: Vec<StructOp>,
}

impl StructWorkload {
    /// The canonical stack pair: one push, one pop, on a lightly prefilled
    /// stack.
    pub fn stack_pair() -> StructWorkload {
        StructWorkload {
            name: "pair",
            stack: true,
            prefill: (0..4).map(|i| 10_000 + i).collect(),
            ops: vec![StructOp::Push(1), StructOp::Pop],
        }
    }

    /// The canonical set pair: one insert that lands mid-list, one remove of a
    /// prefilled key — both protocol paths (link CAS, mark + unlink) swept.
    pub fn set_pair() -> StructWorkload {
        StructWorkload {
            name: "pair",
            stack: false,
            prefill: vec![10, 20, 30],
            ops: vec![StructOp::Insert(15), StructOp::Remove(20)],
        }
    }

    /// The canonical map workload: the same membership paths as
    /// [`StructWorkload::set_pair`] *plus* a bucket-array resize inside the
    /// swept window — map replays build with [`MapConfig::tiny`] (2 buckets,
    /// `max_chain` 3), so the sixth insert's trigger fires mid-window and
    /// every crash point of the freeze/copy/promote migration is enumerated.
    pub fn map_resize() -> StructWorkload {
        StructWorkload {
            name: "map-resize",
            stack: false,
            prefill: vec![10, 20, 30],
            ops: vec![
                StructOp::Insert(15),
                StructOp::Insert(25),
                StructOp::Insert(15),
                StructOp::Remove(10),
                StructOp::Contains(15),
                StructOp::Remove(99),
            ],
        }
    }

    /// Seeded multi-op stack workload (`seeded_full` with default prefill).
    pub fn stack_seeded(seed: u64, nops: usize) -> StructWorkload {
        StructWorkload::stack_seeded_full(seed, nops, 3, 0)
    }

    /// Fully parameterised seeded stack workload: `nops` operations, each
    /// independently a push (fresh value) or a pop, offset by `value_base`.
    pub fn stack_seeded_full(
        seed: u64,
        nops: usize,
        prefill: usize,
        value_base: u64,
    ) -> StructWorkload {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut next_value = value_base + 1;
        let ops = (0..nops)
            .map(|_| {
                if rng.gen_bool(0.5) {
                    let v = next_value;
                    next_value += 1;
                    StructOp::Push(v)
                } else {
                    StructOp::Pop
                }
            })
            .collect();
        StructWorkload {
            name: "multi",
            stack: true,
            prefill: (0..prefill as u64).map(|i| value_base + 10_000 + i).collect(),
            ops,
        }
    }

    /// Seeded multi-op set workload (`seeded_full` with default prefill).
    pub fn set_seeded(seed: u64, nops: usize) -> StructWorkload {
        StructWorkload::set_seeded_full(seed, nops, 3, 0)
    }

    /// Fully parameterised seeded set workload: keys are drawn from a small
    /// range around `key_base` (every other key prefilled) so inserts, removes
    /// and membership tests all hit both their *true* and *false* paths.
    pub fn set_seeded_full(
        seed: u64,
        nops: usize,
        prefill: usize,
        key_base: u64,
    ) -> StructWorkload {
        let mut rng = SmallRng::seed_from_u64(seed);
        let span = (2 * prefill as u64 + 4).max(6);
        let ops = (0..nops)
            .map(|_| {
                let k = key_base + rng.gen_range(0..span);
                match rng.gen_range(0..3u64) {
                    0 => StructOp::Insert(k),
                    1 => StructOp::Remove(k),
                    _ => StructOp::Contains(k),
                }
            })
            .collect();
        StructWorkload {
            name: "multi",
            stack: false,
            prefill: (0..prefill as u64).map(|i| key_base + 2 * i).collect(),
            ops,
        }
    }

    /// The prefill as [`StructOp`]s of the right shape.
    fn prefill_ops(&self) -> Vec<StructOp> {
        self.prefill
            .iter()
            .map(|&v| {
                if self.stack {
                    StructOp::Push(v)
                } else {
                    StructOp::Insert(v)
                }
            })
            .collect()
    }
}

/// A concurrent workload over one shape: per-pid operation sequences on one
/// shared structure.
#[derive(Clone, Debug)]
pub struct ConcStructWorkload {
    /// Name used in reports ("conc-pair").
    pub name: &'static str,
    /// `true` for stack-shaped workloads, `false` for set-shaped ones.
    pub stack: bool,
    /// Contents before the scheduled window (stack: pushed bottom-up; set:
    /// distinct keys).
    pub prefill: Vec<u64>,
    /// Per-pid operation sequences; `per_pid.len()` is the process count.
    pub per_pid: Vec<Vec<StructOp>>,
}

impl ConcStructWorkload {
    /// The canonical concurrent stack pair: every pid pushes one distinctive
    /// value and pops once.
    pub fn stack_pair(threads: usize) -> ConcStructWorkload {
        ConcStructWorkload {
            name: "conc-pair",
            stack: true,
            prefill: (0..4).map(|i| 10_000 + i).collect(),
            per_pid: (0..threads as u64)
                .map(|p| vec![StructOp::Push(100 + p), StructOp::Pop])
                .collect(),
        }
    }

    /// The canonical concurrent set pair: every pid inserts a fresh mid-list
    /// key and removes a (for up to 3 pids) prefilled one.
    pub fn set_pair(threads: usize) -> ConcStructWorkload {
        ConcStructWorkload {
            name: "conc-pair",
            stack: false,
            prefill: vec![10, 20, 30],
            per_pid: (0..threads as u64)
                .map(|p| vec![StructOp::Insert(11 + 2 * p), StructOp::Remove(10 * (p + 1))])
                .collect(),
        }
    }

    /// The canonical concurrent map workload: distinct inserts per pid on a
    /// [`MapConfig::tiny`] map, so the pids race the resize trigger and the
    /// migration helping paths against each other (and against the scripted
    /// crashes) while the removes exercise tombstoning under contention.
    pub fn map_pair(threads: usize) -> ConcStructWorkload {
        ConcStructWorkload {
            name: "conc-map",
            stack: false,
            prefill: vec![10, 20, 30],
            per_pid: (0..threads as u64)
                .map(|p| {
                    vec![
                        StructOp::Insert(11 + 2 * p),
                        StructOp::Insert(40 + p),
                        StructOp::Remove(10 * (p + 1)),
                    ]
                })
                .collect(),
        }
    }

    /// The number of scheduled processes.
    pub fn threads(&self) -> usize {
        self.per_pid.len()
    }

    /// Upper bound on the elements a replay can leave behind: the prefill plus
    /// every push/insert of every pid.
    pub fn drain_bound(&self) -> usize {
        self.prefill.len()
            + self
                .per_pid
                .iter()
                .flatten()
                .filter(|op| matches!(op, StructOp::Push(_) | StructOp::Insert(_)))
                .count()
    }

    /// The prefill as [`StructOp`]s of the right shape.
    fn prefill_ops(&self) -> Vec<StructOp> {
        self.prefill
            .iter()
            .map(|&v| {
                if self.stack {
                    StructOp::Push(v)
                } else {
                    StructOp::Insert(v)
                }
            })
            .collect()
    }
}

/// Upper bound on the elements a replay can leave behind (prefill + every
/// push/insert in the window). Same role as the queue sweeper's bound: drains
/// run to `bound + 1` so corrupted cyclic chains terminate and fail.
fn drain_bound(workload: &StructWorkload) -> usize {
    workload.prefill.len()
        + workload
            .ops
            .iter()
            .filter(|op| matches!(op, StructOp::Push(_) | StructOp::Insert(_)))
            .count()
}

/// Aggregate result of sweeping one (variant, workload) combination
/// (the shared [`sweep::Report`] instantiated at the structure variants).
pub type StructSweepReport = sweep::Report<StructVariant>;

/// Aggregate result of an interleaved (schedule × crash point) sweep
/// (the shared [`sweep::ConcReport`] instantiated at the structure variants).
pub type ConcStructSweepReport = sweep::ConcReport<StructVariant>;

/// The sequential reference model: a LIFO stack or an ordered set.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Model {
    Stack(Vec<u64>),
    Set(BTreeSet<u64>),
}

impl Model {
    fn initial(stack: bool, prefill: &[u64]) -> Model {
        if stack {
            Model::Stack(prefill.to_vec())
        } else {
            Model::Set(prefill.iter().copied().collect())
        }
    }
}

impl sweep::SeqModel for Model {
    type Op = StructOp;
    fn apply(&mut self, op: StructOp) -> Option<u64> {
        match (self, op) {
            (Model::Stack(s), StructOp::Push(v)) => {
                s.push(v);
                None
            }
            (Model::Stack(s), StructOp::Pop) => s.pop(),
            (Model::Set(s), StructOp::Insert(k)) => Some(s.insert(k) as u64),
            (Model::Set(s), StructOp::Remove(k)) => Some(s.remove(&k) as u64),
            (Model::Set(s), StructOp::Contains(k)) => Some(s.contains(&k) as u64),
            _ => unreachable!("operation does not match the workload shape"),
        }
    }
    fn final_drain(&self) -> Vec<u64> {
        match self {
            // Stacks drain top-down.
            Model::Stack(items) => items.iter().rev().copied().collect(),
            // Sets snapshot ascending.
            Model::Set(keys) => keys.iter().copied().collect(),
        }
    }
}

/// Run one replay of `workload` on `variant` with the given crash script.
fn replay(
    variant: StructVariant,
    workload: &StructWorkload,
    plan: &CrashPlan,
    system: bool,
) -> ReplayRecord {
    assert_eq!(
        variant.is_stack(),
        workload.stack,
        "workload shape must match the variant"
    );
    pmem::install_quiet_crash_hook();
    let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
    mem.flush_auditor().arm();
    // The happens-before analyzer rides every structure replay too.
    mem.hb().arm();
    let audit_of = |mem: &PMem| (mem.flush_auditor().flags(), mem.flush_auditor().take_reports());
    let hb_of = |mem: &PMem| (mem.hb().flags(), mem.hb().take_reports());
    let bound = drain_bound(workload);
    match variant {
        StructVariant::StackIzraelevitz
        | StructVariant::SetIzraelevitz
        | StructVariant::MapIzraelevitz => {
            let t = mem.thread_with(0, ThreadOptions { izraelevitz: true });
            let stack;
            let set;
            let map;
            let mut h: Box<dyn StructHandle + '_> = match variant {
                StructVariant::StackIzraelevitz => {
                    stack = TreiberStack::new(&t);
                    Box::new(stack.handle(&t))
                }
                StructVariant::SetIzraelevitz => {
                    set = ListSet::new(&t);
                    Box::new(set.handle(&t))
                }
                _ => {
                    map = DetMap::new(&t, MapConfig::tiny());
                    Box::new(map.handle(&t))
                }
            };
            for op in workload.prefill_ops() {
                let _ = h.apply(op);
            }
            mem.persist_everything();
            let _ = t.take_stats();
            if plan.remaining() > 0 {
                t.set_crash_schedule(plan.clone());
            }
            let mut outcomes = Vec::with_capacity(workload.ops.len());
            for &op in &workload.ops {
                // No recovery protocol: a crash unwinds to here and the
                // process cannot tell whether the interrupted operation took
                // effect. The forked-model oracle owns the ambiguity.
                let outcome = catch_crash(|| h.apply(op));
                outcomes.push(match outcome {
                    Ok(ret) => OpOutcome::Completed(ret),
                    Err(_) => {
                        sweep::apply_driver_crash(&t, system);
                        OpOutcome::Interrupted
                    }
                });
            }
            let window = t.stats();
            t.disarm_crashes();
            // `truncated` covers the marked-node-cycle case, where the walk
            // hits the node cap without collecting an over-long key list.
            let drained = h.drain_up_to(bound + 1);
            let (audit_flags, audit_reports) = audit_of(&mem);
            let (hb_flags, hb_reports) = hb_of(&mem);
            ReplayRecord {
                outcomes,
                drain_overflow: drained.truncated || drained.items.len() > bound,
                drained: drained.items,
                crash_points: window.crash_points,
                crashes: window.crashes,
                recoveries: 0,
                entry_retries: 0,
                recovery_crashes: 0,
                fast_ops: 0,
                demotions: 0,
                audit_flags,
                audit_reports,
                hb_flags,
                hb_reports,
            }
        }
        StructVariant::StackGeneral
        | StructVariant::StackNormalized
        | StructVariant::SetGeneral
        | StructVariant::SetNormalized
        | StructVariant::MapGeneral
        | StructVariant::MapNormalized => {
            enum H<'q, 't, 'm> {
                Sg(structs::GeneralStackHandle<'q, 't, 'm>),
                Sn(structs::NormalizedStackHandle<'q, 't, 'm>),
                Tg(structs::GeneralSetHandle<'q, 't, 'm>),
                Tn(structs::NormalizedSetHandle<'q, 't, 'm>),
                Mg(structs::GeneralDetMapHandle<'q, 't, 'm>),
                Mn(structs::NormalizedDetMapHandle<'q, 't, 'm>),
            }
            impl H<'_, '_, '_> {
                fn as_dyn(&mut self) -> &mut dyn StructHandle {
                    match self {
                        H::Sg(h) => h,
                        H::Sn(h) => h,
                        H::Tg(h) => h,
                        H::Tn(h) => h,
                        H::Mg(h) => h,
                        H::Mn(h) => h,
                    }
                }
                fn metrics(&mut self) -> CapsuleMetrics {
                    match self {
                        H::Sg(h) => h.runtime_mut().metrics(),
                        H::Sn(h) => h.runtime_mut().metrics(),
                        H::Tg(h) => h.runtime_mut().metrics(),
                        H::Tn(h) => h.runtime_mut().metrics(),
                        H::Mg(h) => h.runtime_mut().metrics(),
                        H::Mn(h) => h.runtime_mut().metrics(),
                    }
                }
                fn set_system_crashes(&mut self, system: bool) {
                    match self {
                        H::Sg(h) => h.runtime_mut().set_system_crashes(system),
                        H::Sn(h) => h.runtime_mut().set_system_crashes(system),
                        H::Tg(h) => h.runtime_mut().set_system_crashes(system),
                        H::Tn(h) => h.runtime_mut().set_system_crashes(system),
                        H::Mg(h) => h.runtime_mut().set_system_crashes(system),
                        H::Mn(h) => h.runtime_mut().set_system_crashes(system),
                    }
                }
            }
            let t = mem.thread(0);
            let gs;
            let ns;
            let gt;
            let nt;
            let gm;
            let nm;
            let mut h = match variant {
                StructVariant::StackGeneral => {
                    gs = GeneralStack::new(&t, 1, true, BoundaryStyle::General);
                    H::Sg(gs.handle(&t))
                }
                StructVariant::StackNormalized => {
                    ns = NormalizedStack::new(&t, 1, true, false);
                    H::Sn(ns.handle(&t))
                }
                StructVariant::SetGeneral => {
                    gt = GeneralSet::new(&t, 1, true, BoundaryStyle::General);
                    H::Tg(gt.handle(&t))
                }
                StructVariant::SetNormalized => {
                    nt = NormalizedSet::new(&t, 1, true, false);
                    H::Tn(nt.handle(&t))
                }
                StructVariant::MapGeneral => {
                    gm = GeneralDetMap::new(&t, 1, MapConfig::tiny(), true, BoundaryStyle::General);
                    H::Mg(gm.handle(&t))
                }
                _ => {
                    nm = NormalizedDetMap::new(&t, 1, MapConfig::tiny(), true, false);
                    H::Mn(nm.handle(&t))
                }
            };
            h.set_system_crashes(system);
            for op in workload.prefill_ops() {
                let _ = h.as_dyn().apply(op);
            }
            mem.persist_everything();
            let metrics_before = h.metrics();
            let _ = t.take_stats();
            if plan.remaining() > 0 {
                t.set_crash_schedule(plan.clone());
            }
            // The capsule runtime absorbs every crash: each operation completes
            // with its exact result — that completion is the detectability
            // claim the oracle verifies against the crash-free history.
            let outcomes = workload
                .ops
                .iter()
                .map(|&op| OpOutcome::Completed(h.as_dyn().apply(op)))
                .collect();
            let window = t.stats();
            t.disarm_crashes();
            let drained = h.as_dyn().drain_up_to(bound + 1);
            let metrics = h.metrics();
            let (audit_flags, audit_reports) = audit_of(&mem);
            let (hb_flags, hb_reports) = hb_of(&mem);
            ReplayRecord {
                outcomes,
                drain_overflow: drained.truncated || drained.items.len() > bound,
                drained: drained.items,
                crash_points: window.crash_points,
                crashes: window.crashes,
                recoveries: metrics.recoveries - metrics_before.recoveries,
                entry_retries: metrics.entry_retries - metrics_before.entry_retries,
                recovery_crashes: metrics.recovery_crashes - metrics_before.recovery_crashes,
                fast_ops: metrics.fast_ops - metrics_before.fast_ops,
                demotions: metrics.demotions - metrics_before.demotions,
                audit_flags,
                audit_reports,
                hb_flags,
                hb_reports,
            }
        }
    }
}

/// Check one replayed history against the shape's oracle (the shared
/// forked-model checker [`sweep::check_sequential`] over [`Model`]): for every
/// interrupted operation (non-detectable variants only) the model forks into
/// applied / not-applied branches; the replay passes iff at least one branch
/// reproduces every completed return *and* the final drain.
fn check_history(workload: &StructWorkload, r: &ReplayRecord) -> Result<(), String> {
    if r.drain_overflow {
        return Err(format!(
            "drain returned {} elements but at most {} could have survived the \
             replay — corrupted (cyclic?) chain",
            r.drained.len(),
            drain_bound(workload)
        ));
    }
    sweep::check_sequential(
        Model::initial(workload.stack, &workload.prefill),
        &workload.ops,
        &r.outcomes,
        &r.drained,
    )
}

/// Sweep every crash point under per-process crash semantics (the PPM model).
pub fn sweep(
    variant: StructVariant,
    workload: &StructWorkload,
    nested_gap: Option<u64>,
) -> StructSweepReport {
    let nested: Vec<u64> = nested_gap.into_iter().collect();
    sweep_plan(variant, workload, &nested, false)
}

/// Like [`sweep`] but with full-system crashes (unflushed lines roll back), so
/// the sweep additionally verifies the variant's flush placement.
pub fn sweep_system(
    variant: StructVariant,
    workload: &StructWorkload,
    nested_gap: Option<u64>,
) -> StructSweepReport {
    let nested: Vec<u64> = nested_gap.into_iter().collect();
    sweep_plan(variant, workload, &nested, true)
}

/// The general entry point: replay once per crash point `k` with the scripted
/// schedule `[k, nested…]`, fanning the independent replays out across worker
/// threads exactly like [`crate::dfck::sweep_plan`] (`DF_DFCK_THREADS`).
pub fn sweep_plan(
    variant: StructVariant,
    workload: &StructWorkload,
    nested: &[u64],
    system: bool,
) -> StructSweepReport {
    sweep_plan_with_workers(variant, workload, nested, system, None)
}

fn sweep_plan_with_workers(
    variant: StructVariant,
    workload: &StructWorkload,
    nested: &[u64],
    system: bool,
    workers_override: Option<usize>,
) -> StructSweepReport {
    sweep::run_sweep(
        variant,
        &format!("dfck_struct trace: {variant:?} {}", workload.name),
        workload.name,
        nested,
        system,
        variant.detectable(),
        workers_override,
        |plan| replay(variant, workload, plan, system),
        |r| check_history(workload, r),
    )
}

/// Run one *scheduled* replay of a concurrent structure workload, mirroring
/// [`crate::dfck::conc_replay`]. Only the detectable capsule variants are
/// supported: the non-detectable Izraelevitz discipline is already swept
/// concurrently on the queue side (MSQ), where interrupted-operation
/// ambiguity is the interesting case; the structure sweeps concentrate on the
/// exactly-once claim under contention.
pub fn conc_replay(
    variant: StructVariant,
    w: &ConcStructWorkload,
    sched_seed: u64,
    plans: &sweep::VictimPlans,
    system: bool,
) -> sweep::ConcReplayRecord<StructOp> {
    assert!(
        variant.detectable(),
        "concurrent struct sweeps cover the detectable capsule variants only"
    );
    assert_eq!(
        variant.is_stack(),
        w.stack,
        "workload shape must match the variant"
    );
    pmem::install_quiet_crash_hook();
    let threads = w.threads();
    let victim = plans.victim();
    assert!(plans.max_pid() < threads, "victim pid out of range");
    // Pids 0..threads run the scheduled window; one extra *helper* pid does
    // the prefill and the post-join drain. The helper must not share a pid
    // with any worker: the rcas announcement slot is per pid and assumes
    // sequence numbers are unique per pid, and a fresh handle restarts its
    // sequence counter — a worker recovering over a triple installed by a
    // same-pid prefill handle would false-positively conclude its own
    // interrupted CAS already took effect.
    let helper = threads;
    let nprocs = threads + 1;
    let mem = PMem::new(MemConfig::new(nprocs).mode(Mode::SharedCache));
    // The happens-before analyzer stays armed even in scheduled replays (its
    // ordering model is schedule-aware), unlike the flush auditor below.
    mem.hb().arm();
    // The flush auditor stays disarmed in scheduled replays for the same
    // reason as [`crate::dfck::conc_replay`]: the capsule/rcas discipline
    // flushes the CAS target *after* publishing (announcements before), so a
    // peer may legitimately read the published-but-unflushed word — safe
    // because any later persist of that line carries the predecessor's value
    // with it. The single-threaded sweeps keep the auditor armed.
    let bound = w.drain_bound();

    enum Q {
        Sg(GeneralStack),
        Sn(NormalizedStack),
        Tg(GeneralSet),
        Tn(NormalizedSet),
        Mg(GeneralDetMap),
        Mn(NormalizedDetMap),
    }
    /// The capsule-handle surface the workers need beyond [`StructHandle`].
    trait CapsHandle: StructHandle {
        fn caps_metrics(&mut self) -> CapsuleMetrics;
        fn caps_set_system(&mut self, system: bool);
    }
    macro_rules! caps_handle {
        ($ty:ty) => {
            impl CapsHandle for $ty {
                fn caps_metrics(&mut self) -> CapsuleMetrics {
                    self.runtime_mut().metrics()
                }
                fn caps_set_system(&mut self, system: bool) {
                    self.runtime_mut().set_system_crashes(system)
                }
            }
        };
    }
    caps_handle!(structs::GeneralStackHandle<'_, '_, '_>);
    caps_handle!(structs::NormalizedStackHandle<'_, '_, '_>);
    caps_handle!(structs::GeneralSetHandle<'_, '_, '_>);
    caps_handle!(structs::NormalizedSetHandle<'_, '_, '_>);
    caps_handle!(structs::GeneralDetMapHandle<'_, '_, '_>);
    caps_handle!(structs::NormalizedDetMapHandle<'_, '_, '_>);
    fn handle_of<'a>(q: &'a Q, t: &'a pmem::PThread<'a>) -> Box<dyn CapsHandle + 'a> {
        match q {
            Q::Sg(q) => Box::new(q.handle(t)),
            Q::Sn(q) => Box::new(q.handle(t)),
            Q::Tg(q) => Box::new(q.handle(t)),
            Q::Tn(q) => Box::new(q.handle(t)),
            Q::Mg(q) => Box::new(q.handle(t)),
            Q::Mn(q) => Box::new(q.handle(t)),
        }
    }

    // Build and prefill from the helper pid, unscheduled and crash-free, then
    // make the prefill durable so it survives any later rollback.
    let q = {
        let t = mem.thread(helper);
        let q = match variant {
            StructVariant::StackGeneral => {
                Q::Sg(GeneralStack::new(&t, nprocs, true, BoundaryStyle::General))
            }
            StructVariant::StackNormalized => {
                Q::Sn(NormalizedStack::new(&t, nprocs, true, false))
            }
            StructVariant::SetGeneral => {
                Q::Tg(GeneralSet::new(&t, nprocs, true, BoundaryStyle::General))
            }
            StructVariant::SetNormalized => Q::Tn(NormalizedSet::new(&t, nprocs, true, false)),
            StructVariant::MapGeneral => Q::Mg(GeneralDetMap::new(
                &t,
                nprocs,
                MapConfig::tiny(),
                true,
                BoundaryStyle::General,
            )),
            StructVariant::MapNormalized => {
                Q::Mn(NormalizedDetMap::new(&t, nprocs, MapConfig::tiny(), true, false))
            }
            _ => unreachable!("checked detectable() above"),
        };
        {
            let mut h = handle_of(&q, &t);
            for op in w.prefill_ops() {
                let _ = h.apply(op);
            }
        }
        q
    };
    mem.persist_everything();

    struct PidOut {
        history: Vec<TimedOp<StructOp>>,
        crash_points: u64,
        crashes: u64,
        recoveries: u64,
        entry_retries: u64,
        recovery_crashes: u64,
        fast_ops: u64,
        demotions: u64,
    }

    let sched = ThreadScheduler::new(SchedConfig::new(threads, sched_seed));
    let gate = TurnGate::new();
    let outs: Vec<PidOut> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|pid| {
                let sched = Arc::clone(&sched);
                let (mem, q, gate) = (&mem, &q, &gate);
                let ops: &[StructOp] = &w.per_pid[pid];
                s.spawn(move || {
                    let t = mem.thread(pid);
                    gate.wait_for(pid);
                    let mut h = handle_of(q, &t);
                    h.caps_set_system(system);
                    gate.advance(pid);
                    let before = h.caps_metrics();
                    let (history, window) = sweep::run_scheduled_window(
                        &t,
                        &sched,
                        pid,
                        plans,
                        ops,
                        |op| OpOutcome::Completed(h.apply(op)),
                    );
                    let m = h.caps_metrics();
                    PidOut {
                        history,
                        crash_points: window.crash_points,
                        crashes: window.crashes,
                        recoveries: m.recoveries - before.recoveries,
                        entry_retries: m.entry_retries - before.entry_retries,
                        recovery_crashes: m.recovery_crashes - before.recovery_crashes,
                        fast_ops: m.fast_ops - before.fast_ops,
                        demotions: m.demotions - before.demotions,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scheduled dfck_struct worker panicked"))
            .collect()
    });

    // Drain from a fresh, unscheduled helper-pid handle after every worker
    // joined.
    let (drained, truncated) = {
        let t = mem.thread(helper);
        let mut h = handle_of(&q, &t);
        let d = h.drain_up_to(bound + 1);
        (d.items, d.truncated)
    };
    let (audit_flags, audit_reports) = (0, Vec::new());
    let (hb_flags, hb_reports) = (mem.hb().flags(), mem.hb().take_reports());
    sweep::ConcReplayRecord {
        history: outs.iter().flat_map(|o| o.history.iter().copied()).collect(),
        drain_overflow: truncated || drained.len() > bound,
        drained,
        fingerprint: sched.fingerprint(),
        victim_crash_points: outs[victim].crash_points,
        victim_crashes: outs[victim].crashes,
        covictim_crashes: plans.covictim_pids().map(|p| outs[p].crashes).sum(),
        victim_recovery_actions: outs[victim].recoveries + outs[victim].entry_retries,
        crashes: outs.iter().map(|o| o.crashes).sum(),
        recoveries: outs.iter().map(|o| o.recoveries).sum(),
        entry_retries: outs.iter().map(|o| o.entry_retries).sum(),
        recovery_crashes: outs.iter().map(|o| o.recovery_crashes).sum(),
        fast_ops: outs.iter().map(|o| o.fast_ops).sum(),
        demotions: outs.iter().map(|o| o.demotions).sum(),
        audit_flags,
        audit_reports,
        hb_flags,
        hb_reports,
    }
}

/// The interleaved sweep for the detectable structure variants: enumerate
/// (interleaving seed × crash point) exactly like
/// [`crate::dfck::sweep_interleaved`], with the LIFO/membership oracles
/// generalized to linearization checking over the scheduler's global
/// instruction clock.
pub fn sweep_interleaved(
    variant: StructVariant,
    w: &ConcStructWorkload,
    seeds: &[u64],
    nested: &[u64],
    system: bool,
) -> ConcStructSweepReport {
    sweep_interleaved_with_workers(variant, w, seeds, nested, None, system, None)
}

/// Multi-victim interleaved sweep for the structure family, mirroring
/// [`crate::dfck::sweep_interleaved_multi`]: every scripted replay also arms
/// the pid after the victim with [`CrashPlan::once`]`(covictim_gap)`.
pub fn sweep_interleaved_multi(
    variant: StructVariant,
    w: &ConcStructWorkload,
    seeds: &[u64],
    nested: &[u64],
    covictim_gap: u64,
    system: bool,
) -> ConcStructSweepReport {
    sweep_interleaved_with_workers(variant, w, seeds, nested, Some(covictim_gap), system, None)
}

/// [`sweep_interleaved`] with an explicit fan-out worker count (`None` ⇒
/// [`sweep::sweep_workers`]); lets tests compare sequential and parallel runs.
fn sweep_interleaved_with_workers(
    variant: StructVariant,
    w: &ConcStructWorkload,
    seeds: &[u64],
    nested: &[u64],
    covictim_gap: Option<u64>,
    system: bool,
    workers_override: Option<usize>,
) -> ConcStructSweepReport {
    sweep::run_conc_sweep(
        variant,
        &format!("dfck_struct conc trace: {variant:?} {}", w.name),
        w.name,
        w.threads(),
        seeds,
        nested,
        covictim_gap,
        system,
        variant.detectable(),
        workers_override,
        || Model::initial(w.stack, &w.prefill),
        |seed, plans| conc_replay(variant, w, seed, plans, system),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_pair_histories_are_consistent() {
        for variant in StructVariant::all() {
            let w = if variant.is_stack() {
                StructWorkload::stack_pair()
            } else if variant.is_map() {
                StructWorkload::map_resize()
            } else {
                StructWorkload::set_pair()
            };
            let r = replay(variant, &w, &CrashPlan::new(Vec::new()), false);
            assert_eq!(r.crashes, 0);
            assert!(
                r.crash_points > 0,
                "{variant:?}: workload passed no crash points"
            );
            check_history(&w, &r).unwrap();
        }
    }

    #[test]
    fn stack_oracle_rejects_corrupted_histories() {
        let w = StructWorkload::stack_pair();
        let good = replay(
            StructVariant::StackGeneral,
            &w,
            &CrashPlan::new(Vec::new()),
            false,
        );
        check_history(&w, &good).unwrap();
        // Lost element.
        let mut lost = good.clone();
        lost.drained.remove(0);
        assert!(check_history(&w, &lost).is_err());
        // Duplicated element.
        let mut dup = good.clone();
        let v = dup.drained[0];
        dup.drained.insert(0, v);
        assert!(check_history(&w, &dup).is_err());
        // FIFO instead of LIFO drain order.
        let mut fifo = good.clone();
        fifo.drained.reverse();
        assert!(check_history(&w, &fifo).is_err());
        // Over-long drain is diagnosed as a cycle.
        let mut cycled = good.clone();
        cycled.drain_overflow = true;
        let err = check_history(&w, &cycled).unwrap_err();
        assert!(err.contains("cyclic"), "diagnosis missing from: {err}");
    }

    #[test]
    fn set_oracle_rejects_wrong_membership_answers() {
        let w = StructWorkload::set_pair();
        let good = replay(
            StructVariant::SetGeneral,
            &w,
            &CrashPlan::new(Vec::new()),
            false,
        );
        check_history(&w, &good).unwrap();
        assert_eq!(good.drained, vec![10, 15, 30]);
        // A flipped insert return (claims the key was present).
        let mut flipped = good.clone();
        flipped.outcomes[0] = OpOutcome::Completed(Some(0));
        assert!(check_history(&w, &flipped).is_err());
        // A remove that "succeeded" but left the key behind.
        let mut stale = good.clone();
        stale.drained = vec![10, 15, 20, 30];
        assert!(check_history(&w, &stale).is_err());
    }

    #[test]
    fn set_oracle_accepts_interrupted_ops_either_way() {
        let w = StructWorkload {
            name: "ambig",
            stack: false,
            prefill: vec![7],
            ops: vec![StructOp::Insert(42)],
        };
        let base = ReplayRecord {
            outcomes: vec![OpOutcome::Interrupted],
            drained: vec![7, 42],
            drain_overflow: false,
            crash_points: 1,
            crashes: 1,
            recoveries: 0,
            entry_retries: 0,
            recovery_crashes: 0,
            fast_ops: 0,
            demotions: 0,
            audit_flags: 0,
            audit_reports: Vec::new(),
            hb_flags: 0,
            hb_reports: Vec::new(),
        };
        check_history(&w, &base).unwrap();
        let mut not_applied = base.clone();
        not_applied.drained = vec![7];
        check_history(&w, &not_applied).unwrap();
        let mut corrupt = base.clone();
        corrupt.drained = vec![42];
        assert!(check_history(&w, &corrupt).is_err());
    }

    #[test]
    fn seeded_workloads_are_reproducible_and_mixed() {
        let a = StructWorkload::stack_seeded(9, 12);
        assert_eq!(a.ops, StructWorkload::stack_seeded(9, 12).ops);
        assert!(a.ops.iter().any(|o| matches!(o, StructOp::Push(_))));
        assert!(a.ops.iter().any(|o| matches!(o, StructOp::Pop)));
        let s = StructWorkload::set_seeded(9, 24);
        assert_eq!(s.ops, StructWorkload::set_seeded(9, 24).ops);
        assert!(s.ops.iter().any(|o| matches!(o, StructOp::Insert(_))));
        assert!(s.ops.iter().any(|o| matches!(o, StructOp::Remove(_))));
        assert!(s.ops.iter().any(|o| matches!(o, StructOp::Contains(_))));
        // Offsets shift the key/value ranges so property cases stay disjoint.
        let shifted = StructWorkload::set_seeded_full(9, 24, 3, 1_000_000);
        assert!(shifted.prefill.iter().all(|&k| k >= 1_000_000));
    }

    #[test]
    fn parallel_sweep_matches_sequential_sweep() {
        let w = StructWorkload::stack_pair();
        let seq = sweep_plan_with_workers(StructVariant::StackGeneral, &w, &[0], false, Some(1));
        let par = sweep_plan_with_workers(StructVariant::StackGeneral, &w, &[0], false, Some(4));
        assert_eq!(seq.crash_points, par.crash_points);
        assert_eq!(seq.replays, par.replays);
        assert_eq!(seq.crashes_injected, par.crashes_injected);
        assert_eq!(seq.recoveries, par.recoveries);
        assert_eq!(seq.entry_retries, par.entry_retries);
        assert_eq!(seq.recovery_crashes, par.recovery_crashes);
        assert_eq!(seq.audit_flags, par.audit_flags);
        assert_eq!(seq.hb_flags, par.hb_flags);
        assert_eq!(seq.violations, par.violations);
        assert!(seq.passed());
    }

    #[test]
    fn conc_struct_workload_generators_are_sane() {
        let sp = ConcStructWorkload::stack_pair(2);
        assert_eq!(sp.threads(), 2);
        assert_eq!(sp.drain_bound(), 4 + 2);
        let tp = ConcStructWorkload::set_pair(3);
        assert_eq!(tp.threads(), 3);
        // Inserted keys are distinct across pids; removed keys are prefilled.
        assert_eq!(tp.drain_bound(), 3 + 3);
    }

    // The full pair sweeps (every variant, single + nested, PPM + system) live
    // in tests/dfck_struct_sweep.rs, mirroring the queue sweeper's split.
}
