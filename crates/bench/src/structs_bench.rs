//! Throughput workloads for the structure family (`fig_struct`).
//!
//! Mirrors the queue harness in the crate root: every thread runs a fixed
//! operation mix on a prefilled structure and we report million operations per
//! second plus flushes/fences per operation. Stacks run push–pop pairs (two
//! ops per iteration); sets run an insert–contains–remove round on a
//! per-thread key stripe (three ops per iteration), so every iteration
//! exercises both the one-CAS and, for sets, the two-CAS (mark + unlink)
//! protocol paths.

use std::sync::Barrier;
use std::time::Instant;

use capsules::BoundaryStyle;
use pmem::{MemConfig, Mode, PMem, Stats, ThreadOptions};
use structs::{
    DetMap, GeneralDetMap, GeneralSet, GeneralStack, ListSet, MapConfig, NormalizedDetMap,
    NormalizedSet, NormalizedStack, StructHandle, StructOp, TreiberStack,
};

use crate::dfck_struct::StructVariant;
use crate::json::JsonRow;
use crate::WorkloadConfig;

/// One measured data point of the structure sweep.
#[derive(Clone, Debug)]
pub struct StructMeasurement {
    /// The variant measured.
    pub variant: StructVariant,
    /// Worker-thread count.
    pub threads: usize,
    /// Throughput in million operations per second.
    pub mops: f64,
    /// Cache-line flushes per operation.
    pub flushes_per_op: f64,
    /// Fences per operation.
    pub fences_per_op: f64,
}

impl From<&StructMeasurement> for JsonRow {
    fn from(m: &StructMeasurement) -> JsonRow {
        JsonRow {
            variant: m.variant.label().to_string(),
            threads: m.threads,
            mops: m.mops,
            flushes_per_op: m.flushes_per_op,
            fences_per_op: m.fences_per_op,
            extra: Vec::new(),
        }
    }
}

enum Built {
    StackPlain(TreiberStack),
    StackGeneral(GeneralStack),
    StackNormalized(NormalizedStack),
    SetPlain(ListSet),
    SetGeneral(GeneralSet),
    SetNormalized(NormalizedSet),
    MapPlain(DetMap),
    MapGeneral(GeneralDetMap),
    MapNormalized(NormalizedDetMap),
}

/// Bucket sizing for the throughput maps: small enough that the measured
/// window still crosses grow cycles (the resize protocol is part of the cost
/// being measured), large enough that steady-state chains stay short.
fn bench_map_config() -> MapConfig {
    MapConfig::new(64, 8)
}

fn build(variant: StructVariant, mem: &PMem, threads: usize) -> Built {
    let t = mem.thread(0);
    match variant {
        StructVariant::StackIzraelevitz => Built::StackPlain(TreiberStack::new(&t)),
        StructVariant::StackGeneral => {
            Built::StackGeneral(GeneralStack::new(&t, threads, true, BoundaryStyle::General))
        }
        StructVariant::StackNormalized => {
            Built::StackNormalized(NormalizedStack::new(&t, threads, true, false))
        }
        StructVariant::SetIzraelevitz => Built::SetPlain(ListSet::new(&t)),
        StructVariant::SetGeneral => {
            Built::SetGeneral(GeneralSet::new(&t, threads, true, BoundaryStyle::General))
        }
        StructVariant::SetNormalized => {
            Built::SetNormalized(NormalizedSet::new(&t, threads, true, false))
        }
        StructVariant::MapIzraelevitz => Built::MapPlain(DetMap::new(&t, bench_map_config())),
        StructVariant::MapGeneral => Built::MapGeneral(GeneralDetMap::new(
            &t,
            threads,
            bench_map_config(),
            true,
            BoundaryStyle::General,
        )),
        StructVariant::MapNormalized => Built::MapNormalized(NormalizedDetMap::new(
            &t,
            threads,
            bench_map_config(),
            true,
            false,
        )),
    }
}

fn handle<'q, 't, 'm>(built: &'q Built, t: &'t pmem::PThread<'m>) -> Box<dyn StructHandle + 'q>
where
    't: 'q,
    'm: 'q,
{
    match built {
        Built::StackPlain(s) => Box::new(s.handle(t)),
        Built::StackGeneral(s) => Box::new(s.handle(t)),
        Built::StackNormalized(s) => Box::new(s.handle(t)),
        Built::SetPlain(s) => Box::new(s.handle(t)),
        Built::SetGeneral(s) => Box::new(s.handle(t)),
        Built::SetNormalized(s) => Box::new(s.handle(t)),
        Built::MapPlain(m) => Box::new(m.handle(t)),
        Built::MapGeneral(m) => Box::new(m.handle(t)),
        Built::MapNormalized(m) => Box::new(m.handle(t)),
    }
}

/// Run the structure workload for one variant and thread count.
///
/// Set prefill keys are spread across the worker stripes so every thread's
/// traversals cross other threads' keys (`prefill` bounds the list length and
/// therefore the search cost, as in the paper's queue prefill).
pub fn run_struct_workload(variant: StructVariant, cfg: &WorkloadConfig) -> StructMeasurement {
    let mem = PMem::new(MemConfig::new(cfg.threads.max(1)).mode(Mode::SharedCache));
    let built = build(variant, &mem, cfg.threads);
    let opts = ThreadOptions {
        izraelevitz: matches!(
            variant,
            StructVariant::StackIzraelevitz
                | StructVariant::SetIzraelevitz
                | StructVariant::MapIzraelevitz
        ),
    };
    let stack = variant.is_stack();

    // Pre-fill from thread 0 (not timed, not counted). Sets keep a bounded
    // key universe, so prefill inserts distinct keys outside the worker range.
    {
        let t = mem.thread_with(0, opts);
        let mut h = handle(&built, &t);
        for i in 0..cfg.prefill {
            let _ = h.apply(if stack {
                StructOp::Push(i)
            } else {
                StructOp::Insert(1 + 2 * i) // distinct odd keys
            });
        }
    }
    mem.persist_everything();

    let barrier = Barrier::new(cfg.threads);
    let results: Vec<(f64, Stats, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|pid| {
                let mem = &mem;
                let built = &built;
                let barrier = &barrier;
                let threads = cfg.threads as u64;
                s.spawn(move || {
                    let t = mem.thread_with(pid, opts);
                    let mut h = handle(built, &t);
                    let iters = cfg.pairs_per_thread;
                    let base = (pid as u64) << 48;
                    barrier.wait();
                    let start = Instant::now();
                    let ops = if stack {
                        for i in 0..iters {
                            let _ = h.apply(StructOp::Push(base + i));
                            let _ = h.apply(StructOp::Pop);
                        }
                        iters * 2
                    } else {
                        for i in 0..iters {
                            // Even keys, interleaved across threads near the
                            // head of the list: disjoint between workers
                            // (distinct mod-2·threads residues), disjoint from
                            // the odd prefill, and bounded search depth for
                            // every pid (a `pid << 48` stripe would make every
                            // worker but pid 0 traverse the whole prefill on
                            // each operation).
                            let k = 2 * ((i % 64) * threads + pid as u64);
                            let _ = h.apply(StructOp::Insert(k));
                            let _ = h.apply(StructOp::Contains(k));
                            let _ = h.apply(StructOp::Remove(k));
                        }
                        iters * 3
                    };
                    (start.elapsed().as_secs_f64(), t.stats(), ops)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let wall = results.iter().map(|(t, _, _)| *t).fold(0.0f64, f64::max);
    let total_ops: u64 = results.iter().map(|(_, _, ops)| ops).sum();
    let total_stats: Stats = results.iter().map(|(_, s, _)| *s).sum();
    StructMeasurement {
        variant,
        threads: cfg.threads,
        mops: total_ops as f64 / wall / 1e6,
        flushes_per_op: total_stats.flushes_per_op(total_ops),
        fences_per_op: total_stats.fences_per_op(total_ops),
    }
}

/// Run the whole structure figure: every variant over 1..=`max_threads`
/// threads, printing the usual table and emitting `BENCH_struct.json` when
/// `DF_JSON` is set.
pub fn run_struct_figure() -> Vec<StructMeasurement> {
    let max = crate::max_threads();
    let wall = Instant::now();
    println!("# structure family: Treiber stack + linked-list set + hash map, all variants");
    println!(
        "# iterations/thread = {}, prefill = {}, threads = 1..={max}",
        crate::env_u64("DF_PAIRS", crate::DEFAULT_PAIRS),
        crate::env_u64("DF_PREFILL", crate::DEFAULT_PREFILL)
    );
    println!(
        "{:<10} {:<22} {:>10} {:>12} {:>12}",
        "threads", "variant", "Mops/s", "flushes/op", "fences/op"
    );
    let mut all = Vec::new();
    for threads in 1..=max {
        let cfg = WorkloadConfig::from_env(threads);
        for variant in StructVariant::all() {
            let m = run_struct_workload(variant, &cfg);
            println!(
                "{:<10} {:<22} {:>10.3} {:>12.2} {:>12.2}",
                m.threads,
                m.variant.label(),
                m.mops,
                m.flushes_per_op,
                m.fences_per_op
            );
            all.push(m);
        }
    }
    let rows: Vec<JsonRow> = all.iter().map(JsonRow::from).collect();
    crate::json::emit(
        "struct",
        &[
            ("pairs_per_thread", crate::env_u64("DF_PAIRS", crate::DEFAULT_PAIRS)),
            ("prefill", crate::env_u64("DF_PREFILL", crate::DEFAULT_PREFILL)),
            ("max_threads", max as u64),
        ],
        wall.elapsed().as_secs_f64(),
        &rows,
    );
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(threads: usize) -> WorkloadConfig {
        WorkloadConfig {
            threads,
            pairs_per_thread: 150,
            prefill: 20,
            adaptive: capsules::adaptive_enabled(),
        }
    }

    #[test]
    fn every_struct_variant_runs_the_workload() {
        for variant in StructVariant::all() {
            let m = run_struct_workload(variant, &tiny(2));
            assert!(m.mops > 0.0, "{variant:?} produced no throughput");
        }
    }

    #[test]
    fn detectable_variants_flush_and_izraelevitz_flushes_more_often_than_plain() {
        for variant in [
            StructVariant::StackIzraelevitz,
            StructVariant::StackGeneral,
            StructVariant::StackNormalized,
            StructVariant::SetIzraelevitz,
            StructVariant::SetGeneral,
            StructVariant::SetNormalized,
            StructVariant::MapIzraelevitz,
            StructVariant::MapGeneral,
            StructVariant::MapNormalized,
        ] {
            let m = run_struct_workload(variant, &tiny(1));
            assert!(m.flushes_per_op > 0.0, "{variant:?} should flush");
        }
    }
}
