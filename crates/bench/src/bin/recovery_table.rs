//! Supplementary table S2: recovery delay as a function of queue length.
//!
//! §10 points out that the LogQueue's recovery "requires traversing the entire
//! queue, which can be costly for reasonably sized queues", whereas the capsule
//! transformations recover by "loading the previous capsule and performing the
//! recovery function of a recoverable CAS object" — constant (or O(P)) work.
//! This binary measures both, in simulated instructions, for growing queue sizes.
//!
//! ```text
//! cargo run -p bench --release --bin recovery_table
//! DF_JSON=1 cargo run -p bench --release --bin recovery_table  # also write JSON
//! ```
//!
//! With `DF_JSON` set, emits `BENCH_recovery_table.json` (schema
//! `delayfree-bench-v1`, like the figure binaries): one row per
//! (variant, queue length), with the measured instruction count in the
//! row's `recovery_steps` / `queue_len` extra fields.

use std::time::Instant;

use bench::json::{emit, JsonRow};
use capsules::BoundaryStyle;
use delayfree::RecoveryProbe;
use pmem::{MemConfig, Mode, PMem};
use queues::{Durability, GeneralQueue, LogQueue, NormalizedQueue, QueueHandle};

fn main() {
    let sizes = [10u64, 100, 1_000, 10_000, 100_000];
    let wall = Instant::now();
    let mut rows = Vec::new();
    println!("# Table S2 — recovery steps after a crash, by queue length");
    println!(
        "{:<12} {:>16} {:>16} {:>16}",
        "queue len", "General", "Normalized", "LogQueue"
    );
    for &n in &sizes {
        let general = general_recovery_steps(n, BoundaryStyle::General);
        let normalized = normalized_recovery_steps(n);
        let log = log_recovery_steps(n);
        println!("{n:<12} {general:>16} {normalized:>16} {log:>16}");
        for (variant, steps) in [
            ("General", general),
            ("Normalized", normalized),
            ("LogQueue", log),
        ] {
            rows.push(
                JsonRow::new(variant, 1, 0.0)
                    .with("queue_len", n as f64)
                    .with("recovery_steps", steps as f64),
            );
        }
    }
    println!();
    println!("# The transformed queues recover in constant time regardless of queue length;");
    println!("# the LogQueue's recovery walks the queue, so its cost grows linearly.");
    emit(
        "recovery_table",
        &[("max_queue_len", *sizes.last().unwrap()), ("threads", 1)],
        wall.elapsed().as_secs_f64(),
        &rows,
    );
}

/// Fill a General queue with `n` nodes, simulate a restart, and count the steps of
/// re-attaching the capsule runtime (frame reload + recoverable-CAS recovery happens
/// lazily inside the first repeated capsule).
fn general_recovery_steps(n: u64, style: BoundaryStyle) -> u64 {
    let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
    let q = GeneralQueue::new(&mem.thread(0), 1, Durability::Manual, style);
    {
        let t = mem.thread(0);
        let mut h = q.handle(&t);
        for i in 0..n {
            h.enqueue(i);
        }
    }
    mem.crash_all();
    let t = mem.thread(0);
    let probe = RecoveryProbe::before(&t);
    let _handle = q.attach_handle(&t);
    probe.after(&t)
}

fn normalized_recovery_steps(n: u64) -> u64 {
    let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
    let q = NormalizedQueue::new(&mem.thread(0), 1, Durability::Manual, false);
    {
        let t = mem.thread(0);
        let mut h = q.handle(&t);
        for i in 0..n {
            h.enqueue(i);
        }
    }
    mem.crash_all();
    let t = mem.thread(0);
    let probe = RecoveryProbe::before(&t);
    let _handle = q.attach_handle(&t);
    probe.after(&t)
}

fn log_recovery_steps(n: u64) -> u64 {
    pmem::install_quiet_crash_hook();
    let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
    let t = mem.thread(0);
    let q = LogQueue::new(&t, 1);
    let mut h = q.handle(&t);
    for i in 0..n {
        h.enqueue(i);
    }
    // Interrupt one more enqueue after its log entry persisted but before it was
    // marked done, so recovery has an in-flight operation to resolve (the situation
    // recovery exists for); the capsule-based queues are measured the same way —
    // their frame always describes the in-flight operation.
    t.set_crash_policy(pmem::CrashPolicy::Countdown(12));
    let _ = pmem::catch_crash(|| h.enqueue(n));
    t.disarm_crashes();
    mem.crash_all();
    let t = mem.thread(0);
    let before = t.stats().recovery_steps;
    let _ = q.recover(&t);
    t.stats().recovery_steps - before
}
