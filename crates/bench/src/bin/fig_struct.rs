//! `fig_struct` — throughput sweep over the structure family (Treiber stack +
//! linked-list set, Izraelevitz/General/Normalized variants).
//!
//! The queues' figure binaries reproduce the paper's plots; this one extends
//! the same methodology to the shapes the paper's construction promises to
//! cover but never measures. Same knobs (`DF_PAIRS`, `DF_PREFILL`,
//! `DF_MAX_THREADS`), same `DF_JSON` emission (`BENCH_struct.json`, schema
//! `delayfree-bench-v1`).
//!
//! ```text
//! cargo run -p bench --release --bin fig_struct
//! DF_JSON=1 DF_PAIRS=2000 cargo run -p bench --release --bin fig_struct
//! ```

fn main() {
    let _ = bench::structs_bench::run_struct_figure();
}
