//! Figure 7: persistent queues compared to the original (non-persistent)
//! Michael–Scott queue, showing the inherent cost of persistence.
//!
//! ```text
//! cargo run -p bench --release --bin fig7
//! ```

fn main() {
    bench::run_figure(
        "fig7",
        "Figure 7 — persistent queues vs the original Michael-Scott queue",
        &bench::Variant::figure7(),
    );
}
