//! Instruction-overhead microbench: tight loops of raw simulated instructions
//! (read / write / CAS / flush / fence) through the `PThread` layer, with and
//! without a crash policy armed.
//!
//! Every algorithm in the workspace funnels through this layer, so its
//! per-instruction overhead is the ceiling on how close the harness can get to
//! paper-scale runs. This binary pins that overhead to a number (ns per simulated
//! instruction) so refactors of the hot path can be compared across PRs via the
//! emitted `BENCH_instr_overhead.json` (see README, "Machine-readable benchmark
//! output").
//!
//! ```text
//! cargo run -p bench --release --bin instr_overhead
//! DF_INSTR_ITERS=50000000 cargo run -p bench --release --bin instr_overhead
//! DF_JSON=1 cargo run -p bench --release --bin instr_overhead   # also write JSON
//! ```
//!
//! The `armed` rows install [`CrashPolicy::AtStep`]`(u64::MAX)` — a policy that is
//! armed (so the crash-point check cannot be short-circuited) but never fires —
//! measuring what crash-torture runs pay. The `disarmed` rows use the default
//! [`CrashPolicy::Never`], the configuration of every throughput benchmark.
//! The `hb` rows arm the [`pmem::HbAnalyzer`] (what `DF_HB=1` runs pay);
//! the `disarmed` rows are the production configuration either way and
//! `benchmarks/regress.py` gates them at 0% regression.

use std::hint::black_box;
use std::time::Instant;

use bench::json::{emit, JsonRow};
use bench::env_u64;
use pmem::{CrashPolicy, MemConfig, Mode, PAddr, PMem, PThread};

/// Time `iters` calls of `op` on a fresh thread handle; returns the JSON row.
fn run(
    mem: &PMem,
    label: &str,
    iters: u64,
    armed: bool,
    mut op: impl FnMut(&PThread<'_>, PAddr, u64),
) -> JsonRow {
    let t = mem.thread(0);
    // A line of its own so flush loops touch exactly one allocated line.
    let a = t.alloc(pmem::LINE_WORDS);
    if armed {
        t.set_crash_policy(CrashPolicy::AtStep(u64::MAX));
    }
    let _ = t.take_stats();
    let start = Instant::now();
    for i in 0..iters {
        op(&t, a, i);
    }
    let secs = start.elapsed().as_secs_f64();
    let stats = t.take_stats();
    assert!(
        stats.total_instructions() >= iters,
        "{label}: accounting lost instructions ({} counted, {} issued)",
        stats.total_instructions(),
        iters
    );
    let mops = iters as f64 / secs / 1e6;
    println!("{:<20} {:>12.3} {:>10.2}", label, mops, secs * 1e9 / iters as f64);
    JsonRow {
        variant: label.to_string(),
        threads: 1,
        mops,
        flushes_per_op: stats.flushes as f64 / iters as f64,
        fences_per_op: stats.fences as f64 / iters as f64,
        extra: Vec::new(),
    }
}

fn main() {
    let iters = env_u64("DF_INSTR_ITERS", 10_000_000);
    let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
    let wall = Instant::now();

    println!("# instruction-overhead microbench — {iters} iterations per loop");
    println!("{:<20} {:>12} {:>10}", "loop", "Mops/s", "ns/op");

    let mut rows = Vec::new();
    // `false` twice: the first pass is the plain disarmed baseline, the second
    // re-runs it with the happens-before analyzer armed (`run` creates a fresh
    // thread handle per row, so arming between passes takes effect).
    for (armed, hb) in [(false, false), (true, false), (false, true)] {
        let sfx = if hb {
            mem.hb().arm();
            "hb"
        } else {
            mem.hb().disarm();
            if armed {
                "armed"
            } else {
                "disarmed"
            }
        };
        rows.push(run(&mem, &format!("read/{sfx}"), iters, armed, |t, a, _| {
            black_box(t.read(a));
        }));
        rows.push(run(&mem, &format!("write/{sfx}"), iters, armed, |t, a, i| {
            t.write(a, i);
        }));
        rows.push(run(&mem, &format!("cas/{sfx}"), iters, armed, |t, a, i| {
            black_box(t.cas(a, i, i + 1));
        }));
        rows.push(run(&mem, &format!("flush/{sfx}"), iters, armed, |t, a, _| {
            t.flush(a);
        }));
        rows.push(run(&mem, &format!("fence/{sfx}"), iters, armed, |t, _, _| {
            t.fence();
        }));
        // The shape of a typical transformed-queue step: read, update, persist.
        rows.push(run(&mem, &format!("mixed/{sfx}"), iters, armed, |t, a, i| {
            let v = t.read(a);
            black_box(t.cas(a, v, i));
            t.write(a.offset(1), i);
            t.flush(a);
            t.fence();
        }));
    }

    emit(
        "instr_overhead",
        &[("iters", iters), ("threads", 1)],
        wall.elapsed().as_secs_f64(),
        &rows,
    );
}
