//! Figure 5: throughput of the transformed queues under the Izraelevitz
//! construction (automatic flush-after-every-access durability).
//!
//! Series: Izraelevitz-MSQ (upper bound), General, Normalized; threads 1..=max.
//!
//! ```text
//! cargo run -p bench --release --bin fig5
//! DF_PAIRS=200000 DF_PREFILL=1000000 cargo run -p bench --release --bin fig5   # paper-scale
//! ```

fn main() {
    bench::run_figure(
        "fig5",
        "Figure 5 — transformed queues with the Izraelevitz construction",
        &bench::Variant::figure5(),
    );
}
