//! Supplementary table S1: flushes and fences per operation for every queue
//! variant. §10 repeatedly explains throughput differences by flush counts
//! ("queues that contain less flushes perform better"); this table makes the counts
//! explicit.
//!
//! ```text
//! cargo run -p bench --release --bin flush_table
//! ```

use std::time::Instant;

use bench::json::{emit, JsonRow};
use bench::{run_workload, Variant, WorkloadConfig};

fn main() {
    let cfg = WorkloadConfig {
        threads: 1,
        pairs_per_thread: bench::env_u64("DF_PAIRS", 20_000),
        prefill: bench::env_u64("DF_PREFILL", 1_000),
        adaptive: capsules::adaptive_enabled(),
    };
    let wall = Instant::now();
    let mut rows = Vec::new();
    println!("# Table S1 — persistence instructions per operation (single thread)");
    println!(
        "{:<28} {:>12} {:>12} {:>12}",
        "variant", "flushes/op", "fences/op", "dup-flush/op"
    );
    for variant in [
        Variant::Msq,
        Variant::IzraelevitzMsq,
        Variant::GeneralIzraelevitz,
        Variant::NormalizedIzraelevitz,
        Variant::GeneralManual,
        Variant::GeneralOptManual,
        Variant::NormalizedManual,
        Variant::NormalizedOptManual,
        Variant::LogQueue,
        Variant::Romulus,
    ] {
        let m = run_workload(variant, &cfg);
        println!(
            "{:<28} {:>12.2} {:>12.2} {:>12.2}",
            variant.label(),
            m.flushes_per_op,
            m.fences_per_op,
            m.duplicate_flushes_per_op
        );
        rows.push(JsonRow::from(&m));
    }
    emit(
        "flush_table",
        &[
            ("pairs_per_thread", cfg.pairs_per_thread),
            ("prefill", cfg.prefill),
            ("max_threads", 1),
        ],
        wall.elapsed().as_secs_f64(),
        &rows,
    );
}
