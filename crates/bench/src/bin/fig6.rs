//! Figure 6: transformed queues with manual (hand-placed) flushes compared to prior
//! work — the LogQueue and the Romulus-style durable TM.
//!
//! Series: General, General-Opt, Normalized, Normalized-Opt, LogQueue, Romulus;
//! threads 1..=max.
//!
//! ```text
//! cargo run -p bench --release --bin fig6
//! ```

fn main() {
    bench::run_figure(
        "fig6",
        "Figure 6 — manually flushed transformed queues vs prior work",
        &bench::Variant::figure6(),
    );
}
