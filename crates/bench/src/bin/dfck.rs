//! `dfck` — exhaustive crash-point sweep over every queue variant.
//!
//! For each of MSQ-Izraelevitz, General, Normalized and LogQueue, runs the
//! seeded single-pair and multi-op workloads once per possible crash point
//! (count taken from [`pmem::Stats::crash_points`], never hard-coded), plus a
//! nested sweep that injects a second crash inside the recovery triggered by the
//! first, and checks the exactly-once / durable-linearizability oracle after
//! every replay. Exits non-zero on any oracle violation.
//!
//! ```text
//! cargo run -p bench --release --bin dfck
//! DF_DFCK_OPS=12 DF_DFCK_SEED=7 cargo run -p bench --release --bin dfck
//! DF_JSON=1 cargo run -p bench --release --bin dfck   # also write BENCH_dfck.json
//! ```
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `DF_DFCK_OPS`  | operations in the seeded multi-op workload | 8 |
//! | `DF_DFCK_SEED` | seed of the multi-op workload | 42 |
//! | `DF_DFCK_GAP`  | crash-point gap of the nested (crash-during-recovery) sweep | 0 |

use std::time::Instant;

use bench::dfck::{sweep, sweep_system, SweepReport, SweepVariant, Workload};
use bench::env_u64;
use bench::json::{emit, JsonRow};

/// The sweep's display/JSON label, shared by the console table and the emitted
/// rows so the committed baseline can be cross-referenced with CI logs.
fn label(report: &SweepReport) -> String {
    let mut label = match report.nested_gap {
        None => format!("{}/{}", report.variant.label(), report.workload),
        Some(gap) => format!("{}/{}/nested{}", report.variant.label(), report.workload, gap),
    };
    if report.system {
        label.push_str("/system");
    }
    label
}

fn row(report: &SweepReport) -> JsonRow {
    // Coverage rows have no throughput; `crashes_injected` is the
    // DF_REQUIRE_NONZERO signal (zero exactly when the sweep verified nothing).
    JsonRow::new(label(report), 1, 0.0)
        .with("crash_points", report.crash_points as f64)
        .with("replays", report.replays as f64)
        .with("crashes_injected", report.crashes_injected as f64)
        .with("recoveries", report.recoveries as f64)
        .with("entry_retries", report.entry_retries as f64)
        .with("recovery_crashes", report.recovery_crashes as f64)
        .with("oracle_failures", report.violations.len() as f64)
}

fn main() {
    let ops = env_u64("DF_DFCK_OPS", 8) as usize;
    let seed = env_u64("DF_DFCK_SEED", 42);
    let gap = env_u64("DF_DFCK_GAP", 0);
    let workloads = [Workload::pair(), Workload::seeded(seed, ops)];

    println!("# dfck — exhaustive crash-point sweep (multi-op seed {seed}, {ops} ops, nested gap {gap})");
    println!(
        "{:<42} {:>12} {:>9} {:>9} {:>11} {:>9} {:>10}",
        "sweep", "crash pts", "replays", "crashes", "recoveries", "nested", "violations"
    );

    let wall = Instant::now();
    let mut rows = Vec::new();
    let mut failures = 0usize;
    let mut reports = Vec::new();
    for variant in SweepVariant::all() {
        for workload in &workloads {
            for nested in [None, Some(gap)] {
                reports.push(sweep(variant, workload, nested));
                // Full-system sweeps (unflushed lines roll back) additionally
                // verify flush placement. The capsule variants cannot pass them
                // yet — the recoverable-CAS descriptor flush gap this sweeper
                // exposed, tracked in ROADMAP.md — so they are swept with the
                // variants whose flush discipline is complete.
                if matches!(
                    variant,
                    SweepVariant::IzraelevitzMsq | SweepVariant::LogQueue
                ) {
                    reports.push(sweep_system(variant, workload, nested));
                }
            }
        }
    }
    for report in &reports {
        let label = label(report);
        println!(
            "{:<42} {:>12} {:>9} {:>9} {:>11} {:>9} {:>10}",
            label,
            report.crash_points,
            report.replays,
            report.crashes_injected,
            report.recoveries + report.entry_retries,
            report.recovery_crashes,
            report.violations.len()
        );
        for v in &report.violations {
            eprintln!("VIOLATION [{label}]: {v}");
        }
        failures += report.violations.len();
        rows.push(row(report));
    }

    emit(
        "dfck",
        &[
            ("multi_ops", ops as u64),
            ("seed", seed),
            ("nested_gap", gap),
        ],
        wall.elapsed().as_secs_f64(),
        &rows,
    );

    if failures > 0 {
        eprintln!("dfck: {failures} oracle violation(s)");
        std::process::exit(1);
    }
    println!("# all sweeps passed the exactly-once / durable-linearizability oracle");
}
