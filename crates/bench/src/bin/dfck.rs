//! `dfck` — exhaustive crash-point sweep over every queue *and* structure
//! variant.
//!
//! For each of MSQ-Izraelevitz, General, General-Opt, Normalized,
//! Normalized-Opt and LogQueue — plus the structure family of the `structs`
//! crate (Treiber stack, linked-list set and bucketed hash map, each as
//! Izraelevitz / General / Normalized, with LIFO- and membership-exactly-once
//! oracles) — runs the seeded single-pair and multi-op workloads — and, for
//! the maps, the resize-crossing window on a [`structs::MapConfig::tiny`]
//! bucket array — once per possible crash point (count taken from
//! [`pmem::Stats::crash_points`], never hard-coded) under *both* crash
//! flavours — per-process faults (the PPM model) and full-system power
//! failures (`/system`: unflushed cache lines roll back, verifying flush
//! placement) — plus a nested sweep that injects a second crash inside the
//! recovery triggered by the first. Every replay runs with the
//! [`pmem::FlushAuditor`] and the [`pmem::HbAnalyzer`] armed and is checked
//! against the exactly-once / durable-linearizability oracle. Exits non-zero
//! on any oracle violation, auditor flag or happens-before flag. The per-crash-point replays fan out across worker threads
//! (`DF_DFCK_THREADS`), keeping the full matrix inside the CI budget.
//!
//! On top of the single-threaded matrix, the binary sweeps the **interleaved**
//! dimension: the same variants driven by 2+ deterministic cooperative threads
//! under the [`pmem::ThreadScheduler`], enumerating (interleaving seed ×
//! victim crash point) with the oracle generalized to linearization checking
//! over the scheduler's global instruction clock. All six queue variants plus
//! the General stack run concurrently by default (`DF_DFCK_CONC_VARIANTS`
//! narrows the set for bounded CI jobs).
//!
//! ```text
//! cargo run -p bench --release --bin dfck
//! DF_DFCK_OPS=12 DF_DFCK_SEED=7 cargo run -p bench --release --bin dfck
//! DF_JSON=1 cargo run -p bench --release --bin dfck   # also write BENCH_dfck.json
//! DF_DFCK_CONC_ONLY=1 DF_DFCK_CONC_SEEDS=2 cargo run -p bench --release --bin dfck
//! ```
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `DF_DFCK_OPS`  | operations in the seeded multi-op workload | 8 |
//! | `DF_DFCK_SEED` | seed of the multi-op workload | 42 |
//! | `DF_DFCK_GAP`  | crash-point gap of the nested (crash-during-recovery) sweep | 0 |
//! | `DF_DFCK_THREADS` | sweep worker threads | `available_parallelism`, ≤ 8 |
//! | `DF_DFCK_CONC_SEEDS` | interleaving seeds per concurrent sweep (0 = skip) | 8 |
//! | `DF_DFCK_CONC_THREADS` | scheduled worker pids per concurrent replay | 2 |
//! | `DF_DFCK_MV_GAP` | co-victim crash gap of the multi-victim (`/mv`) rows | 3 |
//! | `DF_DFCK_CONC_ONLY` | non-zero: run only the interleaved matrix | 0 |
//! | `DF_DFCK_CONC_VARIANTS` | comma list of variant labels to sweep concurrently | all |

use std::time::Instant;

use bench::dfck::{
    sweep, sweep_system, ConcSweepReport, ConcWorkload, SweepReport, SweepVariant, Workload,
};
use bench::dfck_struct::{
    self, ConcStructSweepReport, ConcStructWorkload, StructSweepReport, StructVariant,
    StructWorkload,
};
use bench::env_u64;
use bench::json::{emit, JsonRow};

/// The queue and structure sweep reports share every aggregate the table and
/// JSON rows need; this view lets one printer/row-builder serve both.
struct ReportView<'a> {
    variant_label: &'static str,
    workload: &'static str,
    nested: &'a [u64],
    system: bool,
    crash_points: u64,
    replays: u64,
    crashes_injected: u64,
    recoveries: u64,
    entry_retries: u64,
    recovery_crashes: u64,
    fast_ops: u64,
    demotions: u64,
    audit_flags: u64,
    hb_flags: u64,
    violations: &'a [String],
}

impl<'a> From<&'a SweepReport> for ReportView<'a> {
    fn from(r: &'a SweepReport) -> Self {
        ReportView {
            variant_label: r.variant.label(),
            workload: r.workload,
            nested: &r.nested,
            system: r.system,
            crash_points: r.crash_points,
            replays: r.replays,
            crashes_injected: r.crashes_injected,
            recoveries: r.recoveries,
            entry_retries: r.entry_retries,
            recovery_crashes: r.recovery_crashes,
            fast_ops: r.fast_ops,
            demotions: r.demotions,
            audit_flags: r.audit_flags,
            hb_flags: r.hb_flags,
            violations: &r.violations,
        }
    }
}

impl<'a> From<&'a StructSweepReport> for ReportView<'a> {
    fn from(r: &'a StructSweepReport) -> Self {
        ReportView {
            variant_label: r.variant.label(),
            workload: r.workload,
            nested: &r.nested,
            system: r.system,
            crash_points: r.crash_points,
            replays: r.replays,
            crashes_injected: r.crashes_injected,
            recoveries: r.recoveries,
            entry_retries: r.entry_retries,
            recovery_crashes: r.recovery_crashes,
            fast_ops: r.fast_ops,
            demotions: r.demotions,
            audit_flags: r.audit_flags,
            hb_flags: r.hb_flags,
            violations: &r.violations,
        }
    }
}

/// The sweep's display/JSON label, shared by the console table and the emitted
/// rows so the committed baseline can be cross-referenced with CI logs.
fn label(report: &ReportView<'_>) -> String {
    let mut label = format!("{}/{}", report.variant_label, report.workload);
    if !report.nested.is_empty() {
        let gaps: Vec<String> = report.nested.iter().map(|g| g.to_string()).collect();
        label.push_str(&format!("/nested{}", gaps.join("-")));
    }
    if report.system {
        label.push_str("/system");
    }
    label
}

fn row(report: &ReportView<'_>) -> JsonRow {
    // Coverage rows have no throughput; `crashes_injected` is the
    // DF_REQUIRE_NONZERO signal (zero exactly when the sweep verified nothing).
    JsonRow::new(label(report), 1, 0.0)
        .with("crash_points", report.crash_points as f64)
        .with("replays", report.replays as f64)
        .with("crashes_injected", report.crashes_injected as f64)
        .with("recoveries", report.recoveries as f64)
        .with("entry_retries", report.entry_retries as f64)
        .with("recovery_crashes", report.recovery_crashes as f64)
        .with("fast_ops", report.fast_ops as f64)
        .with("demotions", report.demotions as f64)
        .with("audit_flags", report.audit_flags as f64)
        .with("hb_flags", report.hb_flags as f64)
        .with("oracle_failures", report.violations.len() as f64)
}

/// The interleaved-sweep analogue of [`ReportView`]: one view over the queue
/// and structure [`bench::sweep::ConcReport`]s.
struct ConcView<'a> {
    variant_label: &'static str,
    workload: &'static str,
    threads: usize,
    seeds: usize,
    nested: &'a [u64],
    system: bool,
    distinct_interleavings: u64,
    crash_points: u64,
    replays: u64,
    crashes_injected: u64,
    multi_victim: bool,
    covictim_crashes: u64,
    recoveries: u64,
    entry_retries: u64,
    recovery_crashes: u64,
    fast_ops: u64,
    demotions: u64,
    audit_flags: u64,
    hb_flags: u64,
    violations: &'a [String],
}

impl<'a> From<&'a ConcSweepReport> for ConcView<'a> {
    fn from(r: &'a ConcSweepReport) -> Self {
        ConcView {
            variant_label: r.variant.label(),
            workload: r.workload,
            threads: r.threads,
            seeds: r.seeds.len(),
            nested: &r.nested,
            system: r.system,
            distinct_interleavings: r.distinct_interleavings,
            crash_points: r.crash_points,
            replays: r.replays,
            crashes_injected: r.crashes_injected,
            multi_victim: r.covictim_gap.is_some(),
            covictim_crashes: r.covictim_crashes,
            recoveries: r.recoveries,
            entry_retries: r.entry_retries,
            recovery_crashes: r.recovery_crashes,
            fast_ops: r.fast_ops,
            demotions: r.demotions,
            audit_flags: r.audit_flags,
            hb_flags: r.hb_flags,
            violations: &r.violations,
        }
    }
}

impl<'a> From<&'a ConcStructSweepReport> for ConcView<'a> {
    fn from(r: &'a ConcStructSweepReport) -> Self {
        ConcView {
            variant_label: r.variant.label(),
            workload: r.workload,
            threads: r.threads,
            seeds: r.seeds.len(),
            nested: &r.nested,
            system: r.system,
            distinct_interleavings: r.distinct_interleavings,
            crash_points: r.crash_points,
            replays: r.replays,
            crashes_injected: r.crashes_injected,
            multi_victim: r.covictim_gap.is_some(),
            covictim_crashes: r.covictim_crashes,
            recoveries: r.recoveries,
            entry_retries: r.entry_retries,
            recovery_crashes: r.recovery_crashes,
            fast_ops: r.fast_ops,
            demotions: r.demotions,
            audit_flags: r.audit_flags,
            hb_flags: r.hb_flags,
            violations: &r.violations,
        }
    }
}

/// Interleaved-sweep label: `variant/workload/tN[/nestedG][/mv][/system]`
/// (`/mv` = multi-victim: a co-victim pid crashes in the same replay).
fn conc_label(report: &ConcView<'_>) -> String {
    let mut label = format!(
        "{}/{}/t{}",
        report.variant_label, report.workload, report.threads
    );
    if !report.nested.is_empty() {
        let gaps: Vec<String> = report.nested.iter().map(|g| g.to_string()).collect();
        label.push_str(&format!("/nested{}", gaps.join("-")));
    }
    if report.multi_victim {
        label.push_str("/mv");
    }
    if report.system {
        label.push_str("/system");
    }
    label
}

fn conc_row(report: &ConcView<'_>) -> JsonRow {
    JsonRow::new(conc_label(report), report.threads, 0.0)
        .with("seeds", report.seeds as f64)
        .with("distinct_interleavings", report.distinct_interleavings as f64)
        .with("crash_points", report.crash_points as f64)
        .with("replays", report.replays as f64)
        .with("crashes_injected", report.crashes_injected as f64)
        .with("covictim_crashes", report.covictim_crashes as f64)
        .with("recoveries", report.recoveries as f64)
        .with("entry_retries", report.entry_retries as f64)
        .with("recovery_crashes", report.recovery_crashes as f64)
        .with("fast_ops", report.fast_ops as f64)
        .with("demotions", report.demotions as f64)
        .with("audit_flags", report.audit_flags as f64)
        .with("hb_flags", report.hb_flags as f64)
        .with("oracle_failures", report.violations.len() as f64)
}

fn main() {
    let ops = env_u64("DF_DFCK_OPS", 8) as usize;
    let seed = env_u64("DF_DFCK_SEED", 42);
    let gap = env_u64("DF_DFCK_GAP", 0);
    let conc_seeds = env_u64("DF_DFCK_CONC_SEEDS", 8);
    let conc_threads = (env_u64("DF_DFCK_CONC_THREADS", 2) as usize).max(2);
    let mv_gap = env_u64("DF_DFCK_MV_GAP", 3);
    let conc_only = env_u64("DF_DFCK_CONC_ONLY", 0) != 0;
    let conc_filter: Option<Vec<String>> = std::env::var("DF_DFCK_CONC_VARIANTS")
        .ok()
        .map(|s| {
            s.split(',')
                .map(|v| v.trim().to_string())
                .filter(|v| !v.is_empty())
                .collect()
        });
    let conc_wants =
        |label: &str| conc_filter.as_ref().map_or(true, |f| f.iter().any(|v| v == label));
    let workloads = [Workload::pair(), Workload::seeded(seed, ops)];

    println!("# dfck — exhaustive crash-point sweep (multi-op seed {seed}, {ops} ops, nested gap {gap})");

    let wall = Instant::now();
    let mut rows = Vec::new();
    let mut failures = 0usize;
    let mut reports = Vec::new();
    let mut struct_reports = Vec::new();
    if !conc_only {
        for variant in SweepVariant::all() {
            for workload in &workloads {
                for nested in [None, Some(gap)] {
                    // Per-process (PPM) sweeps, then the full-system sweeps that
                    // additionally roll unflushed lines back — every variant's
                    // flush discipline is now complete (DESIGN.md §7), so the whole
                    // matrix runs under both crash flavours.
                    reports.push(sweep(variant, workload, nested));
                    reports.push(sweep_system(variant, workload, nested));
                }
            }
            // The adaptive fast path is on by default, and an uncontended
            // single-threaded replay never demotes — so the rows above crash
            // the fast path at every point. These extra rows pin the replayed
            // queues to the full simulator so the slow path keeps dedicated
            // single-threaded crash coverage too.
            if variant.adaptive_capable() {
                for workload in &workloads {
                    let slow = workload.clone().slow_path();
                    reports.push(sweep(variant, &slow, None));
                    reports.push(sweep_system(variant, &slow, None));
                }
            }
        }
        // The structure family (Treiber stack + linked-list set) under the same
        // matrix: pair + seeded multi workloads, single + nested schedules, PPM +
        // full-system crashes, flush auditor armed.
        for variant in StructVariant::all() {
            let struct_workloads = if variant.is_stack() {
                [
                    StructWorkload::stack_pair(),
                    StructWorkload::stack_seeded(seed, ops),
                ]
            } else if variant.is_map() {
                // The map's pair analogue crosses a bucket-array resize inside
                // the swept window; the seeded multi workload shares the set's
                // generator (same op alphabet) on the tiny bucket array.
                [
                    StructWorkload::map_resize(),
                    StructWorkload::set_seeded(seed, ops),
                ]
            } else {
                [
                    StructWorkload::set_pair(),
                    StructWorkload::set_seeded(seed, ops),
                ]
            };
            for workload in &struct_workloads {
                for nested in [None, Some(gap)] {
                    struct_reports.push(dfck_struct::sweep(variant, workload, nested));
                    struct_reports.push(dfck_struct::sweep_system(variant, workload, nested));
                }
            }
        }
    }
    let views: Vec<ReportView<'_>> = reports
        .iter()
        .map(ReportView::from)
        .chain(struct_reports.iter().map(ReportView::from))
        .collect();
    if !views.is_empty() {
        println!(
            "{:<46} {:>12} {:>9} {:>9} {:>11} {:>9} {:>7} {:>5} {:>10}",
            "sweep", "crash pts", "replays", "crashes", "recoveries", "nested", "audit", "hb", "violations"
        );
    }
    for report in &views {
        let label = label(report);
        println!(
            "{:<46} {:>12} {:>9} {:>9} {:>11} {:>9} {:>7} {:>5} {:>10}",
            label,
            report.crash_points,
            report.replays,
            report.crashes_injected,
            report.recoveries + report.entry_retries,
            report.recovery_crashes,
            report.audit_flags,
            report.hb_flags,
            report.violations.len()
        );
        for v in report.violations {
            eprintln!("VIOLATION [{label}]: {v}");
        }
        failures += report.violations.len();
        rows.push(row(report));
    }

    // The interleaved matrix: (interleaving seed × victim crash point) over the
    // scheduled concurrent pair workloads — every queue variant plus the
    // General stack as the structure family's representative, under single +
    // nested schedules and both crash flavours.
    let seeds: Vec<u64> = (1..=conc_seeds).collect();
    let mut conc_reports: Vec<ConcSweepReport> = Vec::new();
    let mut conc_struct_reports: Vec<ConcStructSweepReport> = Vec::new();
    if !seeds.is_empty() {
        let w = ConcWorkload::pair(conc_threads);
        for variant in SweepVariant::all() {
            if !conc_wants(variant.label()) {
                continue;
            }
            for nested in [&[] as &[u64], &[gap]] {
                conc_reports.push(bench::dfck::sweep_interleaved(
                    variant, &w, &seeds, nested, false,
                ));
                conc_reports.push(bench::dfck::sweep_interleaved(
                    variant, &w, &seeds, nested, true,
                ));
            }
            // The multi-victim row: the same (seed × crash point) matrix, but
            // every scripted replay also crashes a co-victim pid, so one
            // process's recovery races a peer that is itself recovering.
            conc_reports.push(bench::dfck::sweep_interleaved_multi(
                variant, &w, &seeds, &[], mv_gap, false,
            ));
            // The sensitized adaptive row: trip threshold 1, so the scheduled
            // contention demotes fast-path operations inside the swept window
            // and the crash-point enumeration covers the fast→slow demotion
            // boundary plus the slow-path helping that follows a fast-path
            // success (the production threshold of 2 consecutive lost CASes
            // never trips inside these short scheduled windows).
            if variant.adaptive_capable() {
                let sens = w.clone().sensitized();
                conc_reports.push(bench::dfck::sweep_interleaved(
                    variant, &sens, &seeds, &[], false,
                ));
                conc_reports.push(bench::dfck::sweep_interleaved(
                    variant, &sens, &seeds, &[], true,
                ));
            }
        }
        for (variant, sw) in [
            (
                StructVariant::StackGeneral,
                ConcStructWorkload::stack_pair(conc_threads),
            ),
            (
                StructVariant::MapGeneral,
                ConcStructWorkload::map_pair(conc_threads),
            ),
            (
                StructVariant::MapNormalized,
                ConcStructWorkload::map_pair(conc_threads),
            ),
        ] {
            if !conc_wants(variant.label()) {
                continue;
            }
            for nested in [&[] as &[u64], &[gap]] {
                conc_struct_reports.push(dfck_struct::sweep_interleaved(
                    variant, &sw, &seeds, nested, false,
                ));
                conc_struct_reports.push(dfck_struct::sweep_interleaved(
                    variant, &sw, &seeds, nested, true,
                ));
            }
        }
        // A wider map row: three scheduled pids race the resize trigger while
        // the victim *and* a co-victim crash in the same replay.
        if conc_wants(StructVariant::MapGeneral.label()) {
            let sw3 = ConcStructWorkload::map_pair(conc_threads.max(3));
            conc_struct_reports.push(dfck_struct::sweep_interleaved_multi(
                StructVariant::MapGeneral,
                &sw3,
                &seeds,
                &[],
                mv_gap,
                false,
            ));
        }
    }
    let conc_views: Vec<ConcView<'_>> = conc_reports
        .iter()
        .map(ConcView::from)
        .chain(conc_struct_reports.iter().map(ConcView::from))
        .collect();
    if !conc_views.is_empty() {
        println!(
            "# interleaved sweeps — {} seeds × {} scheduled threads",
            conc_seeds, conc_threads
        );
        println!(
            "{:<46} {:>7} {:>13} {:>12} {:>9} {:>9} {:>11} {:>7} {:>5} {:>10}",
            "sweep",
            "seeds",
            "interleavings",
            "crash pts",
            "replays",
            "crashes",
            "recoveries",
            "audit",
            "hb",
            "violations"
        );
    }
    for report in &conc_views {
        let label = conc_label(report);
        println!(
            "{:<46} {:>7} {:>13} {:>12} {:>9} {:>9} {:>11} {:>7} {:>5} {:>10}",
            label,
            report.seeds,
            report.distinct_interleavings,
            report.crash_points,
            report.replays,
            report.crashes_injected,
            report.recoveries + report.entry_retries,
            report.audit_flags,
            report.hb_flags,
            report.violations.len()
        );
        for v in report.violations {
            eprintln!("VIOLATION [{label}]: {v}");
        }
        failures += report.violations.len();
        rows.push(conc_row(report));
    }

    emit(
        "dfck",
        &[
            ("multi_ops", ops as u64),
            ("seed", seed),
            ("nested_gap", gap),
            ("conc_seeds", conc_seeds),
            ("conc_threads", conc_threads as u64),
        ],
        wall.elapsed().as_secs_f64(),
        &rows,
    );

    if failures > 0 {
        eprintln!("dfck: {failures} oracle violation(s)");
        std::process::exit(1);
    }
    println!(
        "# all sweeps passed the exactly-once / durable-linearizability / linearization oracles (0 violations, 0 audit flags, 0 hb flags)"
    );
}
