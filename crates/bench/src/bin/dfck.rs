//! `dfck` — exhaustive crash-point sweep over every queue *and* structure
//! variant.
//!
//! For each of MSQ-Izraelevitz, General, General-Opt, Normalized,
//! Normalized-Opt and LogQueue — plus the structure family of the `structs`
//! crate (Treiber stack and linked-list set, each as Izraelevitz / General /
//! Normalized, with LIFO- and membership-exactly-once oracles) — runs the
//! seeded single-pair and multi-op workloads once per possible crash point
//! (count taken from
//! [`pmem::Stats::crash_points`], never hard-coded) under *both* crash
//! flavours — per-process faults (the PPM model) and full-system power
//! failures (`/system`: unflushed cache lines roll back, verifying flush
//! placement) — plus a nested sweep that injects a second crash inside the
//! recovery triggered by the first. Every replay runs with the
//! [`pmem::FlushAuditor`] armed and is checked against the exactly-once /
//! durable-linearizability oracle. Exits non-zero on any oracle violation or
//! auditor flag. The per-crash-point replays fan out across worker threads
//! (`DF_DFCK_THREADS`), keeping the full matrix inside the CI budget.
//!
//! ```text
//! cargo run -p bench --release --bin dfck
//! DF_DFCK_OPS=12 DF_DFCK_SEED=7 cargo run -p bench --release --bin dfck
//! DF_JSON=1 cargo run -p bench --release --bin dfck   # also write BENCH_dfck.json
//! ```
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `DF_DFCK_OPS`  | operations in the seeded multi-op workload | 8 |
//! | `DF_DFCK_SEED` | seed of the multi-op workload | 42 |
//! | `DF_DFCK_GAP`  | crash-point gap of the nested (crash-during-recovery) sweep | 0 |
//! | `DF_DFCK_THREADS` | sweep worker threads | `available_parallelism`, ≤ 8 |

use std::time::Instant;

use bench::dfck::{sweep, sweep_system, SweepReport, SweepVariant, Workload};
use bench::dfck_struct::{self, StructSweepReport, StructVariant, StructWorkload};
use bench::env_u64;
use bench::json::{emit, JsonRow};

/// The queue and structure sweep reports share every aggregate the table and
/// JSON rows need; this view lets one printer/row-builder serve both.
struct ReportView<'a> {
    variant_label: &'static str,
    workload: &'static str,
    nested: &'a [u64],
    system: bool,
    crash_points: u64,
    replays: u64,
    crashes_injected: u64,
    recoveries: u64,
    entry_retries: u64,
    recovery_crashes: u64,
    audit_flags: u64,
    violations: &'a [String],
}

impl<'a> From<&'a SweepReport> for ReportView<'a> {
    fn from(r: &'a SweepReport) -> Self {
        ReportView {
            variant_label: r.variant.label(),
            workload: r.workload,
            nested: &r.nested,
            system: r.system,
            crash_points: r.crash_points,
            replays: r.replays,
            crashes_injected: r.crashes_injected,
            recoveries: r.recoveries,
            entry_retries: r.entry_retries,
            recovery_crashes: r.recovery_crashes,
            audit_flags: r.audit_flags,
            violations: &r.violations,
        }
    }
}

impl<'a> From<&'a StructSweepReport> for ReportView<'a> {
    fn from(r: &'a StructSweepReport) -> Self {
        ReportView {
            variant_label: r.variant.label(),
            workload: r.workload,
            nested: &r.nested,
            system: r.system,
            crash_points: r.crash_points,
            replays: r.replays,
            crashes_injected: r.crashes_injected,
            recoveries: r.recoveries,
            entry_retries: r.entry_retries,
            recovery_crashes: r.recovery_crashes,
            audit_flags: r.audit_flags,
            violations: &r.violations,
        }
    }
}

/// The sweep's display/JSON label, shared by the console table and the emitted
/// rows so the committed baseline can be cross-referenced with CI logs.
fn label(report: &ReportView<'_>) -> String {
    let mut label = format!("{}/{}", report.variant_label, report.workload);
    if !report.nested.is_empty() {
        let gaps: Vec<String> = report.nested.iter().map(|g| g.to_string()).collect();
        label.push_str(&format!("/nested{}", gaps.join("-")));
    }
    if report.system {
        label.push_str("/system");
    }
    label
}

fn row(report: &ReportView<'_>) -> JsonRow {
    // Coverage rows have no throughput; `crashes_injected` is the
    // DF_REQUIRE_NONZERO signal (zero exactly when the sweep verified nothing).
    JsonRow::new(label(report), 1, 0.0)
        .with("crash_points", report.crash_points as f64)
        .with("replays", report.replays as f64)
        .with("crashes_injected", report.crashes_injected as f64)
        .with("recoveries", report.recoveries as f64)
        .with("entry_retries", report.entry_retries as f64)
        .with("recovery_crashes", report.recovery_crashes as f64)
        .with("audit_flags", report.audit_flags as f64)
        .with("oracle_failures", report.violations.len() as f64)
}

fn main() {
    let ops = env_u64("DF_DFCK_OPS", 8) as usize;
    let seed = env_u64("DF_DFCK_SEED", 42);
    let gap = env_u64("DF_DFCK_GAP", 0);
    let workloads = [Workload::pair(), Workload::seeded(seed, ops)];

    println!("# dfck — exhaustive crash-point sweep (multi-op seed {seed}, {ops} ops, nested gap {gap})");
    println!(
        "{:<46} {:>12} {:>9} {:>9} {:>11} {:>9} {:>7} {:>10}",
        "sweep", "crash pts", "replays", "crashes", "recoveries", "nested", "audit", "violations"
    );

    let wall = Instant::now();
    let mut rows = Vec::new();
    let mut failures = 0usize;
    let mut reports = Vec::new();
    for variant in SweepVariant::all() {
        for workload in &workloads {
            for nested in [None, Some(gap)] {
                // Per-process (PPM) sweeps, then the full-system sweeps that
                // additionally roll unflushed lines back — every variant's
                // flush discipline is now complete (DESIGN.md §7), so the whole
                // matrix runs under both crash flavours.
                reports.push(sweep(variant, workload, nested));
                reports.push(sweep_system(variant, workload, nested));
            }
        }
    }
    // The structure family (Treiber stack + linked-list set) under the same
    // matrix: pair + seeded multi workloads, single + nested schedules, PPM +
    // full-system crashes, flush auditor armed.
    let mut struct_reports = Vec::new();
    for variant in StructVariant::all() {
        let struct_workloads = if variant.is_stack() {
            [
                StructWorkload::stack_pair(),
                StructWorkload::stack_seeded(seed, ops),
            ]
        } else {
            [
                StructWorkload::set_pair(),
                StructWorkload::set_seeded(seed, ops),
            ]
        };
        for workload in &struct_workloads {
            for nested in [None, Some(gap)] {
                struct_reports.push(dfck_struct::sweep(variant, workload, nested));
                struct_reports.push(dfck_struct::sweep_system(variant, workload, nested));
            }
        }
    }
    let views: Vec<ReportView<'_>> = reports
        .iter()
        .map(ReportView::from)
        .chain(struct_reports.iter().map(ReportView::from))
        .collect();
    for report in &views {
        let label = label(report);
        println!(
            "{:<46} {:>12} {:>9} {:>9} {:>11} {:>9} {:>7} {:>10}",
            label,
            report.crash_points,
            report.replays,
            report.crashes_injected,
            report.recoveries + report.entry_retries,
            report.recovery_crashes,
            report.audit_flags,
            report.violations.len()
        );
        for v in report.violations {
            eprintln!("VIOLATION [{label}]: {v}");
        }
        failures += report.violations.len();
        rows.push(row(report));
    }

    emit(
        "dfck",
        &[
            ("multi_ops", ops as u64),
            ("seed", seed),
            ("nested_gap", gap),
        ],
        wall.elapsed().as_secs_f64(),
        &rows,
    );

    if failures > 0 {
        eprintln!("dfck: {failures} oracle violation(s)");
        std::process::exit(1);
    }
    println!(
        "# all sweeps passed the exactly-once / durable-linearizability oracle (flush auditor armed, 0 flags)"
    );
}
