//! `dfck` — the deterministic, exhaustive crash-point sweeper.
//!
//! The paper's correctness claim (Definition 2.2, Theorems 5.1/6.1/7.1) is that
//! capsule re-execution is *invisible at every possible crash point*. Random
//! crash-torture (`CrashPolicy::Random`) only samples that space; this engine
//! enumerates it: it runs a seeded workload once crash-free to learn the total
//! number of crash points `N` (from [`pmem::Stats::crash_points`] — never
//! hard-coded), then replays the identical workload once per crash point
//! `k = 0..N` with a scripted [`CrashPlan`] that crashes exactly there — and, in
//! nested mode, crashes *again* a fixed number of crash points later, which lands
//! inside the recovery code the first crash triggered.
//!
//! After every replay the engine drains the queue (the uniform
//! [`QueueHandle::drain`] hook) and checks an oracle over the full observable
//! history — every operation's return value plus the final queue contents:
//!
//! * **exactly-once** for the detectable variants (General, Normalized, LogQueue):
//!   the history must be *identical* to the crash-free run's, at every crash
//!   point — crashes must be invisible;
//! * **durable linearizability** for the Izraelevitz-transformed MSQ, which is
//!   durable but *not* detectable: an interrupted operation may or may not have
//!   taken effect, so the oracle accepts a history iff it is consistent with some
//!   choice of applied/not-applied for each interrupted operation.
//!
//! This is the verification discipline of kaist-cp/memento's per-crash-point
//! detectability checks, applied to every queue variant in the workspace through
//! one engine.
//!
//! The sweep engine itself (baseline, fan-out, report assembly, the oracle
//! machinery) lives in [`crate::sweep`], shared with [`crate::dfck_struct`];
//! this module contributes the queue drivers and workloads.
//!
//! ## Interleaved sweeps: (schedule × crash point)
//!
//! [`sweep_interleaved`] extends the enumeration with a second axis: a
//! deterministic cooperative interleaving of 2–3 worker processes driving
//! *one shared queue* under [`pmem::ThreadScheduler`]. Each scheduler seed
//! picks a distinct instruction-level interleaving (reproducible bit-for-bit
//! from the seed), a victim pid sweeps every crash point of its scheduled
//! window, and the oracle generalizes from "identical to the crash-free
//! history" to "consistent with *some* valid linearization of the concurrent
//! history" ([`sweep::check_linearizable`]), with timestamps taken from the
//! scheduler's global instruction clock.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::Arc;

use capsules::{BoundaryStyle, CapsuleMetrics, ContentionMeasure};
use pmem::{
    catch_crash, CrashPlan, MemConfig, Mode, PMem, PThread, SchedConfig, ThreadOptions,
    ThreadScheduler,
};
use queues::{
    Durability, GeneralQueue, LogQueue, MsQueue, NormalizedQueue, QueueHandle, RecoveredOp,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::sweep::{self, OpOutcome, ReplayRecord, TimedOp, TurnGate};

/// The queue variants the sweeper covers, one per recovery discipline (plus the
/// hand-optimised capsule configurations, whose compact single-copy frames have
/// their own flush-ordering obligations worth sweeping separately).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepVariant {
    /// MSQ + Izraelevitz construction: durably linearizable, *not* detectable.
    IzraelevitzMsq,
    /// The CAS-Read (General) transformation: detectable via capsules.
    General,
    /// General with compact frames (the paper's General-Opt configuration).
    GeneralOpt,
    /// The Normalized transformation: detectable via capsules.
    Normalized,
    /// Normalized with compact frames + inline CAS lists (Normalized-Opt).
    NormalizedOpt,
    /// Friedman et al.'s LogQueue: detectable via its operation log.
    LogQueue,
}

impl SweepVariant {
    /// Short label for tables and JSON rows.
    pub fn label(&self) -> &'static str {
        match self {
            SweepVariant::IzraelevitzMsq => "MSQ-Izraelevitz",
            SweepVariant::General => "General",
            SweepVariant::GeneralOpt => "General-Opt",
            SweepVariant::Normalized => "Normalized",
            SweepVariant::NormalizedOpt => "Normalized-Opt",
            SweepVariant::LogQueue => "LogQueue",
        }
    }

    /// Every swept variant.
    pub fn all() -> Vec<SweepVariant> {
        vec![
            SweepVariant::IzraelevitzMsq,
            SweepVariant::General,
            SweepVariant::GeneralOpt,
            SweepVariant::Normalized,
            SweepVariant::NormalizedOpt,
            SweepVariant::LogQueue,
        ]
    }

    /// Whether the variant guarantees exactly-once (detectable) semantics, i.e.
    /// whether the strict oracle applies.
    pub fn detectable(&self) -> bool {
        !matches!(self, SweepVariant::IzraelevitzMsq)
    }

    /// Whether the variant has a contention-adaptive fast path (the four
    /// capsule variants). Only these get the extra slow-path-pinned sweep
    /// rows — the fast path is the default, so the simulator-only route
    /// would otherwise lose single-threaded crash coverage.
    pub fn adaptive_capable(&self) -> bool {
        matches!(
            self,
            SweepVariant::General
                | SweepVariant::GeneralOpt
                | SweepVariant::Normalized
                | SweepVariant::NormalizedOpt
        )
    }
}

/// One workload operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Enqueue this value.
    Enqueue(u64),
    /// Dequeue once.
    Dequeue,
}

/// A deterministic workload: a prefilled queue plus a fixed operation sequence.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Name used in reports ("pair", "multi", …).
    pub name: &'static str,
    /// Values present in the queue before the swept window starts.
    pub prefill: Vec<u64>,
    /// The operations executed inside the swept window.
    pub ops: Vec<Op>,
    /// Whether the replayed queues keep their contention-adaptive fast path
    /// (the default). [`Workload::slow_path`] pins it off so the matrix
    /// retains dedicated simulator-route crash coverage — an uncontended
    /// adaptive replay never demotes, so without these rows the slow path
    /// would only ever be crashed through interleaved sweeps.
    pub adaptive: bool,
}

impl Workload {
    /// The canonical single-op-pair workload: one enqueue followed by one dequeue
    /// on a lightly prefilled queue (so the dequeue hits a non-trivial head).
    pub fn pair() -> Workload {
        Workload {
            name: "pair",
            prefill: (0..4).map(|i| 10_000 + i).collect(),
            ops: vec![Op::Enqueue(1), Op::Dequeue],
            adaptive: true,
        }
    }

    /// A seeded multi-op workload: `nops` operations, each independently an
    /// enqueue (fresh value) or a dequeue, drawn from a reproducible RNG.
    pub fn seeded(seed: u64, nops: usize) -> Workload {
        Workload::seeded_full(seed, nops, 3, 0)
    }

    /// The fully parameterised seeded workload generator (the surface the
    /// property-based tests sample): `nops` operations on a queue prefilled with
    /// `prefill` values, with every value offset by `value_base` so distinct
    /// property cases produce disjoint value ranges. `seeded(seed, n)` is
    /// `seeded_full(seed, n, 3, 0)`.
    pub fn seeded_full(seed: u64, nops: usize, prefill: usize, value_base: u64) -> Workload {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut next_value = value_base + 1;
        let ops = (0..nops)
            .map(|_| {
                if rng.gen_bool(0.5) {
                    let v = next_value;
                    next_value += 1;
                    Op::Enqueue(v)
                } else {
                    Op::Dequeue
                }
            })
            .collect();
        Workload {
            name: "multi",
            prefill: (0..prefill as u64).map(|i| value_base + 10_000 + i).collect(),
            ops,
            adaptive: true,
        }
    }

    /// Pin the replayed queues to the full simulator (adaptive fast path
    /// off), relabelling the workload so reports and JSON rows stay
    /// distinguishable from their adaptive twins.
    pub fn slow_path(mut self) -> Workload {
        self.adaptive = false;
        self.name = match self.name {
            "pair" => "pair-slow",
            "multi" => "multi-slow",
            other => other,
        };
        self
    }
}

/// A concurrent workload: per-pid operation sequences over one shared queue.
#[derive(Clone, Debug)]
pub struct ConcWorkload {
    /// Name used in reports ("conc-pair", "conc-multi").
    pub name: &'static str,
    /// Values present in the queue before the scheduled window starts.
    pub prefill: Vec<u64>,
    /// Per-pid operation sequences; `per_pid.len()` is the process count.
    pub per_pid: Vec<Vec<Op>>,
    /// Contention-trip-threshold override for the adaptive capsule variants
    /// (`None` = the production policy). The sensitized demotion sweeps set
    /// this to 1 so *any* lost fast-path CAS demotes the operation, making
    /// the fast→slow demotion boundary deterministically reachable under the
    /// scheduled interleavings.
    pub trip_threshold: Option<u32>,
}

impl ConcWorkload {
    /// The canonical concurrent pair workload: every pid enqueues one
    /// distinctive value and dequeues once, on a lightly prefilled queue.
    pub fn pair(threads: usize) -> ConcWorkload {
        ConcWorkload {
            name: "conc-pair",
            prefill: (0..4).map(|i| 10_000 + i).collect(),
            per_pid: (0..threads as u64)
                .map(|p| vec![Op::Enqueue(100 + p), Op::Dequeue])
                .collect(),
            trip_threshold: None,
        }
    }

    /// A seeded concurrent workload: every pid runs its own reproducible
    /// operation sequence with a disjoint value range.
    pub fn seeded(seed: u64, threads: usize, nops_per_pid: usize) -> ConcWorkload {
        ConcWorkload {
            name: "conc-multi",
            prefill: (0..3).map(|i| 10_000 + i).collect(),
            per_pid: (0..threads as u64)
                .map(|p| {
                    Workload::seeded_full(seed ^ (p + 1), nops_per_pid, 0, (p + 1) << 32).ops
                })
                .collect(),
            trip_threshold: None,
        }
    }

    /// Sensitize the adaptive capsule variants' contention policy: a trip
    /// threshold of 1 makes every lost fast-path CAS demote its operation,
    /// so the interleaved sweeps crash the demotion boundary rather than
    /// hoping the production streak (2 consecutive losses) ever trips inside
    /// a short scheduled window. Relabels the workload for reports.
    pub fn sensitized(mut self) -> ConcWorkload {
        self.trip_threshold = Some(1);
        self.name = match self.name {
            "conc-pair" => "conc-pair-trip1",
            "conc-multi" => "conc-multi-trip1",
            other => other,
        };
        self
    }

    /// The number of scheduled processes.
    pub fn threads(&self) -> usize {
        self.per_pid.len()
    }

    /// Upper bound on the elements a replay can leave behind (see
    /// [`drain_bound`]): the prefill plus every enqueue of every pid.
    pub fn drain_bound(&self) -> usize {
        self.prefill.len()
            + self
                .per_pid
                .iter()
                .flatten()
                .filter(|op| matches!(op, Op::Enqueue(_)))
                .count()
    }
}

/// The FIFO reference model the oracles run against.
#[derive(Clone, PartialEq, Eq, Hash)]
struct FifoModel(VecDeque<u64>);

impl sweep::SeqModel for FifoModel {
    type Op = Op;
    fn apply(&mut self, op: Op) -> Option<u64> {
        match op {
            Op::Enqueue(v) => {
                self.0.push_back(v);
                None
            }
            Op::Dequeue => self.0.pop_front(),
        }
    }
    fn final_drain(&self) -> Vec<u64> {
        self.0.iter().copied().collect()
    }
}

/// Aggregate result of sweeping one (variant, workload) combination
/// (the shared [`sweep::Report`] instantiated at the queue variants).
pub type SweepReport = sweep::Report<SweepVariant>;

/// Aggregate result of an interleaved (schedule × crash point) sweep
/// (the shared [`sweep::ConcReport`] instantiated at the queue variants).
pub type ConcSweepReport = sweep::ConcReport<SweepVariant>;

/// Upper bound on the elements a replay of `workload` can leave behind:
/// the prefill plus every enqueue in the swept window (whether or not it
/// completed — an interrupted enqueue may still have applied). Draining is
/// bounded by this figure so a cyclic next-pointer chain produced by a
/// recovery bug terminates the replay with an over-long drain (an oracle
/// violation carrying the offending schedule) instead of hanging the sweep.
fn drain_bound(workload: &Workload) -> usize {
    workload.prefill.len()
        + workload
            .ops
            .iter()
            .filter(|op| matches!(op, Op::Enqueue(_)))
            .count()
}

/// Run one operation through the LogQueue's detectable-recovery protocol
/// (documented on `LogQueue::logged_seq`), retrying through crashes — nested
/// ones included — until the operation's exact result is known. Shared by the
/// single-threaded replays and the scheduled concurrent workers; crashes are
/// applied kill-aware via [`sweep::apply_driver_crash`].
fn log_queue_op<H: QueueHandle>(
    q: &LogQueue,
    t: &PThread<'_>,
    h: &mut H,
    op: Op,
    system: bool,
    recoveries: &Cell<u64>,
    recovery_crashes: &Cell<u64>,
) -> Option<u64> {
    // Single site for the per-crash bookkeeping (stats, machine fault flag)
    // so every catch in the driver accounts identically.
    let crashed = |during_recovery: bool| {
        if during_recovery {
            recovery_crashes.set(recovery_crashes.get() + 1);
        }
        sweep::apply_driver_crash(t, system);
    };
    // The restart/recovery code itself executes simulated instructions, so a
    // (nested) crash can land inside it too. Every read-only step of the
    // driver protocol is therefore retried until it completes — safe because
    // those steps never write.
    let read_only = |f: &dyn Fn() -> u64, during_recovery: bool| loop {
        match catch_crash(f) {
            Ok(v) => break v,
            Err(_) => {
                crashed(during_recovery);
                // Restarting the protocol read is itself the recovery action
                // for a crash that lands between operations.
                recoveries.set(recoveries.get() + 1);
            }
        }
    };
    loop {
        let seq_before = read_only(&|| q.logged_seq(t), false);
        let attempt = catch_crash(|| match op {
            Op::Enqueue(v) => {
                h.enqueue(v);
                None
            }
            Op::Dequeue => h.dequeue(),
        });
        match attempt {
            Ok(ret) => break ret,
            Err(_) => {
                crashed(false);
                // Recovery itself passes crash points; a nested schedule
                // element may interrupt it. Recovery only reads, so retrying
                // from scratch is safe.
                let verdict = loop {
                    match catch_crash(|| q.recover(t)) {
                        Ok(v) => break v,
                        Err(_) => crashed(true),
                    }
                };
                recoveries.set(recoveries.get() + 1);
                if read_only(&|| q.logged_seq(t), true) == seq_before {
                    // log_begin never completed: the queue is untouched;
                    // re-run the operation from scratch.
                    continue;
                }
                match verdict {
                    RecoveredOp::None => {
                        // The log entry is marked done: the operation
                        // completed before the crash.
                        break match op {
                            Op::Enqueue(_) => None,
                            Op::Dequeue => loop {
                                match catch_crash(|| q.logged_result(t)) {
                                    Ok(r) => break r,
                                    Err(_) => crashed(true),
                                }
                            },
                        };
                    }
                    RecoveredOp::EnqueueApplied => break None,
                    RecoveredOp::DequeueApplied(v) => break Some(v),
                    RecoveredOp::EnqueueNotApplied | RecoveredOp::DequeueNotApplied => continue,
                }
            }
        }
    }
}

/// Run one replay of `workload` on `variant` with the given crash script
/// (a disarmed/empty plan ⇒ crash-free baseline). `system` selects full-system
/// crash semantics (see [`sweep::apply_driver_crash`] and [`sweep`]).
///
/// Every replay runs with the [`pmem::FlushAuditor`] armed: on top of the
/// history oracle, any flush-ordering violation is caught *at the faulting
/// instruction* and reported with the replay (all swept variants claim a
/// complete flush discipline, so the auditor must stay silent).
fn replay(
    variant: SweepVariant,
    workload: &Workload,
    plan: &CrashPlan,
    system: bool,
) -> ReplayRecord {
    pmem::install_quiet_crash_hook();
    let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
    mem.flush_auditor().arm();
    // The happens-before analyzer rides every replay too (handles created
    // below pick the armed bit up at construction): every crash point is also
    // checked for synchronization- and persist-order discipline.
    mem.hb().arm();
    let audit_of = |mem: &PMem| (mem.flush_auditor().flags(), mem.flush_auditor().take_reports());
    let hb_of = |mem: &PMem| (mem.hb().flags(), mem.hb().take_reports());
    // Every drain below is bounded: `bound + 1` dequeues is enough to prove a
    // corrupted (cyclic) chain without ever spinning on it.
    let bound = drain_bound(workload);
    match variant {
        SweepVariant::IzraelevitzMsq => {
            let t = mem.thread_with(0, ThreadOptions { izraelevitz: true });
            let q = MsQueue::new(&t);
            let mut h = q.handle(&t);
            for &v in &workload.prefill {
                h.enqueue(v);
            }
            mem.persist_everything();
            let _ = t.take_stats();
            if plan.remaining() > 0 {
                t.set_crash_schedule(plan.clone());
            }
            let mut outcomes = Vec::with_capacity(workload.ops.len());
            for &op in &workload.ops {
                // The plain MSQ has no recovery protocol: a crash unwinds to
                // here, and the process cannot tell whether the interrupted
                // operation took effect (that is the point of Figure 5's
                // comparison). Record the ambiguity for the oracle and move on.
                let outcome = catch_crash(|| match op {
                    Op::Enqueue(v) => {
                        h.enqueue(v);
                        None
                    }
                    Op::Dequeue => h.dequeue(),
                });
                outcomes.push(match outcome {
                    Ok(ret) => OpOutcome::Completed(ret),
                    Err(_) => {
                        sweep::apply_driver_crash(&t, system);
                        OpOutcome::Interrupted
                    }
                });
            }
            let window = t.stats();
            t.disarm_crashes();
            let drained = h.drain_up_to(bound + 1);
            let (audit_flags, audit_reports) = audit_of(&mem);
            let (hb_flags, hb_reports) = hb_of(&mem);
            ReplayRecord {
                outcomes,
                drain_overflow: drained.len() > bound,
                drained,
                crash_points: window.crash_points,
                crashes: window.crashes,
                recoveries: 0,
                entry_retries: 0,
                recovery_crashes: 0,
                fast_ops: 0,
                demotions: 0,
                audit_flags,
                audit_reports,
                hb_flags,
                hb_reports,
            }
        }
        SweepVariant::General
        | SweepVariant::GeneralOpt
        | SweepVariant::Normalized
        | SweepVariant::NormalizedOpt => {
            enum H<'q, 't, 'm> {
                G(queues::GeneralQueueHandle<'q, 't, 'm>),
                N(queues::NormalizedQueueHandle<'q, 't, 'm>),
            }
            impl H<'_, '_, '_> {
                fn run(&mut self, op: Op) -> Option<u64> {
                    let h: &mut dyn QueueHandle = match self {
                        H::G(h) => h,
                        H::N(h) => h,
                    };
                    match op {
                        Op::Enqueue(v) => {
                            h.enqueue(v);
                            None
                        }
                        Op::Dequeue => h.dequeue(),
                    }
                }
                fn drain_up_to(&mut self, max: usize) -> Vec<u64> {
                    match self {
                        H::G(h) => h.drain_up_to(max),
                        H::N(h) => h.drain_up_to(max),
                    }
                }
                fn metrics(&mut self) -> CapsuleMetrics {
                    match self {
                        H::G(h) => h.runtime_mut().metrics(),
                        H::N(h) => h.runtime_mut().metrics(),
                    }
                }
            }
            let t = mem.thread(0);
            let general;
            let normalized;
            let mut h = match variant {
                SweepVariant::General | SweepVariant::GeneralOpt => {
                    let style = if variant == SweepVariant::GeneralOpt {
                        BoundaryStyle::Compact
                    } else {
                        BoundaryStyle::General
                    };
                    // `slow_path` workloads pin the simulator route; adaptive
                    // workloads keep the queue's own default (the `DF_ADAPTIVE`
                    // knob), so the default matrix crashes the fast path.
                    general = GeneralQueue::new(&t, 1, Durability::Manual, style)
                        .with_adaptive(workload.adaptive && capsules::adaptive_enabled());
                    H::G(general.handle(&t))
                }
                _ => {
                    let optimised = variant == SweepVariant::NormalizedOpt;
                    normalized = NormalizedQueue::new(&t, 1, Durability::Manual, optimised)
                        .with_adaptive(workload.adaptive && capsules::adaptive_enabled());
                    H::N(normalized.handle(&t))
                }
            };
            match &mut h {
                H::G(hh) => hh.runtime_mut().set_system_crashes(system),
                H::N(hh) => hh.runtime_mut().set_system_crashes(system),
            }
            for &v in &workload.prefill {
                h.run(Op::Enqueue(v));
            }
            mem.persist_everything();
            let metrics_before = h.metrics();
            let _ = t.take_stats();
            if plan.remaining() > 0 {
                t.set_crash_schedule(plan.clone());
            }
            // The capsule runtime absorbs every crash inside `run_op`: the
            // operation completes with its exact result no matter where the
            // schedule fires. That completion *is* the detectability claim the
            // oracle then verifies against the crash-free history.
            let outcomes = workload
                .ops
                .iter()
                .map(|&op| OpOutcome::Completed(h.run(op)))
                .collect();
            let window = t.stats();
            t.disarm_crashes();
            let drained = h.drain_up_to(bound + 1);
            let metrics = h.metrics();
            let (audit_flags, audit_reports) = audit_of(&mem);
            let (hb_flags, hb_reports) = hb_of(&mem);
            ReplayRecord {
                outcomes,
                drain_overflow: drained.len() > bound,
                drained,
                crash_points: window.crash_points,
                crashes: window.crashes,
                recoveries: metrics.recoveries - metrics_before.recoveries,
                entry_retries: metrics.entry_retries - metrics_before.entry_retries,
                recovery_crashes: metrics.recovery_crashes - metrics_before.recovery_crashes,
                fast_ops: metrics.fast_ops - metrics_before.fast_ops,
                demotions: metrics.demotions - metrics_before.demotions,
                audit_flags,
                audit_reports,
                hb_flags,
                hb_reports,
            }
        }
        SweepVariant::LogQueue => {
            let t = mem.thread(0);
            let q = LogQueue::new(&t, 1);
            let mut h = q.handle(&t);
            for &v in &workload.prefill {
                h.enqueue(v);
            }
            mem.persist_everything();
            let _ = t.take_stats();
            if plan.remaining() > 0 {
                t.set_crash_schedule(plan.clone());
            }
            let recoveries = Cell::new(0u64);
            let recovery_crashes = Cell::new(0u64);
            let outcomes = workload
                .ops
                .iter()
                .map(|&op| {
                    OpOutcome::Completed(log_queue_op(
                        &q,
                        &t,
                        &mut h,
                        op,
                        system,
                        &recoveries,
                        &recovery_crashes,
                    ))
                })
                .collect();
            let window = t.stats();
            t.disarm_crashes();
            let drained = h.drain_up_to(bound + 1);
            let (audit_flags, audit_reports) = audit_of(&mem);
            let (hb_flags, hb_reports) = hb_of(&mem);
            ReplayRecord {
                outcomes,
                drain_overflow: drained.len() > bound,
                drained,
                crash_points: window.crash_points,
                crashes: window.crashes,
                recoveries: recoveries.get(),
                entry_retries: 0,
                recovery_crashes: recovery_crashes.get(),
                fast_ops: 0,
                demotions: 0,
                audit_flags,
                audit_reports,
                hb_flags,
                hb_reports,
            }
        }
    }
}

/// Check one replayed history against the oracle.
///
/// The model is a plain FIFO queue over 64-bit values, driven through the
/// shared forked-model checker ([`sweep::check_sequential`]): for every
/// interrupted operation (non-detectable variants only) the model forks into
/// "applied" and "not applied" branches, and the replay passes iff at least
/// one branch reproduces every completed operation's return value *and* the
/// final drained contents.
fn check_history(workload: &Workload, r: &ReplayRecord) -> Result<(), String> {
    if r.drain_overflow {
        return Err(format!(
            "drain returned {} elements but at most {} could have survived the \
             replay — corrupted (cyclic?) next-pointer chain",
            r.drained.len(),
            drain_bound(workload)
        ));
    }
    sweep::check_sequential(
        FifoModel(workload.prefill.iter().copied().collect()),
        &workload.ops,
        &r.outcomes,
        &r.drained,
    )
}

/// Sweep every crash point of `workload` on `variant` with per-process crash
/// semantics (the PPM model of §2.1: the thread's volatile state is lost, the
/// shared cache survives) — the crash flavour the paper's detectability
/// theorems quantify over.
///
/// `nested_gap = None` injects exactly one crash per replay (at point `k`);
/// `Some(gap)` injects a second crash `gap` crash points after the first, which
/// for `gap` near zero lands inside the recovery triggered by the first crash —
/// the crash-during-recovery schedules of the issue's Definition 2.2 argument.
pub fn sweep(variant: SweepVariant, workload: &Workload, nested_gap: Option<u64>) -> SweepReport {
    let nested: Vec<u64> = nested_gap.into_iter().collect();
    sweep_plan(variant, workload, &nested, false)
}

/// Like [`sweep`] but with *full-system* crashes: every injected crash also
/// rolls unflushed cache lines back to their durable contents, so the sweep
/// additionally verifies the variant's flush placement. Sound for every
/// variant since the recoverable-CAS layer adopted the durable-announcement
/// flush discipline ([`rcas::RcasSpace::with_durability`], DESIGN.md §7) —
/// before that, the capsule variants failed exactly here (a rollback zeroed
/// published-but-unflushed announcement state and `check_recovery` re-applied
/// the CAS, duplicating an element).
pub fn sweep_system(
    variant: SweepVariant,
    workload: &Workload,
    nested_gap: Option<u64>,
) -> SweepReport {
    let nested: Vec<u64> = nested_gap.into_iter().collect();
    sweep_plan(variant, workload, &nested, true)
}

/// The general sweep entry point: replay once per crash point `k`, each replay
/// running the scripted schedule `[k, nested[0], nested[1], …]` — so `nested =
/// [m]` is the crash-during-recovery sweep and `nested = [m, n]` the depth-2
/// crash-during-recovery-of-recovery sweep. `system` selects full-system crash
/// semantics (every crash also rolls unflushed cache lines back).
///
/// The per-`k` replays are independent (each builds a fresh machine), so the
/// sweep fans them out across OS threads — `DF_DFCK_THREADS` bounds the worker
/// count (default: `available_parallelism`, capped at 8). Results are merged in
/// `k` order, so reports are deterministic regardless of the worker count.
pub fn sweep_plan(
    variant: SweepVariant,
    workload: &Workload,
    nested: &[u64],
    system: bool,
) -> SweepReport {
    sweep_plan_with_workers(variant, workload, nested, system, None)
}

/// [`sweep_plan`] with an explicit worker count (`None` ⇒
/// [`sweep::sweep_workers`]); lets tests compare sequential and parallel runs
/// without racing on the process environment.
fn sweep_plan_with_workers(
    variant: SweepVariant,
    workload: &Workload,
    nested: &[u64],
    system: bool,
    workers_override: Option<usize>,
) -> SweepReport {
    sweep::run_sweep(
        variant,
        &format!("dfck trace: {variant:?} {}", workload.name),
        workload.name,
        nested,
        system,
        variant.detectable(),
        workers_override,
        |plan| replay(variant, workload, plan, system),
        |r| check_history(workload, r),
    )
}

/// Run one *scheduled* replay: the workload's pids drive one shared queue
/// under the deterministic [`ThreadScheduler`] seeded with `sched_seed`;
/// `plans` assigns each victim/co-victim pid its crash schedule, and
/// full-system crashes kill the scheduled peers through the scheduler. Public
/// so the determinism tests can compare fingerprints and timed histories
/// across runs; sweeps go through [`sweep_interleaved`].
pub fn conc_replay(
    variant: SweepVariant,
    w: &ConcWorkload,
    sched_seed: u64,
    plans: &sweep::VictimPlans,
    system: bool,
) -> sweep::ConcReplayRecord<Op> {
    pmem::install_quiet_crash_hook();
    let threads = w.threads();
    let victim = plans.victim();
    assert!(plans.max_pid() < threads, "victim pid out of range");
    // Pids 0..threads run the scheduled window; one extra *helper* pid does
    // the prefill and the post-join drain. The helper must not share a pid
    // with any worker: pid-indexed recovery state (the rcas announcement
    // slot, the log row) assumes sequence numbers are unique per pid, and a
    // fresh handle restarts its sequence counter — a worker recovering over a
    // triple installed by a same-pid prefill handle would false-positively
    // conclude its own interrupted CAS already took effect.
    let helper = threads;
    let nprocs = threads + 1;
    let mem = PMem::new(MemConfig::new(nprocs).mode(Mode::SharedCache));
    // Unlike the flush auditor (disarmed below — its reader discipline is
    // single-threaded-only, see the comment), the happens-before analyzer
    // stays armed in scheduled replays: its model is schedule-aware (baton
    // handovers draw no edges, crashes are barriers), so the interleaved
    // sweeps double as race checks over every enumerated interleaving.
    mem.hb().arm();
    // The flush auditor encodes the Izraelevitz flush-before-publish reader
    // discipline, which only cross-pid reads can violate — and every swept
    // variant legitimately departs from it once real concurrency is in play.
    // MSQ and LogQueue publish first and let readers help (the reader
    // flushes). The capsule variants persist the *announcement* lines before
    // the publishing CAS and flush the CAS target afterwards: a peer may read
    // the published-but-unflushed word in that gap, which is safe because the
    // word is its own flush unit — any later persist of that line (the
    // reader's own CAS+flush included) makes the predecessor's value durable
    // with it, and a full-system crash rolls the reader's dependent state back
    // together with it. The single-threaded sweeps (where no cross-pid read
    // exists and the discipline is exact) keep the auditor armed; the
    // scheduled replays disarm it and rely on the linearization oracle plus
    // the /system rollback semantics to catch real durability bugs.
    let opts = ThreadOptions {
        izraelevitz: variant == SweepVariant::IzraelevitzMsq,
    };
    let bound = w.drain_bound();

    enum Q {
        Msq(MsQueue),
        Gen(GeneralQueue),
        Norm(NormalizedQueue),
        Log(LogQueue),
    }
    // Build and prefill from the helper pid, unscheduled and crash-free, then
    // make the prefill durable so it survives any later rollback.
    let q = {
        let t = mem.thread_with(helper, opts);
        match variant {
            SweepVariant::IzraelevitzMsq => {
                let q = MsQueue::new(&t);
                {
                    let mut h = q.handle(&t);
                    for &v in &w.prefill {
                        h.enqueue(v);
                    }
                }
                Q::Msq(q)
            }
            SweepVariant::General | SweepVariant::GeneralOpt => {
                let style = if variant == SweepVariant::GeneralOpt {
                    BoundaryStyle::Compact
                } else {
                    BoundaryStyle::General
                };
                let mut q = GeneralQueue::new(&t, nprocs, Durability::Manual, style);
                if let Some(threshold) = w.trip_threshold {
                    q = q.with_contention(ContentionMeasure::new().with_threshold(threshold));
                }
                {
                    let mut h = q.handle(&t);
                    for &v in &w.prefill {
                        h.enqueue(v);
                    }
                }
                Q::Gen(q)
            }
            SweepVariant::Normalized | SweepVariant::NormalizedOpt => {
                let optimised = variant == SweepVariant::NormalizedOpt;
                let mut q = NormalizedQueue::new(&t, nprocs, Durability::Manual, optimised);
                if let Some(threshold) = w.trip_threshold {
                    q = q.with_contention(ContentionMeasure::new().with_threshold(threshold));
                }
                {
                    let mut h = q.handle(&t);
                    for &v in &w.prefill {
                        h.enqueue(v);
                    }
                }
                Q::Norm(q)
            }
            SweepVariant::LogQueue => {
                let q = LogQueue::new(&t, nprocs);
                {
                    let mut h = q.handle(&t);
                    for &v in &w.prefill {
                        h.enqueue(v);
                    }
                }
                Q::Log(q)
            }
        }
    };
    mem.persist_everything();

    struct PidOut {
        history: Vec<TimedOp<Op>>,
        crash_points: u64,
        crashes: u64,
        recoveries: u64,
        entry_retries: u64,
        recovery_crashes: u64,
        fast_ops: u64,
        demotions: u64,
    }

    let sched = ThreadScheduler::new(SchedConfig::new(threads, sched_seed));
    let gate = TurnGate::new();
    let outs: Vec<PidOut> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|pid| {
                let sched = Arc::clone(&sched);
                let (mem, q, gate) = (&mem, &q, &gate);
                let ops: &[Op] = &w.per_pid[pid];
                s.spawn(move || {
                    let t = mem.thread_with(pid, opts);
                    gate.wait_for(pid);
                    match q {
                        Q::Msq(q) => {
                            let mut h = q.handle(&t);
                            gate.advance(pid);
                            let (history, window) = sweep::run_scheduled_window(
                                &t,
                                &sched,
                                pid,
                                plans,
                                ops,
                                |op| {
                                    match catch_crash(|| match op {
                                        Op::Enqueue(v) => {
                                            h.enqueue(v);
                                            None
                                        }
                                        Op::Dequeue => h.dequeue(),
                                    }) {
                                        Ok(ret) => OpOutcome::Completed(ret),
                                        Err(_) => {
                                            sweep::apply_driver_crash(&t, system);
                                            OpOutcome::Interrupted
                                        }
                                    }
                                },
                            );
                            PidOut {
                                history,
                                crash_points: window.crash_points,
                                crashes: window.crashes,
                                recoveries: 0,
                                entry_retries: 0,
                                recovery_crashes: 0,
                                fast_ops: 0,
                                demotions: 0,
                            }
                        }
                        Q::Gen(q) => {
                            let mut h = q.handle(&t);
                            h.runtime_mut().set_system_crashes(system);
                            gate.advance(pid);
                            let before = h.runtime_mut().metrics();
                            let (history, window) = sweep::run_scheduled_window(
                                &t,
                                &sched,
                                pid,
                                plans,
                                ops,
                                |op| {
                                    OpOutcome::Completed(match op {
                                        Op::Enqueue(v) => {
                                            h.enqueue(v);
                                            None
                                        }
                                        Op::Dequeue => h.dequeue(),
                                    })
                                },
                            );
                            let m = h.runtime_mut().metrics();
                            PidOut {
                                history,
                                crash_points: window.crash_points,
                                crashes: window.crashes,
                                recoveries: m.recoveries - before.recoveries,
                                entry_retries: m.entry_retries - before.entry_retries,
                                recovery_crashes: m.recovery_crashes - before.recovery_crashes,
                                fast_ops: m.fast_ops - before.fast_ops,
                                demotions: m.demotions - before.demotions,
                            }
                        }
                        Q::Norm(q) => {
                            let mut h = q.handle(&t);
                            h.runtime_mut().set_system_crashes(system);
                            gate.advance(pid);
                            let before = h.runtime_mut().metrics();
                            let (history, window) = sweep::run_scheduled_window(
                                &t,
                                &sched,
                                pid,
                                plans,
                                ops,
                                |op| {
                                    OpOutcome::Completed(match op {
                                        Op::Enqueue(v) => {
                                            h.enqueue(v);
                                            None
                                        }
                                        Op::Dequeue => h.dequeue(),
                                    })
                                },
                            );
                            let m = h.runtime_mut().metrics();
                            PidOut {
                                history,
                                crash_points: window.crash_points,
                                crashes: window.crashes,
                                recoveries: m.recoveries - before.recoveries,
                                entry_retries: m.entry_retries - before.entry_retries,
                                recovery_crashes: m.recovery_crashes - before.recovery_crashes,
                                fast_ops: m.fast_ops - before.fast_ops,
                                demotions: m.demotions - before.demotions,
                            }
                        }
                        Q::Log(q) => {
                            let mut h = q.handle(&t);
                            gate.advance(pid);
                            let recoveries = Cell::new(0u64);
                            let recovery_crashes = Cell::new(0u64);
                            let (history, window) = sweep::run_scheduled_window(
                                &t,
                                &sched,
                                pid,
                                plans,
                                ops,
                                |op| {
                                    OpOutcome::Completed(log_queue_op(
                                        q,
                                        &t,
                                        &mut h,
                                        op,
                                        system,
                                        &recoveries,
                                        &recovery_crashes,
                                    ))
                                },
                            );
                            PidOut {
                                history,
                                crash_points: window.crash_points,
                                crashes: window.crashes,
                                recoveries: recoveries.get(),
                                entry_retries: 0,
                                recovery_crashes: recovery_crashes.get(),
                                fast_ops: 0,
                                demotions: 0,
                            }
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scheduled dfck worker panicked"))
            .collect()
    });

    // Drain from a fresh, unscheduled helper-pid handle after every worker
    // joined.
    let drained = {
        let t = mem.thread_with(helper, opts);
        match &q {
            Q::Msq(q) => {
                let mut h = q.handle(&t);
                h.drain_up_to(bound + 1)
            }
            Q::Gen(q) => {
                let mut h = q.handle(&t);
                h.drain_up_to(bound + 1)
            }
            Q::Norm(q) => {
                let mut h = q.handle(&t);
                h.drain_up_to(bound + 1)
            }
            Q::Log(q) => {
                let mut h = q.handle(&t);
                h.drain_up_to(bound + 1)
            }
        }
    };
    sweep::ConcReplayRecord {
        history: outs.iter().flat_map(|o| o.history.iter().copied()).collect(),
        drain_overflow: drained.len() > bound,
        drained,
        fingerprint: sched.fingerprint(),
        victim_crash_points: outs[victim].crash_points,
        victim_crashes: outs[victim].crashes,
        covictim_crashes: plans.covictim_pids().map(|p| outs[p].crashes).sum(),
        victim_recovery_actions: outs[victim].recoveries + outs[victim].entry_retries,
        crashes: outs.iter().map(|o| o.crashes).sum(),
        recoveries: outs.iter().map(|o| o.recoveries).sum(),
        entry_retries: outs.iter().map(|o| o.entry_retries).sum(),
        recovery_crashes: outs.iter().map(|o| o.recovery_crashes).sum(),
        fast_ops: outs.iter().map(|o| o.fast_ops).sum(),
        demotions: outs.iter().map(|o| o.demotions).sum(),
        audit_flags: 0,
        audit_reports: Vec::new(),
        hb_flags: mem.hb().flags(),
        hb_reports: mem.hb().take_reports(),
    }
}

/// The interleaved sweep: enumerate (interleaving seed × crash point) for one
/// queue variant. For every seed, the crash-free scheduled baseline learns how
/// many crash points the victim pid (`seed % threads`, rotating across the
/// seed set) passes, then every one of them is replayed with the scripted
/// schedule `[k, nested…]` — under per-process (`system = false`) or
/// full-system (`system = true`) crash semantics. Histories are checked with
/// the linearization oracle ([`sweep::check_linearizable`]); detectable
/// variants must additionally complete every operation exactly-once and run a
/// recovery action on the victim for every injected crash.
pub fn sweep_interleaved(
    variant: SweepVariant,
    w: &ConcWorkload,
    seeds: &[u64],
    nested: &[u64],
    system: bool,
) -> ConcSweepReport {
    sweep_interleaved_with_workers(variant, w, seeds, nested, None, system, None)
}

/// The multi-victim interleaved sweep: like [`sweep_interleaved`], but every
/// scripted replay *also* arms the pid after the victim with the independent
/// single-crash plan [`CrashPlan::once`]`(covictim_gap)` — two pids crash in
/// one scheduled replay, so one pid's recovery (helping, announcement
/// re-reads, frame replay) races a peer that is itself crashing and
/// recovering. The report's `covictim_crashes` counts how often the second
/// schedule actually fired; the engine fails the sweep if it never did.
pub fn sweep_interleaved_multi(
    variant: SweepVariant,
    w: &ConcWorkload,
    seeds: &[u64],
    nested: &[u64],
    covictim_gap: u64,
    system: bool,
) -> ConcSweepReport {
    sweep_interleaved_with_workers(variant, w, seeds, nested, Some(covictim_gap), system, None)
}

/// [`sweep_interleaved`] with an explicit fan-out worker count (`None` ⇒
/// [`sweep::sweep_workers`]); lets tests compare sequential and parallel runs.
fn sweep_interleaved_with_workers(
    variant: SweepVariant,
    w: &ConcWorkload,
    seeds: &[u64],
    nested: &[u64],
    covictim_gap: Option<u64>,
    system: bool,
    workers_override: Option<usize>,
) -> ConcSweepReport {
    sweep::run_conc_sweep(
        variant,
        &format!("dfck conc trace: {variant:?} {}", w.name),
        w.name,
        w.threads(),
        seeds,
        nested,
        covictim_gap,
        system,
        variant.detectable(),
        workers_override,
        || FifoModel(w.prefill.iter().copied().collect()),
        |seed, plans| conc_replay(variant, w, seed, plans, system),
    )
}

#[cfg(test)]
mod tests {

    use super::*;

    /// A slow-path enqueue under a full-system crash that lands between the
    /// E_LINK boundary's flush and its fence — the window where the compact
    /// frame could persist without the node it references. This was a real
    /// flag the analyzer raised against the `-Opt` fence elision (the node
    /// persist preceded a *boundary*, not a CAS); pinned here against the
    /// fixed discipline.
    #[test]
    fn generalopt_slow_path_boundary_crash_runs_hb_clean() {
        let w = Workload::pair().slow_path();
        let r = replay(SweepVariant::GeneralOpt, &w, &CrashPlan::once(15), true);
        assert_eq!(r.hb_flags, 0, "{:?}", r.hb_reports);
    }

    #[test]
    fn baseline_pair_history_is_consistent() {
        for variant in SweepVariant::all() {
            let w = Workload::pair();
            let r = replay(variant, &w, &CrashPlan::new(Vec::new()), false);
            assert_eq!(r.crashes, 0);
            assert!(
                r.crash_points > 0,
                "{variant:?}: workload passed no crash points"
            );
            check_history(&w, &r).unwrap();
        }
    }

    #[test]
    fn oracle_rejects_lost_and_duplicated_elements() {
        let w = Workload::pair();
        let good = replay(SweepVariant::General, &w, &CrashPlan::new(Vec::new()), false);
        check_history(&w, &good).unwrap();
        // Lost element: drop the first drained value.
        let mut lost = good.clone();
        lost.drained.remove(0);
        assert!(check_history(&w, &lost).is_err());
        // Duplicated element: drain reports a value twice.
        let mut dup = good.clone();
        let v = dup.drained[0];
        dup.drained.insert(0, v);
        assert!(check_history(&w, &dup).is_err());
        // Wrong dequeue return.
        let mut wrong = good.clone();
        for o in &mut wrong.outcomes {
            if let OpOutcome::Completed(Some(v)) = o {
                *v += 1;
            }
        }
        assert!(check_history(&w, &wrong).is_err());
    }

    #[test]
    fn oracle_accepts_ambiguous_interrupted_op_either_way() {
        // An interrupted enqueue may or may not have applied; both final states
        // must be accepted, anything else rejected.
        let w = Workload {
            name: "ambig",
            prefill: vec![7],
            ops: vec![Op::Enqueue(42)],
            adaptive: true,
        };
        let base = ReplayRecord {
            outcomes: vec![OpOutcome::Interrupted],
            drained: vec![7, 42],
            drain_overflow: false,
            crash_points: 1,
            crashes: 1,
            recoveries: 0,
            entry_retries: 0,
            recovery_crashes: 0,
            fast_ops: 0,
            demotions: 0,
            audit_flags: 0,
            audit_reports: Vec::new(),
            hb_flags: 0,
            hb_reports: Vec::new(),
        };
        check_history(&w, &base).unwrap();
        let mut not_applied = base.clone();
        not_applied.drained = vec![7];
        check_history(&w, &not_applied).unwrap();
        let mut corrupt = base.clone();
        corrupt.drained = vec![42, 7];
        assert!(check_history(&w, &corrupt).is_err());
    }

    // The full pair sweeps (single + nested, every variant) live in
    // tests/dfck_sweep.rs; duplicating the multi-thousand-replay runs here
    // would double the cost of every `cargo test` for identical coverage.

    /// Deterministic regression for the bounded-drain oracle path: an
    /// artificially cycled queue (the shape a buggy recovery could splice)
    /// must terminate the drain at the bound and fail the oracle — never hang.
    #[test]
    fn cyclic_next_chain_is_reported_as_violation_not_hang() {
        use queues::node::next_addr;
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        let t = mem.thread(0);
        let q = MsQueue::new(&t);
        let mut h = q.handle(&t);
        for v in [1, 2, 3] {
            h.enqueue(v);
        }
        // Walk sentinel -> n1 -> n2 -> n3 and splice n3.next back to n1.
        let sentinel = pmem::PAddr::from_raw(t.read(q.head_addr()));
        let n1 = pmem::PAddr::from_raw(t.read(next_addr(sentinel)));
        let n2 = pmem::PAddr::from_raw(t.read(next_addr(n1)));
        let n3 = pmem::PAddr::from_raw(t.read(next_addr(n2)));
        assert!(!n3.is_null());
        t.write(next_addr(n3), n1.to_raw());
        let w = Workload {
            name: "cycled",
            prefill: Vec::new(),
            ops: vec![Op::Enqueue(1), Op::Enqueue(2), Op::Enqueue(3)],
            adaptive: true,
        };
        let bound = drain_bound(&w);
        assert_eq!(bound, 3);
        // The bounded drain stops after bound + 1 dequeues despite the cycle…
        let drained = h.drain_up_to(bound + 1);
        assert_eq!(drained.len(), bound + 1, "drain must stop at the bound");
        // …and the oracle rejects the over-long history with the cycle diagnosis.
        let r = ReplayRecord {
            outcomes: vec![OpOutcome::Completed(None); 3],
            drain_overflow: drained.len() > bound,
            drained,
            crash_points: 0,
            crashes: 0,
            recoveries: 0,
            entry_retries: 0,
            recovery_crashes: 0,
            fast_ops: 0,
            demotions: 0,
            audit_flags: 0,
            audit_reports: Vec::new(),
            hb_flags: 0,
            hb_reports: Vec::new(),
        };
        let err = check_history(&w, &r).unwrap_err();
        assert!(err.contains("cyclic"), "diagnosis missing from: {err}");
    }

    #[test]
    fn drain_bound_counts_prefill_plus_enqueues() {
        let w = Workload::pair();
        assert_eq!(drain_bound(&w), w.prefill.len() + 1);
        let all_deq = Workload {
            name: "deq",
            prefill: vec![1, 2],
            ops: vec![Op::Dequeue, Op::Dequeue],
            adaptive: true,
        };
        assert_eq!(drain_bound(&all_deq), 2);
    }

    #[test]
    fn seeded_workload_is_reproducible_and_mixed() {
        let a = Workload::seeded(9, 12);
        let b = Workload::seeded(9, 12);
        assert_eq!(a.ops, b.ops);
        assert!(a.ops.iter().any(|o| matches!(o, Op::Enqueue(_))));
        assert!(a.ops.iter().any(|o| matches!(o, Op::Dequeue)));
        assert_ne!(Workload::seeded(10, 12).ops, a.ops);
    }

    #[test]
    fn seeded_full_offsets_values_and_prefill() {
        let w = Workload::seeded_full(9, 12, 5, 1_000_000);
        assert_eq!(w.prefill.len(), 5);
        assert!(w.prefill.iter().all(|&v| v >= 1_000_000));
        assert!(w
            .ops
            .iter()
            .all(|o| !matches!(o, Op::Enqueue(v) if *v <= 1_000_000)));
        // Same seed/ops as the plain generator, just shifted ranges.
        assert_eq!(w.ops.len(), Workload::seeded(9, 12).ops.len());
    }

    #[test]
    fn parallel_sweep_matches_sequential_sweep() {
        // The fan-out must not change what is verified: run the same sweep with
        // one worker and with several, and compare every aggregate.
        let w = Workload::pair();
        let seq = sweep_plan_with_workers(SweepVariant::General, &w, &[0], false, Some(1));
        let par = sweep_plan_with_workers(SweepVariant::General, &w, &[0], false, Some(4));
        assert_eq!(seq.crash_points, par.crash_points);
        assert_eq!(seq.replays, par.replays);
        assert_eq!(seq.crashes_injected, par.crashes_injected);
        assert_eq!(seq.recoveries, par.recoveries);
        assert_eq!(seq.entry_retries, par.entry_retries);
        assert_eq!(seq.recovery_crashes, par.recovery_crashes);
        assert_eq!(seq.audit_flags, par.audit_flags);
        assert_eq!(seq.hb_flags, par.hb_flags);
        assert_eq!(seq.violations, par.violations);
        assert!(seq.passed());
    }

    #[test]
    fn opt_variants_are_swept_and_pass_the_pair_sweep() {
        for variant in [SweepVariant::GeneralOpt, SweepVariant::NormalizedOpt] {
            let report = sweep(variant, &Workload::pair(), None);
            assert!(report.passed(), "{variant:?}: {:?}", report.violations);
            assert!(report.crash_points > 0);
        }
    }

    #[test]
    fn conc_workload_generators_are_sane() {
        let pair = ConcWorkload::pair(3);
        assert_eq!(pair.threads(), 3);
        assert_eq!(pair.drain_bound(), 4 + 3);
        // Per-pid value ranges are disjoint.
        let a = ConcWorkload::seeded(7, 2, 6);
        assert_eq!(a.threads(), 2);
        assert_eq!(a.per_pid, ConcWorkload::seeded(7, 2, 6).per_pid);
        assert_ne!(a.per_pid[0], a.per_pid[1]);
    }

    #[test]
    fn parallel_interleaved_sweep_matches_sequential_sweep() {
        // Same discipline as the sequential sweeps, under the new
        // (seed × crash point) dimension: the fan-out worker count must not
        // change any aggregate of the merged report.
        let w = ConcWorkload::pair(2);
        let seeds = [1, 2];
        let seq = sweep_interleaved_with_workers(
            SweepVariant::General,
            &w,
            &seeds,
            &[],
            None,
            false,
            Some(1),
        );
        let par = sweep_interleaved_with_workers(
            SweepVariant::General,
            &w,
            &seeds,
            &[],
            None,
            false,
            Some(4),
        );
        assert_eq!(seq.crash_points, par.crash_points);
        assert_eq!(seq.replays, par.replays);
        assert_eq!(seq.crashes_injected, par.crashes_injected);
        assert_eq!(seq.recoveries, par.recoveries);
        assert_eq!(seq.entry_retries, par.entry_retries);
        assert_eq!(seq.recovery_crashes, par.recovery_crashes);
        assert_eq!(seq.audit_flags, par.audit_flags);
        assert_eq!(seq.hb_flags, par.hb_flags);
        assert_eq!(seq.distinct_interleavings, par.distinct_interleavings);
        assert_eq!(seq.violations, par.violations);
        assert!(seq.passed(), "{:?}", seq.violations);
    }
}
