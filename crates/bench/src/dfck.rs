//! `dfck` — the deterministic, exhaustive crash-point sweeper.
//!
//! The paper's correctness claim (Definition 2.2, Theorems 5.1/6.1/7.1) is that
//! capsule re-execution is *invisible at every possible crash point*. Random
//! crash-torture (`CrashPolicy::Random`) only samples that space; this engine
//! enumerates it: it runs a seeded workload once crash-free to learn the total
//! number of crash points `N` (from [`pmem::Stats::crash_points`] — never
//! hard-coded), then replays the identical workload once per crash point
//! `k = 0..N` with a scripted [`CrashPlan`] that crashes exactly there — and, in
//! nested mode, crashes *again* a fixed number of crash points later, which lands
//! inside the recovery code the first crash triggered.
//!
//! After every replay the engine drains the queue (the uniform
//! [`QueueHandle::drain`] hook) and checks an oracle over the full observable
//! history — every operation's return value plus the final queue contents:
//!
//! * **exactly-once** for the detectable variants (General, Normalized, LogQueue):
//!   the history must be *identical* to the crash-free run's, at every crash
//!   point — crashes must be invisible;
//! * **durable linearizability** for the Izraelevitz-transformed MSQ, which is
//!   durable but *not* detectable: an interrupted operation may or may not have
//!   taken effect, so the oracle accepts a history iff it is consistent with some
//!   choice of applied/not-applied for each interrupted operation.
//!
//! This is the verification discipline of kaist-cp/memento's per-crash-point
//! detectability checks, applied to every queue variant in the workspace through
//! one engine.

use std::collections::VecDeque;

use capsules::{BoundaryStyle, CapsuleMetrics};
use pmem::{catch_crash, CrashPlan, MemConfig, Mode, PMem, ThreadOptions};
use queues::{
    Durability, GeneralQueue, LogQueue, MsQueue, NormalizedQueue, QueueHandle, RecoveredOp,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The queue variants the sweeper covers, one per recovery discipline (plus the
/// hand-optimised capsule configurations, whose compact single-copy frames have
/// their own flush-ordering obligations worth sweeping separately).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepVariant {
    /// MSQ + Izraelevitz construction: durably linearizable, *not* detectable.
    IzraelevitzMsq,
    /// The CAS-Read (General) transformation: detectable via capsules.
    General,
    /// General with compact frames (the paper's General-Opt configuration).
    GeneralOpt,
    /// The Normalized transformation: detectable via capsules.
    Normalized,
    /// Normalized with compact frames + inline CAS lists (Normalized-Opt).
    NormalizedOpt,
    /// Friedman et al.'s LogQueue: detectable via its operation log.
    LogQueue,
}

impl SweepVariant {
    /// Short label for tables and JSON rows.
    pub fn label(&self) -> &'static str {
        match self {
            SweepVariant::IzraelevitzMsq => "MSQ-Izraelevitz",
            SweepVariant::General => "General",
            SweepVariant::GeneralOpt => "General-Opt",
            SweepVariant::Normalized => "Normalized",
            SweepVariant::NormalizedOpt => "Normalized-Opt",
            SweepVariant::LogQueue => "LogQueue",
        }
    }

    /// Every swept variant.
    pub fn all() -> Vec<SweepVariant> {
        vec![
            SweepVariant::IzraelevitzMsq,
            SweepVariant::General,
            SweepVariant::GeneralOpt,
            SweepVariant::Normalized,
            SweepVariant::NormalizedOpt,
            SweepVariant::LogQueue,
        ]
    }

    /// Whether the variant guarantees exactly-once (detectable) semantics, i.e.
    /// whether the strict oracle applies.
    pub fn detectable(&self) -> bool {
        !matches!(self, SweepVariant::IzraelevitzMsq)
    }
}

/// One workload operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Enqueue this value.
    Enqueue(u64),
    /// Dequeue once.
    Dequeue,
}

/// A deterministic workload: a prefilled queue plus a fixed operation sequence.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Name used in reports ("pair", "multi", …).
    pub name: &'static str,
    /// Values present in the queue before the swept window starts.
    pub prefill: Vec<u64>,
    /// The operations executed inside the swept window.
    pub ops: Vec<Op>,
}

impl Workload {
    /// The canonical single-op-pair workload: one enqueue followed by one dequeue
    /// on a lightly prefilled queue (so the dequeue hits a non-trivial head).
    pub fn pair() -> Workload {
        Workload {
            name: "pair",
            prefill: (0..4).map(|i| 10_000 + i).collect(),
            ops: vec![Op::Enqueue(1), Op::Dequeue],
        }
    }

    /// A seeded multi-op workload: `nops` operations, each independently an
    /// enqueue (fresh value) or a dequeue, drawn from a reproducible RNG.
    pub fn seeded(seed: u64, nops: usize) -> Workload {
        Workload::seeded_full(seed, nops, 3, 0)
    }

    /// The fully parameterised seeded workload generator (the surface the
    /// property-based tests sample): `nops` operations on a queue prefilled with
    /// `prefill` values, with every value offset by `value_base` so distinct
    /// property cases produce disjoint value ranges. `seeded(seed, n)` is
    /// `seeded_full(seed, n, 3, 0)`.
    pub fn seeded_full(seed: u64, nops: usize, prefill: usize, value_base: u64) -> Workload {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut next_value = value_base + 1;
        let ops = (0..nops)
            .map(|_| {
                if rng.gen_bool(0.5) {
                    let v = next_value;
                    next_value += 1;
                    Op::Enqueue(v)
                } else {
                    Op::Dequeue
                }
            })
            .collect();
        Workload {
            name: "multi",
            prefill: (0..prefill as u64).map(|i| value_base + 10_000 + i).collect(),
            ops,
        }
    }
}

/// What the replay driver observed for one operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpOutcome {
    /// The operation ran to completion; a dequeue's return value is carried.
    Completed(Option<u64>),
    /// A crash interrupted the operation and the variant cannot tell whether it
    /// took effect (only possible for non-detectable variants).
    Interrupted,
}

/// Everything one replay produced, for the oracle and the report.
#[derive(Clone, Debug)]
struct Replay {
    outcomes: Vec<OpOutcome>,
    drained: Vec<u64>,
    /// The final drain returned more elements than the replay could possibly
    /// have left in the queue (prefill + every enqueue in the window): the
    /// next-pointer chain is corrupted — almost certainly cyclic. Reported as
    /// an oracle violation; the bounded drain is what keeps the sweep from
    /// hanging instead.
    drain_overflow: bool,
    /// Crash points passed inside the swept window (meaningful for the crash-free
    /// baseline replay, where it defines the sweep range).
    crash_points: u64,
    /// Simulated crashes the thread experienced.
    crashes: u64,
    /// Frame recoveries (capsule variants) or recovery calls (LogQueue).
    recoveries: u64,
    /// Crashes absorbed by retrying the operation-entry boundary (capsule
    /// variants only; no frame recovery is needed on that path).
    entry_retries: u64,
    /// Crashes that landed inside recovery itself (the nested path).
    recovery_crashes: u64,
    /// Flush-order violations the armed [`pmem::FlushAuditor`] flagged during
    /// this replay (cross-thread reads of published-unflushed lines, or such
    /// lines destroyed by a full-system rollback).
    audit_flags: u64,
    /// The auditor's human-readable reports for those flags.
    audit_reports: Vec<String>,
}

/// Aggregate result of sweeping one (variant, workload) combination.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// The swept variant.
    pub variant: SweepVariant,
    /// Workload name ("pair" / "multi").
    pub workload: &'static str,
    /// Crash schedule family: the gaps injected *after* the swept crash point.
    /// Empty for the single-crash sweep; `[m]` for the nested sweep that crashes
    /// again `m` crash points into the recovery the first crash triggered;
    /// `[m, n]` for the depth-2 schedules that crash a third time `n` points
    /// into the recovery-of-recovery; and so on.
    pub nested: Vec<u64>,
    /// Whether crashes were full-system power failures (unflushed lines rolled
    /// back) rather than per-process faults.
    pub system: bool,
    /// Total crash points of the crash-free run (the sweep enumerated all of them).
    pub crash_points: u64,
    /// Replays executed (= crash points, plus the crash-free baseline).
    pub replays: u64,
    /// Total simulated crashes injected across all replays.
    pub crashes_injected: u64,
    /// Total recoveries observed across all replays.
    pub recoveries: u64,
    /// Crashes absorbed by entry-boundary retries across all replays.
    pub entry_retries: u64,
    /// Crashes that interrupted recovery itself (proof the nested path ran).
    pub recovery_crashes: u64,
    /// Flush-order violations the armed auditor flagged across all replays
    /// (also folded into `violations`). Must be zero.
    pub audit_flags: u64,
    /// Oracle violations, as human-readable descriptions. Must be empty.
    pub violations: Vec<String>,
}

impl SweepReport {
    /// Whether every replay satisfied the oracle.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Apply a caught crash to the machine: a full-system power failure (roll back
/// every unflushed cache line — sound here because each replay is
/// single-threaded and the crashed thread has unwound) or the default
/// per-process fault that leaves the shared cache intact.
fn crash_machine(mem: &PMem, system: bool) {
    if system {
        mem.crash_all();
    } else {
        mem.crash_thread(0);
    }
    let _ = mem.take_crashed(0);
}

/// Upper bound on the elements a replay of `workload` can leave behind:
/// the prefill plus every enqueue in the swept window (whether or not it
/// completed — an interrupted enqueue may still have applied). Draining is
/// bounded by this figure so a cyclic next-pointer chain produced by a
/// recovery bug terminates the replay with an over-long drain (an oracle
/// violation carrying the offending schedule) instead of hanging the sweep.
fn drain_bound(workload: &Workload) -> usize {
    workload.prefill.len()
        + workload
            .ops
            .iter()
            .filter(|op| matches!(op, Op::Enqueue(_)))
            .count()
}

/// Run one replay of `workload` on `variant` with the given crash script
/// (a disarmed/empty plan ⇒ crash-free baseline). `system` selects full-system
/// crash semantics (see [`crash_machine`] and [`sweep`]).
///
/// Every replay runs with the [`pmem::FlushAuditor`] armed: on top of the
/// history oracle, any flush-ordering violation is caught *at the faulting
/// instruction* and reported with the replay (all swept variants claim a
/// complete flush discipline, so the auditor must stay silent).
fn replay(variant: SweepVariant, workload: &Workload, plan: &CrashPlan, system: bool) -> Replay {
    pmem::install_quiet_crash_hook();
    let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
    mem.flush_auditor().arm();
    let audit_of = |mem: &PMem| (mem.flush_auditor().flags(), mem.flush_auditor().take_reports());
    // Every drain below is bounded: `bound + 1` dequeues is enough to prove a
    // corrupted (cyclic) chain without ever spinning on it.
    let bound = drain_bound(workload);
    match variant {
        SweepVariant::IzraelevitzMsq => {
            let t = mem.thread_with(0, ThreadOptions { izraelevitz: true });
            let q = MsQueue::new(&t);
            let mut h = q.handle(&t);
            for &v in &workload.prefill {
                h.enqueue(v);
            }
            mem.persist_everything();
            let _ = t.take_stats();
            if plan.remaining() > 0 {
                t.set_crash_schedule(plan.clone());
            }
            let mut outcomes = Vec::with_capacity(workload.ops.len());
            for &op in &workload.ops {
                // The plain MSQ has no recovery protocol: a crash unwinds to
                // here, and the process cannot tell whether the interrupted
                // operation took effect (that is the point of Figure 5's
                // comparison). Record the ambiguity for the oracle and move on.
                let outcome = catch_crash(|| match op {
                    Op::Enqueue(v) => {
                        h.enqueue(v);
                        None
                    }
                    Op::Dequeue => h.dequeue(),
                });
                outcomes.push(match outcome {
                    Ok(ret) => OpOutcome::Completed(ret),
                    Err(_) => {
                        t.note_crash();
                        crash_machine(&mem, system);
                        OpOutcome::Interrupted
                    }
                });
            }
            let window = t.stats();
            t.disarm_crashes();
            let drained = h.drain_up_to(bound + 1);
            let (audit_flags, audit_reports) = audit_of(&mem);
            Replay {
                outcomes,
                drain_overflow: drained.len() > bound,
                drained,
                crash_points: window.crash_points,
                crashes: window.crashes,
                recoveries: 0,
                entry_retries: 0,
                recovery_crashes: 0,
                audit_flags,
                audit_reports,
            }
        }
        SweepVariant::General
        | SweepVariant::GeneralOpt
        | SweepVariant::Normalized
        | SweepVariant::NormalizedOpt => {
            enum H<'q, 't, 'm> {
                G(queues::GeneralQueueHandle<'q, 't, 'm>),
                N(queues::NormalizedQueueHandle<'q, 't, 'm>),
            }
            impl H<'_, '_, '_> {
                fn run(&mut self, op: Op) -> Option<u64> {
                    let h: &mut dyn QueueHandle = match self {
                        H::G(h) => h,
                        H::N(h) => h,
                    };
                    match op {
                        Op::Enqueue(v) => {
                            h.enqueue(v);
                            None
                        }
                        Op::Dequeue => h.dequeue(),
                    }
                }
                fn drain_up_to(&mut self, max: usize) -> Vec<u64> {
                    match self {
                        H::G(h) => h.drain_up_to(max),
                        H::N(h) => h.drain_up_to(max),
                    }
                }
                fn metrics(&mut self) -> CapsuleMetrics {
                    match self {
                        H::G(h) => h.runtime_mut().metrics(),
                        H::N(h) => h.runtime_mut().metrics(),
                    }
                }
            }
            let t = mem.thread(0);
            let general;
            let normalized;
            let mut h = match variant {
                SweepVariant::General | SweepVariant::GeneralOpt => {
                    let style = if variant == SweepVariant::GeneralOpt {
                        BoundaryStyle::Compact
                    } else {
                        BoundaryStyle::General
                    };
                    general = GeneralQueue::new(&t, 1, Durability::Manual, style);
                    H::G(general.handle(&t))
                }
                _ => {
                    let optimised = variant == SweepVariant::NormalizedOpt;
                    normalized = NormalizedQueue::new(&t, 1, Durability::Manual, optimised);
                    H::N(normalized.handle(&t))
                }
            };
            match &mut h {
                H::G(hh) => hh.runtime_mut().set_system_crashes(system),
                H::N(hh) => hh.runtime_mut().set_system_crashes(system),
            }
            for &v in &workload.prefill {
                h.run(Op::Enqueue(v));
            }
            mem.persist_everything();
            let metrics_before = h.metrics();
            let _ = t.take_stats();
            if plan.remaining() > 0 {
                t.set_crash_schedule(plan.clone());
            }
            // The capsule runtime absorbs every crash inside `run_op`: the
            // operation completes with its exact result no matter where the
            // schedule fires. That completion *is* the detectability claim the
            // oracle then verifies against the crash-free history.
            let outcomes = workload
                .ops
                .iter()
                .map(|&op| OpOutcome::Completed(h.run(op)))
                .collect();
            let window = t.stats();
            t.disarm_crashes();
            let drained = h.drain_up_to(bound + 1);
            let metrics = h.metrics();
            let (audit_flags, audit_reports) = audit_of(&mem);
            Replay {
                outcomes,
                drain_overflow: drained.len() > bound,
                drained,
                crash_points: window.crash_points,
                crashes: window.crashes,
                recoveries: metrics.recoveries - metrics_before.recoveries,
                entry_retries: metrics.entry_retries - metrics_before.entry_retries,
                recovery_crashes: metrics.recovery_crashes - metrics_before.recovery_crashes,
                audit_flags,
                audit_reports,
            }
        }
        SweepVariant::LogQueue => {
            let t = mem.thread(0);
            let q = LogQueue::new(&t, 1);
            let mut h = q.handle(&t);
            for &v in &workload.prefill {
                h.enqueue(v);
            }
            mem.persist_everything();
            let _ = t.take_stats();
            if plan.remaining() > 0 {
                t.set_crash_schedule(plan.clone());
            }
            let recoveries = std::cell::Cell::new(0u64);
            let recovery_crashes = std::cell::Cell::new(0u64);
            // Single site for the per-crash bookkeeping (stats, machine fault
            // flag) so every catch in the driver accounts identically.
            let crashed = |during_recovery: bool| {
                if during_recovery {
                    recovery_crashes.set(recovery_crashes.get() + 1);
                }
                t.note_crash();
                crash_machine(&mem, system);
            };
            // The restart/recovery code itself executes simulated instructions,
            // so a (nested) crash can land inside it too. Every read-only step of
            // the driver protocol is therefore retried until it completes — safe
            // because those steps never write.
            let read_only = |f: &dyn Fn() -> u64, during_recovery: bool| loop {
                match catch_crash(f) {
                    Ok(v) => break v,
                    Err(_) => {
                        crashed(during_recovery);
                        // Restarting the protocol read is itself the recovery
                        // action for a crash that lands between operations.
                        recoveries.set(recoveries.get() + 1);
                    }
                }
            };
            let mut outcomes = Vec::with_capacity(workload.ops.len());
            for &op in &workload.ops {
                // Detectable recovery via the operation log (the protocol
                // documented on `LogQueue::logged_seq`).
                let ret = loop {
                    let seq_before = read_only(&|| q.logged_seq(&t), false);
                    let attempt = catch_crash(|| match op {
                        Op::Enqueue(v) => {
                            h.enqueue(v);
                            None
                        }
                        Op::Dequeue => h.dequeue(),
                    });
                    match attempt {
                        Ok(ret) => break ret,
                        Err(_) => {
                            crashed(false);
                            // Recovery itself passes crash points; a nested
                            // schedule element may interrupt it. Recovery only
                            // reads, so retrying from scratch is safe.
                            let verdict = loop {
                                match catch_crash(|| q.recover(&t)) {
                                    Ok(v) => break v,
                                    Err(_) => crashed(true),
                                }
                            };
                            recoveries.set(recoveries.get() + 1);
                            if read_only(&|| q.logged_seq(&t), true) == seq_before {
                                // log_begin never completed: the queue is
                                // untouched; re-run the operation from scratch.
                                continue;
                            }
                            match verdict {
                                RecoveredOp::None => {
                                    // The log entry is marked done: the operation
                                    // completed before the crash.
                                    break match op {
                                        Op::Enqueue(_) => None,
                                        Op::Dequeue => loop {
                                            match catch_crash(|| q.logged_result(&t)) {
                                                Ok(r) => break r,
                                                Err(_) => crashed(true),
                                            }
                                        },
                                    };
                                }
                                RecoveredOp::EnqueueApplied => break None,
                                RecoveredOp::DequeueApplied(v) => break Some(v),
                                RecoveredOp::EnqueueNotApplied
                                | RecoveredOp::DequeueNotApplied => continue,
                            }
                        }
                    }
                };
                outcomes.push(OpOutcome::Completed(ret));
            }
            let window = t.stats();
            t.disarm_crashes();
            let drained = h.drain_up_to(bound + 1);
            let (audit_flags, audit_reports) = audit_of(&mem);
            Replay {
                outcomes,
                drain_overflow: drained.len() > bound,
                drained,
                crash_points: window.crash_points,
                crashes: window.crashes,
                recoveries: recoveries.get(),
                entry_retries: 0,
                recovery_crashes: recovery_crashes.get(),
                audit_flags,
                audit_reports,
            }
        }
    }
}

/// Check one replayed history against the oracle.
///
/// The model is a plain FIFO queue over 64-bit values. For every interrupted
/// operation (non-detectable variants only) the checker forks the model into
/// "applied" and "not applied" branches; the replay passes iff at least one
/// branch reproduces every completed operation's return value *and* the final
/// drained contents.
fn check_history(workload: &Workload, r: &Replay) -> Result<(), String> {
    if r.drain_overflow {
        return Err(format!(
            "drain returned {} elements but at most {} could have survived the \
             replay — corrupted (cyclic?) next-pointer chain",
            r.drained.len(),
            drain_bound(workload)
        ));
    }
    // Branches: (model queue, still-consistent flag is implicit by presence).
    let mut branches: Vec<VecDeque<u64>> = vec![workload.prefill.iter().copied().collect()];
    for (i, (&op, outcome)) in workload.ops.iter().zip(&r.outcomes).enumerate() {
        let mut next: Vec<VecDeque<u64>> = Vec::with_capacity(branches.len() * 2);
        for mut q in branches {
            match (*outcome, op) {
                (OpOutcome::Completed(ret), Op::Enqueue(v)) => {
                    debug_assert_eq!(ret, None);
                    q.push_back(v);
                    next.push(q);
                }
                (OpOutcome::Completed(ret), Op::Dequeue) => {
                    // Branches whose head disagrees with the observed return are
                    // inconsistent and dropped.
                    if q.pop_front() == ret {
                        next.push(q);
                    }
                }
                (OpOutcome::Interrupted, Op::Enqueue(v)) => {
                    let mut applied = q.clone();
                    applied.push_back(v);
                    next.push(applied);
                    next.push(q); // not applied
                }
                (OpOutcome::Interrupted, Op::Dequeue) => {
                    let mut applied = q.clone();
                    let _ = applied.pop_front(); // value was lost with the crash
                    next.push(applied);
                    next.push(q); // not applied
                }
            }
        }
        if next.is_empty() {
            return Err(format!(
                "op {i} ({op:?}) returned {outcome:?}, inconsistent with every model branch"
            ));
        }
        branches = next;
    }
    let drained: VecDeque<u64> = r.drained.iter().copied().collect();
    if branches.contains(&drained) {
        Ok(())
    } else {
        Err(format!(
            "final drain {:?} matches no model branch (e.g. expected {:?})",
            r.drained, branches[0]
        ))
    }
}

/// Sweep every crash point of `workload` on `variant` with per-process crash
/// semantics (the PPM model of §2.1: the thread's volatile state is lost, the
/// shared cache survives) — the crash flavour the paper's detectability
/// theorems quantify over.
///
/// `nested_gap = None` injects exactly one crash per replay (at point `k`);
/// `Some(gap)` injects a second crash `gap` crash points after the first, which
/// for `gap` near zero lands inside the recovery triggered by the first crash —
/// the crash-during-recovery schedules of the issue's Definition 2.2 argument.
pub fn sweep(variant: SweepVariant, workload: &Workload, nested_gap: Option<u64>) -> SweepReport {
    let nested: Vec<u64> = nested_gap.into_iter().collect();
    sweep_plan(variant, workload, &nested, false)
}

/// Like [`sweep`] but with *full-system* crashes: every injected crash also
/// rolls unflushed cache lines back to their durable contents, so the sweep
/// additionally verifies the variant's flush placement. Sound for every
/// variant since the recoverable-CAS layer adopted the durable-announcement
/// flush discipline ([`rcas::RcasSpace::with_durability`], DESIGN.md §7) —
/// before that, the capsule variants failed exactly here (a rollback zeroed
/// published-but-unflushed announcement state and `check_recovery` re-applied
/// the CAS, duplicating an element).
pub fn sweep_system(
    variant: SweepVariant,
    workload: &Workload,
    nested_gap: Option<u64>,
) -> SweepReport {
    let nested: Vec<u64> = nested_gap.into_iter().collect();
    sweep_plan(variant, workload, &nested, true)
}

/// The general sweep entry point: replay once per crash point `k`, each replay
/// running the scripted schedule `[k, nested[0], nested[1], …]` — so `nested =
/// [m]` is the crash-during-recovery sweep and `nested = [m, n]` the depth-2
/// crash-during-recovery-of-recovery sweep. `system` selects full-system crash
/// semantics (every crash also rolls unflushed cache lines back).
///
/// The per-`k` replays are independent (each builds a fresh machine), so the
/// sweep fans them out across OS threads — `DF_DFCK_THREADS` bounds the worker
/// count (default: `available_parallelism`, capped at 8). Results are merged in
/// `k` order, so reports are deterministic regardless of the worker count.
pub fn sweep_plan(
    variant: SweepVariant,
    workload: &Workload,
    nested: &[u64],
    system: bool,
) -> SweepReport {
    sweep_plan_with_workers(variant, workload, nested, system, None)
}

/// [`sweep_plan`] with an explicit worker count (`None` ⇒ [`sweep_workers`]);
/// lets tests compare sequential and parallel runs without racing on the
/// process environment.
fn sweep_plan_with_workers(
    variant: SweepVariant,
    workload: &Workload,
    nested: &[u64],
    system: bool,
    workers_override: Option<usize>,
) -> SweepReport {
    // Crash-free baseline: defines the sweep range and the reference history.
    let baseline = replay(variant, workload, &CrashPlan::new(Vec::new()), system);
    assert_eq!(baseline.crashes, 0);
    let strict = variant.detectable();
    let mut report = SweepReport {
        variant,
        workload: workload.name,
        nested: nested.to_vec(),
        system,
        crash_points: baseline.crash_points,
        replays: 1,
        crashes_injected: 0,
        recoveries: 0,
        entry_retries: 0,
        recovery_crashes: 0,
        audit_flags: baseline.audit_flags,
        violations: Vec::new(),
    };
    if let Err(e) = check_history(workload, &baseline) {
        report
            .violations
            .push(format!("baseline (crash-free): {e}"));
    }
    if baseline.audit_flags > 0 {
        report.violations.push(format!(
            "baseline (crash-free): {} flush-audit flag(s): {:?}",
            baseline.audit_flags, baseline.audit_reports
        ));
    }
    // One source of truth for the scripted schedule shape: `CrashPlan::nested`
    // builds `[k, nested…]`, and `script()` is what the reports print.
    let plan_for = |k: u64| CrashPlan::nested(k, nested);
    let run_one = |k: u64| -> (u64, Replay) {
        let plan = plan_for(k);
        if std::env::var_os("DF_DFCK_TRACE").is_some() {
            eprintln!(
                "dfck trace: {:?} {} k={k} gaps={:?} system={system}",
                variant,
                workload.name,
                plan.script()
            );
        }
        (k, replay(variant, workload, &plan, system))
    };
    let n = baseline.crash_points;
    let workers = workers_override
        .map(|w| w.max(1))
        .unwrap_or_else(|| sweep_workers(n));
    let results: Vec<(u64, Replay)> = if workers <= 1 {
        (0..n).map(run_one).collect()
    } else {
        // Stripe the crash points over the workers; replays share nothing (each
        // builds its own machine), so plain fan-out is sound.
        let mut all: Vec<(u64, Replay)> = std::thread::scope(|s| {
            let run_one = &run_one;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    s.spawn(move || {
                        (w as u64..n)
                            .step_by(workers)
                            .map(run_one)
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("dfck sweep worker panicked"))
                .collect()
        });
        all.sort_by_key(|&(k, _)| k);
        all
    };
    for (k, r) in results {
        let gaps = plan_for(k).script().to_vec();
        report.replays += 1;
        report.crashes_injected += r.crashes;
        report.recoveries += r.recoveries;
        report.entry_retries += r.entry_retries;
        report.recovery_crashes += r.recovery_crashes;
        report.audit_flags += r.audit_flags;
        if r.audit_flags > 0 {
            report.violations.push(format!(
                "k={k} gaps={gaps:?}: {} flush-audit flag(s): {:?}",
                r.audit_flags, r.audit_reports
            ));
        }
        if r.crashes == 0 {
            report.violations.push(format!(
                "k={k}: the schedule never fired (swept range disagrees with the replay)"
            ));
            continue;
        }
        if let Err(e) = check_history(workload, &r) {
            report.violations.push(format!("k={k} gaps={gaps:?}: {e}"));
            continue;
        }
        if strict {
            // Detectable variants: the history must be *identical* to the
            // crash-free one — crashes must be invisible (Definition 2.2) —
            // and the crash must actually have forced a recovery, proving the
            // "re-executed but invisible" claim rather than a vacuous pass.
            if r.outcomes != baseline.outcomes || r.drained != baseline.drained {
                report.violations.push(format!(
                    "k={k} gaps={gaps:?}: history differs from the crash-free run \
                     (outcomes {:?} vs {:?}, drain {:?} vs {:?})",
                    r.outcomes, baseline.outcomes, r.drained, baseline.drained
                ));
            }
            if r.recoveries + r.entry_retries == 0 {
                report.violations.push(format!(
                    "k={k}: a crash was injected but no recovery action ran"
                ));
            }
        }
    }
    report
}

/// Worker-thread count for the sweep fan-out: `DF_DFCK_THREADS`, defaulting to
/// `available_parallelism` capped at 8, never more than one per crash point.
pub(crate) fn sweep_workers(crash_points: u64) -> usize {
    let default = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);
    let configured = crate::env_u64("DF_DFCK_THREADS", default as u64).max(1) as usize;
    configured.min(crash_points.max(1) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_pair_history_is_consistent() {
        for variant in SweepVariant::all() {
            let w = Workload::pair();
            let r = replay(variant, &w, &CrashPlan::new(Vec::new()), false);
            assert_eq!(r.crashes, 0);
            assert!(
                r.crash_points > 0,
                "{variant:?}: workload passed no crash points"
            );
            check_history(&w, &r).unwrap();
        }
    }

    #[test]
    fn oracle_rejects_lost_and_duplicated_elements() {
        let w = Workload::pair();
        let good = replay(SweepVariant::General, &w, &CrashPlan::new(Vec::new()), false);
        check_history(&w, &good).unwrap();
        // Lost element: drop the first drained value.
        let mut lost = good.clone();
        lost.drained.remove(0);
        assert!(check_history(&w, &lost).is_err());
        // Duplicated element: drain reports a value twice.
        let mut dup = good.clone();
        let v = dup.drained[0];
        dup.drained.insert(0, v);
        assert!(check_history(&w, &dup).is_err());
        // Wrong dequeue return.
        let mut wrong = good.clone();
        for o in &mut wrong.outcomes {
            if let OpOutcome::Completed(Some(v)) = o {
                *v += 1;
            }
        }
        assert!(check_history(&w, &wrong).is_err());
    }

    #[test]
    fn oracle_accepts_ambiguous_interrupted_op_either_way() {
        // An interrupted enqueue may or may not have applied; both final states
        // must be accepted, anything else rejected.
        let w = Workload {
            name: "ambig",
            prefill: vec![7],
            ops: vec![Op::Enqueue(42)],
        };
        let base = Replay {
            outcomes: vec![OpOutcome::Interrupted],
            drained: vec![7, 42],
            drain_overflow: false,
            crash_points: 1,
            crashes: 1,
            recoveries: 0,
            entry_retries: 0,
            recovery_crashes: 0,
            audit_flags: 0,
            audit_reports: Vec::new(),
        };
        check_history(&w, &base).unwrap();
        let mut not_applied = base.clone();
        not_applied.drained = vec![7];
        check_history(&w, &not_applied).unwrap();
        let mut corrupt = base.clone();
        corrupt.drained = vec![42, 7];
        assert!(check_history(&w, &corrupt).is_err());
    }

    // The full pair sweeps (single + nested, every variant) live in
    // tests/dfck_sweep.rs; duplicating the multi-thousand-replay runs here
    // would double the cost of every `cargo test` for identical coverage.

    /// Deterministic regression for the bounded-drain oracle path: an
    /// artificially cycled queue (the shape a buggy recovery could splice)
    /// must terminate the drain at the bound and fail the oracle — never hang.
    #[test]
    fn cyclic_next_chain_is_reported_as_violation_not_hang() {
        use queues::node::next_addr;
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        let t = mem.thread(0);
        let q = MsQueue::new(&t);
        let mut h = q.handle(&t);
        for v in [1, 2, 3] {
            h.enqueue(v);
        }
        // Walk sentinel -> n1 -> n2 -> n3 and splice n3.next back to n1.
        let sentinel = pmem::PAddr::from_raw(t.read(q.head_addr()));
        let n1 = pmem::PAddr::from_raw(t.read(next_addr(sentinel)));
        let n2 = pmem::PAddr::from_raw(t.read(next_addr(n1)));
        let n3 = pmem::PAddr::from_raw(t.read(next_addr(n2)));
        assert!(!n3.is_null());
        t.write(next_addr(n3), n1.to_raw());
        let w = Workload {
            name: "cycled",
            prefill: Vec::new(),
            ops: vec![Op::Enqueue(1), Op::Enqueue(2), Op::Enqueue(3)],
        };
        let bound = drain_bound(&w);
        assert_eq!(bound, 3);
        // The bounded drain stops after bound + 1 dequeues despite the cycle…
        let drained = h.drain_up_to(bound + 1);
        assert_eq!(drained.len(), bound + 1, "drain must stop at the bound");
        // …and the oracle rejects the over-long history with the cycle diagnosis.
        let r = Replay {
            outcomes: vec![OpOutcome::Completed(None); 3],
            drain_overflow: drained.len() > bound,
            drained,
            crash_points: 0,
            crashes: 0,
            recoveries: 0,
            entry_retries: 0,
            recovery_crashes: 0,
            audit_flags: 0,
            audit_reports: Vec::new(),
        };
        let err = check_history(&w, &r).unwrap_err();
        assert!(err.contains("cyclic"), "diagnosis missing from: {err}");
    }

    #[test]
    fn drain_bound_counts_prefill_plus_enqueues() {
        let w = Workload::pair();
        assert_eq!(drain_bound(&w), w.prefill.len() + 1);
        let all_deq = Workload {
            name: "deq",
            prefill: vec![1, 2],
            ops: vec![Op::Dequeue, Op::Dequeue],
        };
        assert_eq!(drain_bound(&all_deq), 2);
    }

    #[test]
    fn seeded_workload_is_reproducible_and_mixed() {
        let a = Workload::seeded(9, 12);
        let b = Workload::seeded(9, 12);
        assert_eq!(a.ops, b.ops);
        assert!(a.ops.iter().any(|o| matches!(o, Op::Enqueue(_))));
        assert!(a.ops.iter().any(|o| matches!(o, Op::Dequeue)));
        assert_ne!(Workload::seeded(10, 12).ops, a.ops);
    }

    #[test]
    fn seeded_full_offsets_values_and_prefill() {
        let w = Workload::seeded_full(9, 12, 5, 1_000_000);
        assert_eq!(w.prefill.len(), 5);
        assert!(w.prefill.iter().all(|&v| v >= 1_000_000));
        assert!(w
            .ops
            .iter()
            .all(|o| !matches!(o, Op::Enqueue(v) if *v <= 1_000_000)));
        // Same seed/ops as the plain generator, just shifted ranges.
        assert_eq!(w.ops.len(), Workload::seeded(9, 12).ops.len());
    }

    #[test]
    fn parallel_sweep_matches_sequential_sweep() {
        // The fan-out must not change what is verified: run the same sweep with
        // one worker and with several, and compare every aggregate.
        let w = Workload::pair();
        let seq = sweep_plan_with_workers(SweepVariant::General, &w, &[0], false, Some(1));
        let par = sweep_plan_with_workers(SweepVariant::General, &w, &[0], false, Some(4));
        assert_eq!(seq.crash_points, par.crash_points);
        assert_eq!(seq.replays, par.replays);
        assert_eq!(seq.crashes_injected, par.crashes_injected);
        assert_eq!(seq.recoveries, par.recoveries);
        assert_eq!(seq.entry_retries, par.entry_retries);
        assert_eq!(seq.recovery_crashes, par.recovery_crashes);
        assert_eq!(seq.audit_flags, par.audit_flags);
        assert_eq!(seq.violations, par.violations);
        assert!(seq.passed());
    }

    #[test]
    fn opt_variants_are_swept_and_pass_the_pair_sweep() {
        for variant in [SweepVariant::GeneralOpt, SweepVariant::NormalizedOpt] {
            let report = sweep(variant, &Workload::pair(), None);
            assert!(report.passed(), "{variant:?}: {:?}", report.violations);
            assert!(report.crash_points > 0);
        }
    }
}
