//! # `rcas` — recoverable primitives
//!
//! Implementation of §4, Appendix A and §8/Appendix E of *Delay-Free Concurrency on
//! Faulty Persistent Memory* (SPAA 2019): the primitives that let a process discover,
//! after a crash, whether a compare-and-swap it issued before the crash took effect.
//!
//! The problem: a CAS's return value lives in a volatile register. If the process
//! crashes right after the CAS, the change may be durable while the knowledge of it
//! is gone; blindly re-executing the CAS (or skipping it) can corrupt the data
//! structure. The *recoverable CAS* object solves this by storing ⟨value, pid, seq⟩
//! in the CAS target and having later operations *notify* the previous winner in a
//! per-process announcement slot.
//!
//! What this crate provides:
//!
//! * [`RcasSpace`] / [`RCas`] — the paper's Algorithm 1: constant-time `Read`, `Cas`
//!   and `Recover`, O(P) space, strict linearizability. Section/usage details in
//!   [`space`].
//! * [`check_recovery`] — Algorithm 2, the wrapper used by capsules to decide whether
//!   a CAS is safe to repeat.
//! * [`AttiyaRcas`] — a variant in the spirit of Attiya, Ben-Baruch and Hendler
//!   (PODC 2018) with O(P) recovery and O(P²) space per object, kept as a baseline
//!   and for the ablation benchmarks.
//! * [`IndirectRcas`] — an alternative encoding of ⟨value, pid, seq⟩ behind a level
//!   of indirection (never-reused descriptor records), for callers whose values or
//!   sequence numbers do not fit the packed 64-bit layout.
//! * [`WritableCasArray`] — Algorithm 8: M *writable* CAS objects built from
//!   O(M + P²) ordinary CAS objects, which is how the paper eliminates Write/CAS
//!   races (§8) so that every shared write can then be treated as a CAS.
//!
//! All primitives run on the simulated persistent memory of the [`pmem`] crate and
//! therefore inherit its crash injection and statistics.
//!
//! ## Quick tour
//!
//! ```
//! use pmem::PMem;
//! use rcas::{check_recovery, RcasSpace};
//!
//! let mem = PMem::with_threads(2);
//! let t = mem.thread(0);
//! let space = RcasSpace::with_default_layout(&t, 2);
//! let x = space.create(&t, 5).addr();
//!
//! // A recoverable CAS tags the installed value with ⟨pid, seq⟩; sequence
//! // numbers are chosen by the caller, strictly increasing per process.
//! assert!(space.cas(&t, x, 5, 6, 1));
//! assert_eq!(space.read(&t, x), 6);
//!
//! // After a crash wiped the CAS's return value, the process can still find
//! // out that CAS #1 took effect — and must therefore not repeat it...
//! assert!(check_recovery(&space, &t, x, 1));
//! // ...while a CAS it never issued is reported as not-done.
//! assert!(!check_recovery(&space, &t, x, 2));
//!
//! // Another process's later CAS on the same object leaves the verdict intact
//! // (it *notifies* the previous winner before overwriting the triple).
//! let t1 = mem.thread(1);
//! assert!(space.cas(&t1, x, 6, 7, 1));
//! assert!(check_recovery(&space, &t, x, 1));
//! ```

#![warn(missing_docs)]

pub mod attiya;
pub mod check;
pub mod indirect;
pub mod layout;
pub mod space;
pub mod writable;

pub use attiya::AttiyaRcas;
pub use check::check_recovery;
pub use indirect::IndirectRcas;
pub use layout::{PackError, RcasLayout};
pub use space::{CasEvidence, RCas, RcasSpace, RecoverResult, SHARD_PIDS};
pub use writable::{WritableCasArray, WritableCasHandle};
