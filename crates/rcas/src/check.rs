//! Algorithm 2: `checkRecovery`.
//!
//! The glue between a capsule's recovery path and the recoverable CAS object: given
//! the sequence number the interrupted capsule was using, decide whether the CAS has
//! already taken effect (in which case it must *not* be repeated) or not (in which
//! case repeating it is safe — any earlier partial attempt is invisible).
//!
//! The verdict is only as durable as the announcement word it reads. Under
//! full-system crashes (the shared-cache model's power failure) the space must
//! therefore run with [`RcasSpace::with_durability`]: without it, a rollback can
//! durably keep the installed triple while reverting the announcement, and
//! `check_recovery` reports *not done* for a CAS that is already in memory — the
//! duplicate-element bug the `dfck` full-system sweep exposed (DESIGN.md §7).

use pmem::{PAddr, PThread};

use crate::space::RcasSpace;

/// `checkRecovery(X, seq, pid)` — returns `true` if the CAS with sequence number
/// `seq` issued by the calling thread on the object at `x` is known to have
/// succeeded, so the capsule must not execute it again.
///
/// Exactly Algorithm 2 of the paper: call `Recover` and report success when the
/// announcement vouches for `seq`. A strictly larger announced sequence number can
/// only be observed inside a CAS-executor capsule, where it means a *later* CAS in
/// the list was announced — which implies this one succeeded (the executor only
/// advances past an entry after its CAS wins), even when the later announcement's
/// flag is still 0 because it overwrote this entry's flag before the crash. The
/// flag is therefore only consulted for the exact sequence number asked about.
pub fn check_recovery(space: &RcasSpace, thread: &PThread<'_>, x: PAddr, seq: u64) -> bool {
    let r = space.recover(thread, x);
    r.seq > seq || (r.seq == seq && r.flag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PMem;

    #[test]
    fn reports_false_before_any_cas() {
        let mem = PMem::with_threads(2);
        let t = mem.thread(0);
        let space = RcasSpace::with_default_layout(&t, 2);
        let obj = space.create(&t, 0);
        assert!(!check_recovery(&space, &t, obj.addr(), 1));
    }

    #[test]
    fn reports_true_after_successful_cas_with_same_seq() {
        let mem = PMem::with_threads(2);
        let t = mem.thread(0);
        let space = RcasSpace::with_default_layout(&t, 2);
        let obj = space.create(&t, 0);
        assert!(space.cas(&t, obj.addr(), 0, 1, 5));
        assert!(check_recovery(&space, &t, obj.addr(), 5));
        // An older operation's sequence number also reports true (seq >= query).
        assert!(check_recovery(&space, &t, obj.addr(), 3));
        // A future operation's sequence number reports false.
        assert!(!check_recovery(&space, &t, obj.addr(), 6));
    }

    #[test]
    fn strictly_later_announcement_proves_earlier_cas() {
        use pmem::{catch_crash, install_quiet_crash_hook, CrashPolicy};
        install_quiet_crash_hook();
        let mem = PMem::with_threads(2);
        let t = mem.thread(0);
        let space = RcasSpace::with_default_layout(&t, 2);
        let a = space.create(&t, 0);
        let b = space.create(&t, 0);
        // Entry 1 of a CAS-executor list: succeeds, announcing ⟨5, 0⟩.
        assert!(space.cas(&t, a.addr(), 0, 1, 5));
        // Entry 2: crash after its announce lands (overwriting entry 1's
        // announcement with ⟨6, 0⟩) but before its CAS executes. Crash points
        // inside cas(): read (1), announce write (2), the CAS itself (3).
        t.set_crash_policy(CrashPolicy::Countdown(2));
        let outcome = catch_crash(|| space.cas(&t, b.addr(), 0, 1, 6));
        assert!(outcome.is_err(), "expected the injected crash to fire");
        t.disarm_crashes();
        // Entry 1's flag was overwritten, but the strictly later announcement
        // is itself proof that entry 1 succeeded...
        assert!(check_recovery(&space, &t, a.addr(), 5));
        // ...while entry 2 (announced, never executed) must re-execute.
        assert!(!check_recovery(&space, &t, b.addr(), 6));
        assert!(space.cas(&t, b.addr(), 0, 1, 6));
    }

    #[test]
    fn reports_false_when_cas_lost_the_race() {
        let mem = PMem::with_threads(2);
        let t0 = mem.thread(0);
        let t1 = mem.thread(1);
        let space = RcasSpace::with_default_layout(&t0, 2);
        let obj = space.create(&t0, 0);
        assert!(space.cas(&t1, obj.addr(), 0, 7, 1));
        // t0's CAS now fails (stale expected value)...
        assert!(!space.cas(&t0, obj.addr(), 0, 9, 1));
        // ...and checkRecovery for t0 must not claim it succeeded.
        assert!(!check_recovery(&space, &t0, obj.addr(), 1));
        // t1's CAS, on the other hand, is recoverable.
        assert!(check_recovery(&space, &t1, obj.addr(), 1));
    }
}
