//! An indirection-based recoverable CAS for full-width values.
//!
//! [`RcasSpace`](crate::RcasSpace) packs ⟨value, pid, seq⟩ into one 64-bit word,
//! which caps the value at 32 bits and the per-process sequence number at 26 bits
//! (with the default layout). Some callers need full 64-bit values or effectively
//! unbounded sequence numbers; `IndirectRcas` provides that by storing the triple in
//! an immutable, never-reused *descriptor record* in persistent memory and CASing a
//! pointer to the record:
//!
//! ```text
//! x ──► ⟨value, pid, seq⟩      (3-word record, written once, flushed, never mutated)
//! ```
//!
//! Because records are allocated fresh for every successful installation and never
//! recycled, the pointer CAS is ABA-free by construction — this is the standard
//! descriptor trick, and it is the substitution documented in DESIGN.md for the
//! paper's double-word CAS. The price is one extra cache line per successful CAS
//! and a pointer chase on reads; the `micro` benchmark quantifies it against the
//! packed encoding.
//!
//! ## Choosing `durable_records`
//!
//! With `durable_records = false` no flushes are issued. That mode is **only
//! correct in the private-cache (PPM) model**, where every store is immediately
//! durable by definition: per-process crashes never roll memory back, so a
//! published record can never be observed zeroed and the announcement always
//! reflects the last notify — the exhaustive per-crash-point PPM sweep in this
//! module's tests pins that down. In the shared-cache model a full-system crash
//! rolls unflushed lines back, so relaxed mode durably publishes pointers to
//! records that revert to zero (and loses recovery verdicts); shared-cache
//! callers must pass `durable_records = true`, which flushes the record *and*
//! the announcement lines and fences before the pointer CAS (DESIGN.md §7; the
//! deterministic reproduction lives in `tests/flush_discipline.rs`).

use pmem::{PAddr, PThread, LINE_WORDS};

use crate::space::RecoverResult;

const REC_VALUE: u64 = 0;
const REC_PID: u64 = 1;
const REC_SEQ: u64 = 2;

/// A family of indirection-based recoverable CAS objects sharing one announcement
/// slot per process (same sharing argument as [`RcasSpace`](crate::RcasSpace)).
#[derive(Clone, Copy, Debug)]
pub struct IndirectRcas {
    ann_base: PAddr,
    nprocs: usize,
    /// When true, descriptor records *and the announcement lines the CAS depends
    /// on* are flushed (and fenced) before the pointer CAS publishes them, so
    /// that a full-system crash can never leave `x` durably pointing at a record
    /// whose contents — or whose recovery evidence — are not durable (the same
    /// discipline as [`RcasSpace::with_durability`](crate::RcasSpace::with_durability)).
    /// Durable-queue callers want this; private-cache-model callers can skip it.
    durable_records: bool,
}

impl IndirectRcas {
    /// Create a family for `nprocs` processes.
    pub fn new(thread: &PThread<'_>, nprocs: usize, durable_records: bool) -> IndirectRcas {
        assert!(nprocs >= 1);
        // Line-aligned for the same reason as [`RcasSpace`]: one announcement
        // line per pid, never shared with neighbouring records — and grouped
        // into the same per-pid-group shard blocks (one padding line between
        // groups of [`SHARD_PIDS`](crate::SHARD_PIDS)).
        let groups = nprocs.div_ceil(crate::SHARD_PIDS) as u64;
        let stride = (crate::SHARD_PIDS as u64 + 1) * LINE_WORDS;
        let ann_base = thread.alloc_aligned(groups * stride);
        IndirectRcas {
            ann_base,
            nprocs,
            durable_records,
        }
    }

    fn ann_addr(&self, pid: usize) -> PAddr {
        assert!(pid < self.nprocs);
        let group = (pid / crate::SHARD_PIDS) as u64;
        let slot = (pid % crate::SHARD_PIDS) as u64;
        let stride = (crate::SHARD_PIDS as u64 + 1) * LINE_WORDS;
        self.ann_base.offset(group * stride + slot * LINE_WORDS)
    }

    /// The sentinel pid stored in records installed by [`init_word`](Self::init_word)
    /// (no process is ever notified about the initial value).
    pub fn anonymous_pid(&self) -> usize {
        usize::MAX >> 1
    }

    fn alloc_record(&self, thread: &PThread<'_>, value: u64, pid: usize, seq: u64) -> PAddr {
        let rec = thread.alloc(3);
        thread.write(rec.offset(REC_VALUE), value);
        thread.write(rec.offset(REC_PID), pid as u64);
        thread.write(rec.offset(REC_SEQ), seq);
        if self.durable_records {
            // One flush covers the whole record: sub-line allocations never
            // straddle a cache line (Arena::alloc). The caller fences before the
            // record becomes reachable.
            thread.flush(rec);
        }
        rec
    }

    /// Format the word at `addr` as an indirect recoverable CAS object holding
    /// `initial`.
    pub fn init_word(&self, thread: &PThread<'_>, addr: PAddr, initial: u64) {
        let rec = self.alloc_record(thread, initial, self.anonymous_pid(), 0);
        if self.durable_records {
            thread.fence();
        }
        thread.write(addr, rec.to_raw());
    }

    /// Allocate and format a standalone object; returns its address.
    pub fn create(&self, thread: &PThread<'_>, initial: u64) -> PAddr {
        let addr = thread.alloc(1);
        self.init_word(thread, addr, initial);
        addr
    }

    fn load_record(&self, thread: &PThread<'_>, x: PAddr) -> (PAddr, u64, usize, u64) {
        let rec = PAddr::from_raw(thread.read(x));
        let value = thread.read(rec.offset(REC_VALUE));
        let pid = thread.read(rec.offset(REC_PID)) as usize;
        let seq = thread.read(rec.offset(REC_SEQ));
        (rec, value, pid, seq)
    }

    /// `Read()` — the current value.
    pub fn read(&self, thread: &PThread<'_>, x: PAddr) -> u64 {
        self.load_record(thread, x).1
    }

    fn notify(&self, thread: &PThread<'_>, owner: usize, owner_seq: u64) {
        if owner >= self.nprocs {
            return; // anonymous or foreign owner: nobody to notify
        }
        let ann = self.ann_addr(owner);
        let _ = thread.cas(ann, owner_seq << 1, (owner_seq << 1) | 1);
        if self.durable_records {
            // The owner's announcement state (this notify, an earlier notifier's,
            // or the owner's own) must be durable before the triple backing it up
            // is overwritten — flushed whether or not the CAS above won.
            thread.flush(ann);
        }
    }

    /// Recoverable CAS with full 64-bit expected/new values.
    ///
    /// In durable mode the descriptor record *and* the caller's announcement are
    /// flushed, and a fence issued, before the pointer CAS — the publish-last
    /// flush discipline that makes a `crash_all` rollback between the CAS and the
    /// caller's own `persist` of `x` unable to zero a reachable record or to
    /// destroy the evidence `check_recovery` needs.
    pub fn cas(&self, thread: &PThread<'_>, x: PAddr, expected: u64, new: u64, seq: u64) -> bool {
        let me = thread.pid();
        debug_assert!(me < self.nprocs);
        debug_assert!(seq >= 1);
        let (old_rec, value, owner, owner_seq) = self.load_record(thread, x);
        if value != expected {
            return false;
        }
        self.notify(thread, owner, owner_seq);
        let ann = self.ann_addr(me);
        thread.write(ann, seq << 1);
        let new_rec = self.alloc_record(thread, new, me, seq);
        if self.durable_records {
            // The record was flushed by `alloc_record`; one fence orders it, the
            // announcement flush and the notify flush before the publishing CAS.
            thread.flush(ann);
            thread.fence();
        }
        thread.cas(x, old_rec.to_raw(), new_rec.to_raw())
    }

    /// `Recover(i)` — the caller's announcement after re-notifying.
    pub fn recover(&self, thread: &PThread<'_>, x: PAddr) -> RecoverResult {
        let me = thread.pid();
        let (_, _, owner, owner_seq) = self.load_record(thread, x);
        self.notify(thread, owner, owner_seq);
        let w = thread.read(self.ann_addr(me));
        RecoverResult {
            seq: w >> 1,
            flag: (w & 1) != 0,
        }
    }

    /// `checkRecovery` for this variant.
    pub fn check_recovery(&self, thread: &PThread<'_>, x: PAddr, seq: u64) -> bool {
        let r = self.recover(thread, x);
        r.flag && r.seq >= seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{PMem, MemConfig, Mode};

    #[test]
    fn full_width_values_round_trip() {
        let mem = PMem::with_threads(2);
        let t = mem.thread(0);
        let fam = IndirectRcas::new(&t, 2, false);
        let x = fam.create(&t, u64::MAX - 1);
        assert_eq!(fam.read(&t, x), u64::MAX - 1);
        assert!(fam.cas(&t, x, u64::MAX - 1, u64::MAX, 1));
        assert_eq!(fam.read(&t, x), u64::MAX);
    }

    #[test]
    fn recovery_mirrors_packed_variant() {
        let mem = PMem::with_threads(2);
        let t0 = mem.thread(0);
        let t1 = mem.thread(1);
        let fam = IndirectRcas::new(&t0, 2, false);
        let x = fam.create(&t0, 0);
        assert!(fam.cas(&t0, x, 0, 5, 1));
        assert!(fam.check_recovery(&t0, x, 1));
        assert!(fam.cas(&t1, x, 5, 6, 1));
        assert!(fam.check_recovery(&t0, x, 1), "overwritten success still visible");
        assert!(!fam.check_recovery(&t0, x, 2));
    }

    #[test]
    fn durable_records_survive_a_crash() {
        let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
        let t = mem.thread(0);
        let fam = IndirectRcas::new(&t, 1, true);
        let x = fam.create(&t, 3);
        assert!(fam.cas(&t, x, 3, 4, 1));
        // Persist the pointer word itself (the caller's responsibility, as with the
        // packed variant) — the record contents were already persisted by the CAS.
        t.persist(x);
        mem.crash_all();
        let t = mem.thread(0);
        assert_eq!(fam.read(&t, x), 4);
    }

    #[test]
    fn relaxed_mode_is_exact_at_every_crash_point_in_the_private_cache_model() {
        // dfck-style exhaustive enumeration for `durable_records = false` under
        // the PPM model (per-process crashes, stores immediately durable):
        // learn the crash-point count of one recoverable increment from Stats,
        // then replay once per point, recover, and require exactly-once every
        // time. This is the documented boundary of the relaxed mode — the
        // shared-cache counterpart (where it is *not* correct) is pinned in
        // tests/flush_discipline.rs.
        use pmem::{catch_crash, install_quiet_crash_hook, CrashPlan};
        install_quiet_crash_hook();
        let run = |plan: Option<CrashPlan>| -> u64 {
            let mem = PMem::new(MemConfig::new(1).mode(Mode::PrivateCache));
            let t = mem.thread(0);
            let fam = IndirectRcas::new(&t, 1, false);
            let x = fam.create(&t, 0);
            let _ = t.take_stats();
            if let Some(p) = plan {
                t.set_crash_schedule(p);
            }
            let attempt = catch_crash(|| {
                assert!(fam.cas(&t, x, 0, 1, 1));
                let _ = fam.read(&t, x);
            });
            if attempt.is_err() {
                mem.crash_thread(0); // independent process fault: memory intact
                let _ = mem.take_crashed(0);
                if !fam.check_recovery(&t, x, 1) {
                    // Not applied: repeating the same ⟨seq, a, b⟩ CAS is safe.
                    if !fam.cas(&t, x, 0, 1, 1) {
                        // Stale expected: the interrupted CAS did land; the
                        // restart must observe it rather than reapply.
                        assert_eq!(fam.read(&t, x), 1);
                    }
                }
            }
            let points = t.stats().crash_points;
            t.disarm_crashes();
            assert_eq!(fam.read(&t, x), 1, "exactly-once increment");
            points
        };
        let n = run(None);
        assert!(n > 0);
        for k in 0..n {
            let _ = run(Some(CrashPlan::once(k)));
        }
    }

    #[test]
    fn concurrent_counter_is_exact() {
        let mem = PMem::with_threads(4);
        let t0 = mem.thread(0);
        let fam = IndirectRcas::new(&t0, 4, false);
        let x = fam.create(&t0, 0);
        const PER_THREAD: u64 = 2_000;
        std::thread::scope(|s| {
            for pid in 0..4 {
                let mem = &mem;
                let fam = &fam;
                s.spawn(move || {
                    let t = mem.thread(pid);
                    let mut seq = 0;
                    for _ in 0..PER_THREAD {
                        loop {
                            seq += 1;
                            let v = fam.read(&t, x);
                            if fam.cas(&t, x, v, v + 1, seq) {
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(fam.read(&mem.thread(0), x), 4 * PER_THREAD);
    }
}
