//! A recoverable CAS variant in the spirit of Attiya, Ben-Baruch and Hendler
//! (PODC 2018), kept as a baseline.
//!
//! The paper (§4) describes the original recoverable CAS as having O(P) recovery
//! time and O(P²) space per object, and notes that the experiments in §10 actually
//! used this original algorithm because it performed slightly better on their
//! machine. This module provides an object with the same asymptotics so the
//! ablation benchmarks can compare the two designs:
//!
//! * the object keeps a **P×P notification matrix** per object; when process `j`
//!   is about to overwrite a value installed by process `i`, it records ⟨seq, 1⟩ in
//!   the single-writer slot `N[i][j]`,
//! * `recover` scans the caller's row (P slots) and returns the largest sequence
//!   number it finds — O(P) work, no CAS needed for notification because every slot
//!   has exactly one writer.
//!
//! This is not a line-by-line transcription of the PODC'18 pseudocode (which is
//! expressed in terms of nested recoverable primitives), but it preserves the
//! interface, the asymptotics, and the property the transformations rely on:
//! a successful CAS by process `i` is eventually discoverable by `i`'s recovery.

use pmem::{PAddr, PThread};

use crate::layout::RcasLayout;
use crate::space::RecoverResult;

/// A single recoverable CAS object with per-object O(P²) notification space and
/// O(P) recovery, à la Attiya et al.
#[derive(Clone, Copy, Debug)]
pub struct AttiyaRcas {
    /// The ⟨value, pid, seq⟩ word.
    x: PAddr,
    /// Base of the P×P notification matrix, row-major: row = owner, column = writer.
    matrix: PAddr,
    nprocs: usize,
    layout: RcasLayout,
}

impl AttiyaRcas {
    /// Allocate a new object holding `initial`.
    pub fn new(thread: &PThread<'_>, nprocs: usize, initial: u64) -> AttiyaRcas {
        let layout = RcasLayout::DEFAULT;
        assert!(nprocs < layout.max_pid());
        let x = thread.alloc(1);
        let matrix = thread.alloc((nprocs * nprocs) as u64);
        let obj = AttiyaRcas {
            x,
            matrix,
            nprocs,
            layout,
        };
        thread.write(x, layout.pack(initial, layout.max_pid(), 0));
        obj
    }

    /// The address of the value word (useful for flush placement by callers).
    pub fn addr(&self) -> PAddr {
        self.x
    }

    fn anon(&self) -> usize {
        self.layout.max_pid()
    }

    fn slot(&self, owner: usize, writer: usize) -> PAddr {
        self.matrix.offset((owner * self.nprocs + writer) as u64)
    }

    /// Read the current value.
    pub fn read(&self, thread: &PThread<'_>) -> u64 {
        self.layout.value_of(thread.read(self.x))
    }

    /// Recoverable CAS with the caller's sequence number.
    pub fn cas(&self, thread: &PThread<'_>, expected: u64, new: u64, seq: u64) -> bool {
        let me = thread.pid();
        debug_assert!(me < self.nprocs);
        let observed = thread.read(self.x);
        let (v, owner, owner_seq) = self.layout.unpack(observed);
        if v != expected {
            return false;
        }
        // Notify the previous winner in our single-writer slot of its row.
        if owner != self.anon() {
            thread.write(self.slot(owner, me), (owner_seq << 1) | 1);
        }
        let desired = self.layout.pack(new, me, seq);
        thread.cas(self.x, observed, desired)
    }

    /// Recovery: O(P) scan of the caller's notification row, plus a check of the
    /// object's current value (the caller's own CAS may still be installed and not
    /// yet overwritten by anyone, in which case no notification exists yet).
    pub fn recover(&self, thread: &PThread<'_>) -> RecoverResult {
        let me = thread.pid();
        let (_, owner, owner_seq) = self.layout.unpack(thread.read(self.x));
        let mut best = RecoverResult { seq: 0, flag: false };
        if owner == me {
            best = RecoverResult {
                seq: owner_seq,
                flag: true,
            };
        }
        for writer in 0..self.nprocs {
            let w = thread.read(self.slot(me, writer));
            let seq = w >> 1;
            let flag = (w & 1) != 0;
            if flag && seq > best.seq {
                best = RecoverResult { seq, flag: true };
            }
        }
        best
    }

    /// `checkRecovery` for this variant (same contract as [`crate::check_recovery`]).
    pub fn check_recovery(&self, thread: &PThread<'_>, seq: u64) -> bool {
        let r = self.recover(thread);
        r.flag && r.seq >= seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PMem;

    #[test]
    fn basic_cas_and_read() {
        let mem = PMem::with_threads(2);
        let t = mem.thread(0);
        let obj = AttiyaRcas::new(&t, 2, 100);
        assert_eq!(obj.read(&t), 100);
        assert!(obj.cas(&t, 100, 200, 1));
        assert!(!obj.cas(&t, 100, 300, 2));
        assert_eq!(obj.read(&t), 200);
    }

    #[test]
    fn recover_sees_own_uncontended_success() {
        let mem = PMem::with_threads(2);
        let t = mem.thread(0);
        let obj = AttiyaRcas::new(&t, 2, 0);
        assert!(obj.cas(&t, 0, 1, 4));
        let r = obj.recover(&t);
        assert_eq!(r, RecoverResult { seq: 4, flag: true });
        assert!(obj.check_recovery(&t, 4));
        assert!(!obj.check_recovery(&t, 5));
    }

    #[test]
    fn recover_sees_success_after_being_overwritten() {
        let mem = PMem::with_threads(3);
        let t0 = mem.thread(0);
        let t1 = mem.thread(1);
        let obj = AttiyaRcas::new(&t0, 3, 0);
        assert!(obj.cas(&t0, 0, 1, 2));
        assert!(obj.cas(&t1, 1, 2, 9));
        // p0's value is gone from x, but the notification row holds its success.
        assert!(obj.check_recovery(&t0, 2));
        assert!(obj.check_recovery(&t1, 9));
    }

    #[test]
    fn failed_cas_is_not_recoverable_as_success() {
        let mem = PMem::with_threads(2);
        let t0 = mem.thread(0);
        let t1 = mem.thread(1);
        let obj = AttiyaRcas::new(&t0, 2, 0);
        assert!(obj.cas(&t1, 0, 7, 1));
        assert!(!obj.cas(&t0, 0, 8, 1));
        assert!(!obj.check_recovery(&t0, 1));
    }

    #[test]
    fn concurrent_counter_is_exact() {
        let mem = PMem::with_threads(4);
        let t0 = mem.thread(0);
        let obj = AttiyaRcas::new(&t0, 4, 0);
        const PER_THREAD: u64 = 2_000;
        std::thread::scope(|s| {
            for pid in 0..4 {
                let mem = &mem;
                let obj = &obj;
                s.spawn(move || {
                    let t = mem.thread(pid);
                    let mut seq = 0;
                    for _ in 0..PER_THREAD {
                        loop {
                            seq += 1;
                            let v = obj.read(&t);
                            if obj.cas(&t, v, v + 1, seq) {
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(obj.read(&mem.thread(0)), 4 * PER_THREAD);
    }
}
