//! Algorithm 8: M *writable* CAS objects from O(M + P²) plain CAS objects.
//!
//! §8 of the paper: most shared writes can simply be replaced by a CAS, but a write
//! that races with a CAS on the same location cannot (the write must win even if its
//! expected value is stale). The fix is a level of indirection — the value of
//! logical object `j` lives in `B[Ptr[j]]`, reads and CASes dereference `Ptr[j]`,
//! and a write installs its value in a *fresh* location of `B` and swings `Ptr[j]`
//! to it. The writer and the CASer therefore never touch the same low-level word,
//! eliminating the race, and every remaining update is a CAS which the recoverable
//! CAS machinery can handle.
//!
//! Reclaiming locations of `B` uses the announcement (hazard-pointer-like) scheme of
//! Aghazadeh, Golab and Woelfel: `getObjectIdx` announces which logical object the
//! process is about to access (with a `help` bit so that sluggish announcements are
//! completed by others); a writer recycles the location it just unlinked only after
//! scanning the announcements and skipping any location that is still protected.
//! Each process owns a disjoint pool of spare locations, so a `Write` finds a free
//! location in amortised constant time (the scan is O(P) and happens at most once
//! per Θ(P) writes).

use pmem::{PAddr, PThread, LINE_WORDS};

use crate::SHARD_PIDS;

/// The shared, persistent part of the construction: the backing array `B`, the
/// per-object pointers `Ptr`, the per-process announcements `A` and the per-location
/// ownership/announced `status` array.
#[derive(Clone, Copy, Debug)]
pub struct WritableCasArray {
    b_base: PAddr,
    ptr_base: PAddr,
    ann_base: PAddr,
    status_base: PAddr,
    /// Number of logical writable CAS objects.
    m: usize,
    /// Number of processes.
    p: usize,
    /// Spare locations owned by each process.
    per_proc: usize,
    /// Shared-cache flush discipline: flush (and fence) a freshly written backing
    /// location before the `Ptr[j]` CAS publishes it, so a full-system crash can
    /// never leave a durable pointer to a value that rolled back to garbage —
    /// the same publish-last rule as
    /// [`RcasSpace::with_durability`](crate::RcasSpace::with_durability).
    durable: bool,
}

// --- packing helpers --------------------------------------------------------

fn pack_ann(index: u64, seq: u64, help: bool) -> u64 {
    debug_assert!(index < (1 << 32));
    debug_assert!(seq < (1 << 31));
    (index << 32) | (seq << 1) | help as u64
}

fn unpack_ann(word: u64) -> (u64, u64, bool) {
    (word >> 32, (word >> 1) & ((1 << 31) - 1), word & 1 == 1)
}

fn pack_status(pid: usize, announced: bool) -> u64 {
    ((pid as u64) << 1) | announced as u64
}

fn unpack_status(word: u64) -> (usize, bool) {
    ((word >> 1) as usize, word & 1 == 1)
}

impl WritableCasArray {
    /// Build `m` writable CAS objects (all initialised to 0) for `p` processes.
    pub fn new(thread: &PThread<'_>, m: usize, p: usize) -> WritableCasArray {
        assert!(m >= 1 && p >= 1);
        // 2P + 2 spare locations per process: enough that the announcement scan can
        // never pin every retired location at once (see module docs).
        let per_proc = 2 * p + 2;
        let b_len = m + p * per_proc;
        // The announcement array is the construction's hottest cross-process
        // state: every read/CAS/write announces. One cache line per pid —
        // grouped into the same per-pid-group shard blocks as `RcasSpace`
        // (padding line between groups) — so announcing never false-shares
        // with another process's slot and the reclamation scan walks whole
        // shard lines at a time.
        let ann_groups = p.div_ceil(SHARD_PIDS) as u64;
        let ann_stride = (SHARD_PIDS as u64 + 1) * LINE_WORDS;
        let arr = WritableCasArray {
            b_base: thread.alloc(b_len as u64),
            ptr_base: thread.alloc(m as u64),
            ann_base: thread.alloc_aligned(ann_groups * ann_stride),
            status_base: thread.alloc(b_len as u64),
            m,
            p,
            per_proc,
            durable: false,
        };
        // Ptr[j] = j: object j initially lives in B[j].
        for j in 0..m {
            thread.write(arr.ptr_addr(j), j as u64);
        }
        arr
    }

    /// Enable (or disable) the durable-write flush discipline: each `Write`
    /// flushes + fences the fresh backing location before swinging `Ptr[j]` to
    /// it. Only the *published value* is covered — the announcement/status
    /// reclamation metadata is volatile bookkeeping that is rebuilt on restart.
    pub fn with_durability(mut self, durable: bool) -> WritableCasArray {
        self.durable = durable;
        self
    }

    /// Whether the durable-write flush discipline is enabled.
    pub fn durable(&self) -> bool {
        self.durable
    }

    /// Number of logical objects.
    pub fn len(&self) -> usize {
        self.m
    }

    /// True if the array holds no logical objects (never the case after `new`).
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    fn b_addr(&self, idx: u64) -> PAddr {
        debug_assert!((idx as usize) < self.m + self.p * self.per_proc);
        self.b_base.offset(idx)
    }

    fn ptr_addr(&self, j: usize) -> PAddr {
        debug_assert!(j < self.m);
        self.ptr_base.offset(j as u64)
    }

    fn ann_addr(&self, pid: usize) -> PAddr {
        debug_assert!(pid < self.p);
        let group = (pid / SHARD_PIDS) as u64;
        let slot = (pid % SHARD_PIDS) as u64;
        let stride = (SHARD_PIDS as u64 + 1) * LINE_WORDS;
        self.ann_base.offset(group * stride + slot * LINE_WORDS)
    }

    fn status_addr(&self, idx: u64) -> PAddr {
        self.status_base.offset(idx)
    }

    /// Directly set the initial value of object `j` (before concurrent use begins).
    pub fn init_value(&self, thread: &PThread<'_>, j: usize, value: u64) {
        let idx = thread.read(self.ptr_addr(j));
        thread.write(self.b_addr(idx), value);
    }

    /// Create the per-process volatile handle for the calling thread.
    pub fn handle(&self, thread: &PThread<'_>) -> WritableCasHandle {
        let pid = thread.pid();
        assert!(pid < self.p, "pid {pid} out of range for this WritableCasArray");
        let first = (self.m + pid * self.per_proc) as u64;
        let free_ptr = first;
        let free_list = ((first + 1)..(first + self.per_proc as u64)).collect();
        WritableCasHandle {
            arr: *self,
            free_ptr,
            free_list,
            retired_list: Vec::new(),
        }
    }
}

/// The per-process, volatile part of the construction: the spare-location pool.
///
/// A handle must only be used by the process (thread) that created it, and only one
/// handle per process may exist at a time — otherwise two writers would share the
/// same spare-location pool. The handle is intentionally not `Clone`.
#[derive(Debug)]
pub struct WritableCasHandle {
    arr: WritableCasArray,
    free_ptr: u64,
    free_list: Vec<u64>,
    retired_list: Vec<u64>,
}

impl WritableCasHandle {
    /// `getObjectIdx(j)`: announce the access (so the location cannot be recycled
    /// under us) and resolve the logical object to its current backing location.
    fn get_object_idx(&self, thread: &PThread<'_>, j: usize) -> u64 {
        let arr = &self.arr;
        let me = thread.pid();
        let ann = arr.ann_addr(me);
        let current = thread.read(ann);
        let (_, seq, _) = unpack_ann(current);
        let new_seq = (seq + 1) & ((1 << 31) - 1);
        // "This CAS cannot fail": our help bit is currently 0, so no helper touches
        // our slot; only we write it.
        let announced = pack_ann(j as u64, new_seq, true);
        let ok = thread.cas(ann, current, announced);
        debug_assert!(ok, "announcement CAS lost a race it cannot lose");
        let ptr = thread.read(arr.ptr_addr(j));
        // Try to complete our own announcement; a helper may already have done so.
        let _ = thread.cas(ann, announced, pack_ann(ptr, new_seq, false));
        let (index, _, _) = unpack_ann(thread.read(ann));
        index
    }

    /// `read(j)`: the current value of logical object `j`.
    pub fn read(&self, thread: &PThread<'_>, j: usize) -> u64 {
        let idx = self.get_object_idx(thread, j);
        thread.read(self.arr.b_addr(idx))
    }

    /// `CAS(j, old, new)`: compare-and-swap on logical object `j`.
    pub fn cas(&self, thread: &PThread<'_>, j: usize, old: u64, new: u64) -> bool {
        let idx = self.get_object_idx(thread, j);
        thread.cas(self.arr.b_addr(idx), old, new)
    }

    /// `Write(j, value)`: unconditionally set logical object `j` to `value`. The
    /// write is linearized at the successful swing of `Ptr[j]`, or immediately
    /// before the competing write that beat it (§8).
    pub fn write(&mut self, thread: &PThread<'_>, j: usize, value: u64) {
        let arr = self.arr;
        let new_ptr = self.free_ptr;
        // Nobody references B[new_ptr]: we own it and it is not linked from Ptr.
        thread.write(arr.b_addr(new_ptr), value);
        if arr.durable {
            // The value must be durable before the pointer swing can make it
            // reachable (publish-last; see `with_durability`).
            thread.persist(arr.b_addr(new_ptr));
        }
        let old_ptr = thread.read(arr.ptr_addr(j));
        if thread.cas(arr.ptr_addr(j), old_ptr, new_ptr) {
            self.free_ptr = self.recycle(thread, old_ptr);
        }
        // If the CAS failed, another write swung the pointer first; our value is
        // linearized immediately before it and B[new_ptr] stays ours for next time.
    }

    /// `recycle(ptr)`: retire a location we just unlinked and return a location that
    /// is safe to reuse for the next write.
    fn recycle(&mut self, thread: &PThread<'_>, ptr: u64) -> u64 {
        let arr = self.arr;
        let me = thread.pid();
        self.retired_list.push(ptr);
        // Take ownership of the retired location ("cannot fail": single writer).
        let cur = thread.read(arr.status_addr(ptr));
        let ok = thread.cas(arr.status_addr(ptr), cur, pack_status(me, false));
        debug_assert!(ok);

        if self.free_list.is_empty() {
            let mut ann_list: Vec<u64> = Vec::with_capacity(arr.p);
            // Walk the announcement array shard by shard, own group first:
            // every pid is still visited (any process can protect one of our
            // locations, so correctness needs the full scan), but the memory
            // order follows the shard blocks — each group's lines are read
            // together, and the scan's hot start is the group the scanner
            // already shares lines-of-interest with.
            let groups = arr.p.div_ceil(SHARD_PIDS);
            let my_group = me / SHARD_PIDS;
            let group_ordered = (0..groups)
                .map(|gi| (my_group + gi) % groups)
                .flat_map(|g| g * SHARD_PIDS..((g + 1) * SHARD_PIDS).min(arr.p));
            for q in group_ordered {
                // Help slow announcements complete, then record which of our
                // locations are protected.
                let a_word = thread.read(arr.ann_addr(q));
                let (index, seq, help) = unpack_ann(a_word);
                if help {
                    let ptr_now = thread.read(arr.ptr_addr(index as usize));
                    let _ = thread.cas(arr.ann_addr(q), a_word, pack_ann(ptr_now, seq, false));
                }
                let a_word = thread.read(arr.ann_addr(q));
                let (index, _, help) = unpack_ann(a_word);
                if !help {
                    let (owner, _) = unpack_status(thread.read(arr.status_addr(index)));
                    if owner == me {
                        ann_list.push(index);
                        let cur = thread.read(arr.status_addr(index));
                        let _ = thread.cas(arr.status_addr(index), cur, pack_status(me, true));
                    }
                }
            }
            let mut still_retired = Vec::with_capacity(self.retired_list.len());
            for &r in &self.retired_list {
                let (_, announced) = unpack_status(thread.read(arr.status_addr(r)));
                if announced {
                    still_retired.push(r);
                } else {
                    self.free_list.push(r);
                }
            }
            self.retired_list = still_retired;
            for &a in &ann_list {
                let cur = thread.read(arr.status_addr(a));
                let _ = thread.cas(arr.status_addr(a), cur, pack_status(me, false));
            }
        }
        self.free_list
            .pop()
            .expect("writable-CAS spare pool exhausted: a location leaked or a handle was shared across threads")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PMem;

    #[test]
    fn single_thread_read_write_cas() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let arr = WritableCasArray::new(&t, 4, 1);
        let mut h = arr.handle(&t);
        assert_eq!(h.read(&t, 0), 0);
        h.write(&t, 0, 10);
        assert_eq!(h.read(&t, 0), 10);
        assert!(h.cas(&t, 0, 10, 11));
        assert!(!h.cas(&t, 0, 10, 12));
        assert_eq!(h.read(&t, 0), 11);
        // Other objects are independent.
        assert_eq!(h.read(&t, 3), 0);
        h.write(&t, 3, 99);
        assert_eq!(h.read(&t, 3), 99);
        assert_eq!(h.read(&t, 0), 11);
    }

    #[test]
    fn many_writes_force_recycling_without_exhaustion() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let arr = WritableCasArray::new(&t, 2, 1);
        let mut h = arr.handle(&t);
        // Far more writes than the spare pool size: recycling must kick in.
        for i in 0..10_000u64 {
            h.write(&t, (i % 2) as usize, i);
            assert_eq!(h.read(&t, (i % 2) as usize), i);
        }
        assert_eq!(h.read(&t, 0), 9_998);
        assert_eq!(h.read(&t, 1), 9_999);
    }

    #[test]
    fn init_value_sets_starting_state() {
        let mem = PMem::with_threads(2);
        let t = mem.thread(0);
        let arr = WritableCasArray::new(&t, 3, 2);
        arr.init_value(&t, 1, 55);
        let h = arr.handle(&t);
        assert_eq!(h.read(&t, 1), 55);
        assert_eq!(h.read(&t, 0), 0);
    }

    #[test]
    fn readers_never_observe_recycled_garbage() {
        // A single writer stores strictly increasing values; concurrent readers must
        // only ever see monotonically non-decreasing values. Any use-after-recycle
        // of a B location would surface as a value going backwards (or a wild value).
        let mem = PMem::with_threads(4);
        let t0 = mem.thread(0);
        let arr = WritableCasArray::new(&t0, 1, 4);
        const WRITES: u64 = 20_000;
        std::thread::scope(|s| {
            {
                let mem = &mem;
                let arr = &arr;
                s.spawn(move || {
                    let t = mem.thread(0);
                    let mut h = arr.handle(&t);
                    for i in 1..=WRITES {
                        h.write(&t, 0, i);
                    }
                });
            }
            for pid in 1..4 {
                let mem = &mem;
                let arr = &arr;
                s.spawn(move || {
                    let t = mem.thread(pid);
                    let h = arr.handle(&t);
                    let mut last = 0;
                    for _ in 0..20_000 {
                        let v = h.read(&t, 0);
                        assert!(v <= WRITES, "read a value that was never written: {v}");
                        assert!(v >= last, "monotonic writer but read went backwards: {last} -> {v}");
                        last = v;
                    }
                });
            }
        });
        let t = mem.thread(0);
        let h = arr.handle(&t);
        assert_eq!(h.read(&t, 0), WRITES);
    }

    #[test]
    fn concurrent_cas_counter_with_interfering_writes_keeps_register_semantics() {
        // Threads 1..3 increment object 0 via CAS; thread 0 occasionally resets it
        // to a large base value with Write. Whatever interleaving happens, the final
        // value must be explainable: at least the last reset base, at most base plus
        // all increments.
        let mem = PMem::with_threads(4);
        let t0 = mem.thread(0);
        let arr = WritableCasArray::new(&t0, 1, 4);
        const INCS_PER_THREAD: u64 = 3_000;
        const BASE: u64 = 1_000_000;
        std::thread::scope(|s| {
            {
                let mem = &mem;
                let arr = &arr;
                s.spawn(move || {
                    let t = mem.thread(0);
                    let mut h = arr.handle(&t);
                    for k in 1..=5u64 {
                        h.write(&t, 0, k * BASE);
                        std::thread::yield_now();
                    }
                });
            }
            for pid in 1..4 {
                let mem = &mem;
                let arr = &arr;
                s.spawn(move || {
                    let t = mem.thread(pid);
                    let h = arr.handle(&t);
                    for _ in 0..INCS_PER_THREAD {
                        loop {
                            let v = h.read(&t, 0);
                            if h.cas(&t, 0, v, v + 1) {
                                break;
                            }
                        }
                    }
                });
            }
        });
        let t = mem.thread(0);
        let h = arr.handle(&t);
        let v = h.read(&t, 0);
        assert!(v >= 5 * BASE, "final value lost the last write: {v}");
        assert!(
            v <= 5 * BASE + 3 * INCS_PER_THREAD,
            "final value has phantom increments: {v}"
        );
    }

    #[test]
    fn durable_write_survives_full_system_crash_where_relaxed_does_not() {
        use pmem::{MemConfig, Mode};
        // Publish-last in action: a durable Write persists the fresh backing
        // location before swinging Ptr[j], so once the caller persists the
        // pointer word the value survives a power failure; the relaxed mode
        // leaves the backing location to roll back to garbage under the same
        // sequence. The auditor confirms the discipline at instruction level.
        let run = |durable: bool| -> (u64, u64) {
            let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
            mem.flush_auditor().arm();
            let t = mem.thread(0);
            // m = 8 spreads B and Ptr across distinct cache lines; with a tiny
            // array they pack onto one line and the pointer persist below would
            // accidentally cover the value, hiding the difference under test.
            let arr = WritableCasArray::new(&t, 8, 1).with_durability(durable);
            mem.persist_everything();
            let mut h = arr.handle(&t);
            h.write(&t, 0, 77);
            let idx = t.read(arr.ptr_addr(0));
            assert_ne!(
                arr.b_addr(idx).line_base(),
                arr.ptr_addr(0).line_base(),
                "test geometry: the value and the pointer must not share a line"
            );
            // The pointer swing's own durability is the caller's post-publish
            // responsibility, as for every CAS target in this crate.
            t.persist(arr.ptr_addr(0));
            mem.crash_all();
            let idx = t.read(arr.ptr_addr(0));
            (t.read(arr.b_addr(idx)), mem.flush_auditor().flags())
        };
        assert_eq!(run(true), (77, 0), "durable write + silent auditor");
        let (value, flags) = run(false);
        assert_eq!(value, 0, "relaxed mode rolls the published value back");
        assert!(flags > 0, "the auditor must flag the unflushed publication");
    }

    #[test]
    #[should_panic]
    fn out_of_range_pid_handle_panics() {
        let mem = PMem::with_threads(2);
        let t = mem.thread(1);
        let arr = WritableCasArray::new(&t, 1, 1); // built for 1 process
        let _ = arr.handle(&t); // pid 1 out of range
    }
}
