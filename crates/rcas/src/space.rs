//! Algorithm 1: the constant-time recoverable CAS.
//!
//! The object's state is a single persistent word holding the packed triple
//! ⟨value, pid, seq⟩ of the most recent *successful* CAS, plus one announcement word
//! per process (⟨seq, flag⟩). A CAS by process `i` with sequence number `s`:
//!
//! 1. reads the current triple ⟨v, j, s'⟩ and, if `v` is not the expected value,
//!    fails immediately (this read is the *notify* read),
//! 2. **notifies** process `j` by CASing its announcement from ⟨s', 0⟩ to ⟨s', 1⟩
//!    ("your CAS number s' did succeed — I am about to overwrite it"),
//! 3. **announces** its own attempt by writing ⟨s, 0⟩ into its announcement slot,
//! 4. performs the actual CAS from ⟨v, j, s'⟩ to ⟨new, i, s⟩.
//!
//! `Recover` re-runs the notify step (so it also works when the crash happened after
//! the operation finished — the strict-linearizability strengthening of §4) and then
//! returns the caller's announcement word.
//!
//! ## Sharing the announcement array
//!
//! The paper declares the announcement array per object (`A[P]` inside the `RCas`
//! class), which makes the contention-delay argument immediate. Because sequence
//! numbers are unique *per process across all objects*, a single announcement slot
//! per process can be shared by every object created in the same [`RcasSpace`]
//! without changing what `Recover` may return — a notifier only flips the flag of an
//! announcement whose sequence number it read inside the object it is operating on,
//! and a process always recovers against the same object it CASed. Sharing keeps
//! linked-structure nodes at their original size (the x word simply replaces the
//! plain pointer word). Callers who want the paper's exact per-object layout can
//! create one space per object; the stress tests exercise both configurations.
//!
//! ## Anonymous CASes
//!
//! §7's optimisation lets wrap-up/generator CASes "leave out their own ID and
//! sequence number" so that they never clobber the notification owed to an executor
//! CAS on the same location. [`RcasSpace::cas_anonymous`] implements this by
//! installing the reserved pid [`RcasSpace::anonymous_pid`] and sequence number 0,
//! and by skipping the announce step. Such CASes must only be used where the
//! surrounding algorithm guarantees they are safe to repeat (parallelizable methods).
//!
//! ## Durable announcements (the shared-cache flush discipline)
//!
//! In the private-cache model every store is immediately durable, so the protocol
//! above is complete as written. In the *shared-cache* model the announcement words
//! live in the (volatile) cache like everything else, and the protocol's recovery
//! guarantee silently depends on a flush-ordering invariant: **no state reachable
//! after a full-system crash may durably point past announcement state that is not
//! itself durable.** Concretely, two lines must be flushed (and fenced) *before*
//! the publishing CAS on `x`:
//!
//! * the caller's own announcement ⟨seq, 0⟩ — otherwise a crash after the caller
//!   persisted `x` rolls the announcement back, `Recover` finds a stale word,
//!   `checkRecovery` reports *not done*, and the capsule re-executes a CAS that is
//!   already durable (the duplicate-element bug the `dfck` full-system sweep found);
//! * the *previous winner's* announcement line — the notify CAS (or an earlier
//!   notifier's, or the owner's own self-notify) may have set the flag in cache
//!   only, and overwriting the ⟨value, pid, seq⟩ triple destroys the only other
//!   durable evidence that the owner's CAS succeeded. The flush is issued whether
//!   or not this call's notify CAS won: the *current cache state* of that line is
//!   what must be durable before the triple is overwritten.
//!
//! [`RcasSpace::with_durability`] enables this discipline (one extra flush+fence
//! per recoverable CAS, plus one flush when a non-anonymous owner is notified);
//! durable-queue callers under `Durability::Manual` semantics want it, while
//! private-cache and Izraelevitz-construction callers can skip it. The fence
//! before the CAS is *not* elidable by the `-Opt` fence-elision rule: it orders
//! the announcement flushes before the publish, which a subsequent CAS does not.

use pmem::{PAddr, PThread, LINE_WORDS};

use crate::layout::{PackError, RcasLayout};

/// Number of processes per announcement *shard*: each group of `SHARD_PIDS`
/// consecutive pids owns one cache-line-aligned block of announcement lines,
/// and group-scoped helpers ([`RcasSpace::help_group`]) scan only their own
/// block. Shard blocks are separated by one padding line so that adjacent
/// shards never share a spatial-prefetch pair and a helper's scan stays
/// entirely inside its group's lines.
pub const SHARD_PIDS: usize = 4;

/// Offsets of the recovery-evidence words inside a process's announcement
/// line (word 0 is the ⟨seq, flag⟩ announcement itself). Written by
/// [`RcasSpace::cas_with_evidence`] *before* the announcement word so the
/// one announcement flush covers attempt and evidence together.
const EVIDENCE_SEQ: u64 = 1;
const EVIDENCE_X: u64 = 2;
const EVIDENCE_NEW: u64 = 3;
const EVIDENCE_EXPECTED: u64 = 4;
const EVIDENCE_AUX: u64 = 5;

/// The durable evidence a [`RcasSpace::cas_with_evidence`] call leaves on the
/// caller's announcement line: which object the announced sequence number
/// targeted and what it tried to install. Valid only while the evidence seq
/// matches the announcement seq (a later evidence-free CAS re-uses the
/// announcement word and invalidates the pairing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CasEvidence {
    /// The announced attempt: sequence number and success flag.
    pub result: RecoverResult,
    /// The recoverable-CAS word the attempt targeted.
    pub x: PAddr,
    /// The value the attempt tried to install.
    pub new: u64,
    /// The application value the attempt expected to find.
    pub expected: u64,
    /// Caller-defined payload persisted with the attempt (the normalized
    /// simulator stores its `CasDesc::aux` word here so a crashed fast-path
    /// wrap-up can be replayed from evidence alone).
    pub aux: u64,
}

/// Result of a `Recover` call: the announcement word of the recovering process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoverResult {
    /// The sequence number stored in the announcement slot.
    pub seq: u64,
    /// Whether that sequence number's CAS is known to have succeeded.
    pub flag: bool,
}

impl RecoverResult {
    /// Pack as the announcement-word encoding `(seq << 1) | flag`.
    fn pack(self) -> u64 {
        (self.seq << 1) | (self.flag as u64)
    }

    fn unpack(word: u64) -> RecoverResult {
        RecoverResult {
            seq: word >> 1,
            flag: (word & 1) != 0,
        }
    }
}

/// A family of recoverable CAS objects sharing a per-process announcement array.
///
/// Create one space per data structure (or per object, for the paper's exact
/// layout), then format individual words with [`init_word`](RcasSpace::init_word)
/// or allocate standalone objects with [`create`](RcasSpace::create).
#[derive(Clone, Copy, Debug)]
pub struct RcasSpace {
    ann_base: PAddr,
    nprocs: usize,
    layout: RcasLayout,
    /// Shared-cache flush discipline: flush (and fence) the announcement lines a
    /// CAS depends on *before* the publishing CAS (see the module docs). Off by
    /// default — private-cache and Izraelevitz-construction callers need no
    /// explicit flushes.
    durable: bool,
}

impl RcasSpace {
    /// Create a space for `nprocs` processes. `nprocs` must be strictly smaller
    /// than the layout's maximum pid, because the all-ones pid is reserved for
    /// anonymous CASes.
    pub fn new(thread: &PThread<'_>, nprocs: usize, layout: RcasLayout) -> RcasSpace {
        assert!(nprocs >= 1);
        assert!(
            nprocs < layout.max_pid(),
            "nprocs ({nprocs}) must be < max pid ({}); the largest pid is reserved for anonymous CASes",
            layout.max_pid()
        );
        // One cache line per announcement slot: announcements are per-process local
        // state and must not share flush granularity with unrelated processes.
        // Line-aligned: a plain multi-line `alloc` may start mid-line, putting
        // the first/last slots on lines shared with neighbouring records, whose
        // flushes and rollbacks would then couple to announcement state.
        // Slots are grouped into per-pid-group shards of `SHARD_PIDS` lines
        // (plus a padding line between shards), so group-scoped helpers touch
        // only their own shard's lines.
        let groups = nprocs.div_ceil(SHARD_PIDS) as u64;
        let ann_base = thread.alloc_aligned(groups * Self::shard_stride());
        RcasSpace {
            ann_base,
            nprocs,
            layout,
            durable: false,
        }
    }

    /// Create a space with the default layout.
    pub fn with_default_layout(thread: &PThread<'_>, nprocs: usize) -> RcasSpace {
        RcasSpace::new(thread, nprocs, RcasLayout::DEFAULT)
    }

    /// Enable (or disable) the durable-announcement flush discipline of the module
    /// docs: announcement lines are flushed, and a fence issued, before every
    /// publishing CAS, so that a full-system crash can never leave a durable
    /// ⟨value, pid, seq⟩ triple whose recovery evidence was still volatile.
    pub fn with_durability(mut self, durable: bool) -> RcasSpace {
        self.durable = durable;
        self
    }

    /// Whether the durable-announcement flush discipline is enabled.
    pub fn durable(&self) -> bool {
        self.durable
    }

    /// The packed-word layout used by this space.
    pub fn layout(&self) -> RcasLayout {
        self.layout
    }

    /// Number of processes this space supports.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The reserved pid installed by anonymous CASes and by initial values.
    pub fn anonymous_pid(&self) -> usize {
        self.layout.max_pid()
    }

    /// Words from one shard block's start to the next: `SHARD_PIDS`
    /// announcement lines plus one padding line.
    fn shard_stride() -> u64 {
        (SHARD_PIDS as u64 + 1) * LINE_WORDS
    }

    /// The shard (pid group) index `pid` belongs to.
    pub fn shard_of(&self, pid: usize) -> usize {
        pid / SHARD_PIDS
    }

    /// Address of process `pid`'s announcement word.
    pub fn ann_addr(&self, pid: usize) -> PAddr {
        assert!(pid < self.nprocs, "pid {pid} out of range");
        let group = (pid / SHARD_PIDS) as u64;
        let slot = (pid % SHARD_PIDS) as u64;
        self.ann_base
            .offset(group * Self::shard_stride() + slot * LINE_WORDS)
    }

    /// Format the persistent word at `addr` as a recoverable CAS object holding
    /// `initial`. The initial state is attributed to the anonymous pid so that no
    /// process is ever notified about it.
    pub fn init_word(&self, thread: &PThread<'_>, addr: PAddr, initial: u64) {
        let packed = self.layout.pack(initial, self.anonymous_pid(), 0);
        thread.write(addr, packed);
    }

    /// Allocate and format a standalone recoverable CAS object.
    pub fn create(&self, thread: &PThread<'_>, initial: u64) -> RCas {
        let addr = thread.alloc(1);
        self.init_word(thread, addr, initial);
        RCas { addr }
    }

    // ----- Algorithm 1 -------------------------------------------------------

    /// `Read()` — the current application value of the object at `x`.
    #[inline]
    pub fn read(&self, thread: &PThread<'_>, x: PAddr) -> u64 {
        self.layout.value_of(thread.read(x))
    }

    /// Read the full ⟨value, pid, seq⟩ triple (mostly for tests and debugging).
    pub fn read_full(&self, thread: &PThread<'_>, x: PAddr) -> (u64, usize, u64) {
        self.layout.unpack(thread.read(x))
    }

    /// Notify the owner of the triple `(owner_pid, owner_seq)` that its CAS
    /// succeeded, unless the owner is the anonymous pid.
    #[inline]
    fn notify(&self, thread: &PThread<'_>, owner_pid: usize, owner_seq: u64) {
        if owner_pid == self.anonymous_pid() {
            return;
        }
        let ann = self.ann_addr(owner_pid);
        let old = RecoverResult {
            seq: owner_seq,
            flag: false,
        }
        .pack();
        let new = RecoverResult {
            seq: owner_seq,
            flag: true,
        }
        .pack();
        // The CAS may fail if the owner has already announced a newer operation or
        // has already been notified — both are fine (Lemma A.1).
        let _ = thread.cas(ann, old, new);
        if self.durable {
            // Make the owner's announcement state durable before any caller
            // overwrites (and persists) the triple that backs it up. Issued even
            // when the CAS above lost: the flag may have been set earlier and
            // still be sitting unflushed in the cache (module docs).
            thread.flush(ann);
        }
    }

    /// `Cas(a, b, seq, i)` — recoverable compare-and-swap by the calling thread.
    ///
    /// `seq` must be strictly positive, strictly increasing across the calling
    /// process's operations, and each `seq` value must be used by at most one CAS
    /// *attempt group* (a capsule may retry the same ⟨seq, a, b⟩ after a crash —
    /// that is exactly the case the recovery machinery makes safe).
    pub fn cas(&self, thread: &PThread<'_>, x: PAddr, expected: u64, new: u64, seq: u64) -> bool {
        self.cas_inner(thread, x, expected, new, seq, None)
    }

    /// [`cas`](RcasSpace::cas) with a checked encode: sequence-number (or value)
    /// exhaustion surfaces as a typed [`PackError`] at the call site instead of
    /// a panic deep inside a sweep. The encode is validated *before* any
    /// protocol side effect, so an `Err` leaves the object, the announcement
    /// slot and the notification state untouched — long-running drivers (the
    /// million-key map workload) check this once per operation and bail out
    /// cleanly when a pid runs its seq field dry.
    pub fn try_cas(
        &self,
        thread: &PThread<'_>,
        x: PAddr,
        expected: u64,
        new: u64,
        seq: u64,
    ) -> Result<bool, PackError> {
        self.layout.try_pack(new, thread.pid(), seq)?;
        Ok(self.cas_inner(thread, x, expected, new, seq, None))
    }

    /// [`cas`](RcasSpace::cas), additionally leaving durable *evidence* on the
    /// caller's announcement line: the ⟨seq, x, new, expected, aux⟩ of this
    /// attempt, written before the announcement word so that the announcement
    /// flush covers both. The contention-adaptive fast path uses this so a
    /// crash anywhere inside an un-checkpointed fast operation can be resolved
    /// from the announcement line alone ([`evidence`](RcasSpace::evidence)):
    /// evidence seq newer than the last capsule boundary means the crash hit
    /// this attempt, and the flag (after a [`recover`](RcasSpace::recover)
    /// re-notify on the recorded `x`) tells whether the CAS took effect.
    /// `aux` is an operation-defined payload carried for the caller's recovery
    /// code (e.g. the value a fast dequeue is about to return).
    pub fn cas_with_evidence(
        &self,
        thread: &PThread<'_>,
        x: PAddr,
        expected: u64,
        new: u64,
        seq: u64,
        aux: u64,
    ) -> bool {
        self.cas_inner(thread, x, expected, new, seq, Some(aux))
    }

    fn cas_inner(
        &self,
        thread: &PThread<'_>,
        x: PAddr,
        expected: u64,
        new: u64,
        seq: u64,
        evidence: Option<u64>,
    ) -> bool {
        let pid = thread.pid();
        debug_assert!(pid < self.nprocs, "thread pid {pid} not covered by this RcasSpace");
        debug_assert!(seq >= 1, "sequence numbers must start at 1");
        let observed = thread.read(x);
        let (v, owner_pid, owner_seq) = self.layout.unpack(observed);
        if v != expected {
            return false;
        }
        // Notify the previous winner before we overwrite its triple.
        self.notify(thread, owner_pid, owner_seq);
        let ann = self.ann_addr(pid);
        if let Some(aux) = evidence {
            // Evidence rides the announcement line and is written first, so
            // the announcement flush below makes ⟨attempt, evidence⟩ durable
            // as one unit: whenever the announcement word is durable, so is
            // the evidence that interprets it.
            thread.write(ann.offset(EVIDENCE_SEQ), seq);
            thread.write(ann.offset(EVIDENCE_X), x.to_raw());
            thread.write(ann.offset(EVIDENCE_NEW), new);
            thread.write(ann.offset(EVIDENCE_EXPECTED), expected);
            thread.write(ann.offset(EVIDENCE_AUX), aux);
        }
        // Announce our own attempt: ⟨seq, 0⟩. A release store: helpers read
        // this word plainly (`help_group`) before it has ever been CASed, and
        // the evidence written above must be happens-before-ordered under it.
        thread.write_release(
            ann,
            RecoverResult {
                seq,
                flag: false,
            }
            .pack(),
        );
        if self.durable {
            // The announcement must be durable before the CAS can be: a crash
            // that rolls it back while the installed triple survives makes
            // `checkRecovery` re-execute a CAS that already took effect.
            thread.flush(ann);
            thread.fence();
        }
        let desired = self.layout.pack(new, pid, seq);
        thread.cas(x, observed, desired)
    }

    /// The caller's current announcement word ⟨seq, flag⟩, *without* the
    /// re-notify step of [`recover`](RcasSpace::recover) (recovery code uses
    /// this to decide whether an evidence-carrying attempt is newer than the
    /// last capsule boundary before it knows which object to re-notify on).
    pub fn announcement(&self, thread: &PThread<'_>) -> RecoverResult {
        RecoverResult::unpack(thread.read(self.ann_addr(thread.pid())))
    }

    /// The caller's evidence triple, if the announcement line currently holds
    /// one: `None` when no evidence was ever written, when a later evidence-free
    /// CAS re-announced over it, or when the announcement is still the initial
    /// zero state.
    pub fn evidence(&self, thread: &PThread<'_>) -> Option<CasEvidence> {
        let ann = self.ann_addr(thread.pid());
        let result = RecoverResult::unpack(thread.read(ann));
        if result.seq == 0 || thread.read(ann.offset(EVIDENCE_SEQ)) != result.seq {
            return None;
        }
        let x = PAddr::from_raw(thread.read(ann.offset(EVIDENCE_X)));
        if x.is_null() {
            return None;
        }
        Some(CasEvidence {
            result,
            x,
            new: thread.read(ann.offset(EVIDENCE_NEW)),
            expected: thread.read(ann.offset(EVIDENCE_EXPECTED)),
            aux: thread.read(ann.offset(EVIDENCE_AUX)),
        })
    }

    /// Scan the caller's own announcement shard and re-run the notify step for
    /// every group member with a pending evidence-carrying attempt, so their
    /// success flags become observable without them having to run first. The
    /// scan touches only this group's shard block — helpers never walk the
    /// whole announcement array (the sharding contract). Safe to run at any
    /// time: notify is idempotent and only sets a flag the protocol already
    /// owes. Returns the number of members whose pending attempt was examined.
    pub fn help_group(&self, thread: &PThread<'_>) -> usize {
        let me = thread.pid();
        let lo = self.shard_of(me) * SHARD_PIDS;
        let hi = (lo + SHARD_PIDS).min(self.nprocs);
        let mut helped = 0;
        for q in lo..hi {
            if q == me {
                continue; // own attempts go through `recover` / `evidence`
            }
            let ann = self.ann_addr(q);
            let r = RecoverResult::unpack(thread.read(ann));
            if r.seq == 0 || r.flag {
                continue; // nothing announced, or already notified
            }
            // Intentionally racy scans: the owner may be overwriting its
            // evidence concurrently. Torn context is benign — the seq check
            // rejects stale evidence, and `notify` re-reads `x` and CASes, so
            // a misread here can only skip help the owner will redo itself.
            if thread.read_racy(ann.offset(EVIDENCE_SEQ)) != r.seq {
                continue; // evidence-free attempt: its owner recovers via its frame
            }
            let x = PAddr::from_raw(thread.read_racy(ann.offset(EVIDENCE_X)));
            if x.is_null() {
                continue;
            }
            let (_, owner_pid, owner_seq) = self.layout.unpack(thread.read(x));
            self.notify(thread, owner_pid, owner_seq);
            helped += 1;
        }
        helped
    }

    /// A CAS that installs the anonymous pid (§7): other processes will not notify
    /// the caller about it, and it does not disturb the caller's announcement slot,
    /// so the notification owed to an earlier executor CAS on the same object stays
    /// intact. Only safe where repetitions are harmless (parallelizable methods) and
    /// where the installed value cannot reintroduce ABA.
    pub fn cas_anonymous(&self, thread: &PThread<'_>, x: PAddr, expected: u64, new: u64) -> bool {
        let observed = thread.read(x);
        let (v, owner_pid, owner_seq) = self.layout.unpack(observed);
        if v != expected {
            return false;
        }
        self.notify(thread, owner_pid, owner_seq);
        if self.durable && owner_pid != self.anonymous_pid() {
            // Order the notify flush before the publish (no announcement of our
            // own to persist — anonymous CASes skip the announce step).
            thread.fence();
        }
        let desired = self.layout.pack(new, self.anonymous_pid(), 0);
        thread.cas(x, observed, desired)
    }

    /// `Recover(i)` — returns the caller's announcement ⟨seq, flag⟩ after
    /// re-performing the notify step on the object at `x`.
    pub fn recover(&self, thread: &PThread<'_>, x: PAddr) -> RecoverResult {
        let pid = thread.pid();
        let (_, owner_pid, owner_seq) = self.layout.unpack(thread.read(x));
        self.notify(thread, owner_pid, owner_seq);
        RecoverResult::unpack(thread.read(self.ann_addr(pid)))
    }
}

/// A standalone recoverable CAS object (a formatted word plus the space it belongs
/// to is supplied at each call, mirroring how embedded fields are used).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RCas {
    addr: PAddr,
}

impl RCas {
    /// Wrap an already formatted word (see [`RcasSpace::init_word`]).
    pub fn at(addr: PAddr) -> RCas {
        RCas { addr }
    }

    /// The underlying persistent word.
    pub fn addr(&self) -> PAddr {
        self.addr
    }

    /// `Read()`.
    pub fn read(&self, space: &RcasSpace, thread: &PThread<'_>) -> u64 {
        space.read(thread, self.addr)
    }

    /// `Cas(a, b, seq, i)`.
    pub fn cas(
        &self,
        space: &RcasSpace,
        thread: &PThread<'_>,
        expected: u64,
        new: u64,
        seq: u64,
    ) -> bool {
        space.cas(thread, self.addr, expected, new, seq)
    }

    /// `Recover(i)`.
    pub fn recover(&self, space: &RcasSpace, thread: &PThread<'_>) -> RecoverResult {
        space.recover(thread, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{catch_crash, install_quiet_crash_hook, CrashPolicy, PMem};

    fn setup(threads: usize) -> (PMem, RcasSpace, PAddr) {
        let mem = PMem::with_threads(threads);
        let t = mem.thread(0);
        let space = RcasSpace::with_default_layout(&t, threads);
        let obj = space.create(&t, 0);
        let addr = obj.addr();
        (mem, space, addr)
    }

    #[test]
    fn read_initial_value() {
        let (mem, space, x) = setup(2);
        let t = mem.thread(0);
        assert_eq!(space.read(&t, x), 0);
        let (_, pid, seq) = space.read_full(&t, x);
        assert_eq!(pid, space.anonymous_pid());
        assert_eq!(seq, 0);
    }

    #[test]
    fn cas_success_and_failure() {
        let (mem, space, x) = setup(2);
        let t = mem.thread(0);
        assert!(space.cas(&t, x, 0, 10, 1));
        assert_eq!(space.read(&t, x), 10);
        assert!(!space.cas(&t, x, 0, 20, 2), "expected-value mismatch must fail");
        assert_eq!(space.read(&t, x), 10);
        assert!(space.cas(&t, x, 10, 20, 3));
        assert_eq!(space.read(&t, x), 20);
        let (v, pid, seq) = space.read_full(&t, x);
        assert_eq!((v, pid, seq), (20, 0, 3));
    }

    #[test]
    fn recover_self_notifies_after_successful_cas() {
        let (mem, space, x) = setup(2);
        let t = mem.thread(0);
        assert!(space.cas(&t, x, 0, 5, 7));
        // Nobody else has touched the object; Recover must still find out that CAS
        // #7 succeeded (the self-notify path of Algorithm 1's Recover).
        let r = space.recover(&t, x);
        assert_eq!(r, RecoverResult { seq: 7, flag: true });
    }

    #[test]
    fn later_cas_by_other_process_notifies_previous_winner() {
        let (mem, space, x) = setup(2);
        let t0 = mem.thread(0);
        let t1 = mem.thread(1);
        assert!(space.cas(&t0, x, 0, 5, 1));
        assert!(space.cas(&t1, x, 5, 6, 1));
        // Process 0's announcement now carries the success flag even though process
        // 0 did nothing after its CAS.
        let r = space.recover(&t0, x);
        assert_eq!(r, RecoverResult { seq: 1, flag: true });
        // And process 1 can also recover its own success.
        let r1 = space.recover(&t1, x);
        assert_eq!(r1, RecoverResult { seq: 1, flag: true });
    }

    #[test]
    fn failed_cas_is_not_reported_as_success() {
        let (mem, space, x) = setup(2);
        let t0 = mem.thread(0);
        let t1 = mem.thread(1);
        assert!(space.cas(&t0, x, 0, 5, 1));
        assert!(!space.cas(&t1, x, 0, 9, 1), "stale expected value");
        let r1 = space.recover(&t1, x);
        assert!(
            !r1.flag || r1.seq == 0,
            "a failed CAS must never be reported as successful: {r1:?}"
        );
    }

    #[test]
    fn crash_between_announce_and_cas_reports_not_done() {
        install_quiet_crash_hook();
        let (mem, space, x) = setup(2);
        let t = mem.thread(0);
        // The cas() path is: read x (1), [notify skipped: anonymous], write announce
        // (2), CAS (3). Crash right before the CAS (after 2 more instructions).
        t.set_crash_policy(CrashPolicy::Countdown(1));
        let outcome = catch_crash(|| space.cas(&t, x, 0, 42, 1));
        assert!(outcome.is_err(), "expected the injected crash to fire");
        t.disarm_crashes();
        let r = space.recover(&t, x);
        assert!(!r.flag, "CAS never executed, recovery must not claim success");
        // Safe to repeat with the same sequence number.
        assert!(space.cas(&t, x, 0, 42, 1));
        assert_eq!(space.read(&t, x), 42);
        assert_eq!(space.recover(&t, x), RecoverResult { seq: 1, flag: true });
    }

    #[test]
    fn crash_after_cas_reports_done_and_prevents_duplicate() {
        install_quiet_crash_hook();
        let (mem, space, x) = setup(2);
        let t = mem.thread(0);
        // Instructions inside cas(): read, write (announce), cas. Crash right after
        // the final CAS lands (countdown past all three).
        t.set_crash_policy(CrashPolicy::Countdown(3));
        let outcome = catch_crash(|| {
            let ok = space.cas(&t, x, 0, 42, 1);
            // Force one more instruction so the countdown can fire after the CAS.
            let _ = space.read(&t, x);
            ok
        });
        assert!(outcome.is_err());
        t.disarm_crashes();
        let r = space.recover(&t, x);
        assert_eq!(r, RecoverResult { seq: 1, flag: true });
        // The capsule would therefore *not* repeat CAS #1; doing so anyway must fail
        // harmlessly because the expected value is stale.
        assert!(!space.cas(&t, x, 0, 42, 2));
        assert_eq!(space.read(&t, x), 42);
    }

    #[test]
    fn anonymous_cas_does_not_disturb_notifications() {
        let (mem, space, x) = setup(2);
        let t0 = mem.thread(0);
        let t1 = mem.thread(1);
        // p0's executor CAS succeeds.
        assert!(space.cas(&t0, x, 0, 5, 1));
        // p1 performs a wrap-up style anonymous CAS on the same object.
        assert!(space.cas_anonymous(&t1, x, 5, 6));
        // p0 can still learn that its CAS #1 succeeded...
        assert_eq!(space.recover(&t0, x), RecoverResult { seq: 1, flag: true });
        // ...and p1's own announcement was never touched by its anonymous CAS.
        assert_eq!(space.recover(&t1, x), RecoverResult { seq: 0, flag: false });
        let (v, pid, _) = space.read_full(&t1, x);
        assert_eq!(v, 6);
        assert_eq!(pid, space.anonymous_pid());
    }

    #[test]
    fn concurrent_counter_is_exact() {
        let mem = PMem::with_threads(4);
        let t0 = mem.thread(0);
        let space = RcasSpace::with_default_layout(&t0, 4);
        let obj = space.create(&t0, 0);
        let x = obj.addr();
        const PER_THREAD: u64 = 5_000;
        std::thread::scope(|s| {
            for pid in 0..4 {
                let mem = &mem;
                let space = &space;
                s.spawn(move || {
                    let t = mem.thread(pid);
                    let mut seq = 0;
                    for _ in 0..PER_THREAD {
                        loop {
                            seq += 1;
                            let v = space.read(&t, x);
                            if space.cas(&t, x, v, v + 1, seq) {
                                break;
                            }
                        }
                    }
                });
            }
        });
        let t = mem.thread(0);
        assert_eq!(space.read(&t, x), 4 * PER_THREAD);
    }

    #[test]
    fn concurrent_counter_with_random_crashes_increments_exactly_once() {
        install_quiet_crash_hook();
        let mem = PMem::with_threads(3);
        let t0 = mem.thread(0);
        let space = RcasSpace::with_default_layout(&t0, 3);
        let obj = space.create(&t0, 0);
        let x = obj.addr();
        const PER_THREAD: u64 = 400;
        std::thread::scope(|s| {
            for pid in 0..3 {
                let mem = &mem;
                let space = &space;
                s.spawn(move || {
                    let t = mem.thread(pid);
                    t.set_crash_policy(CrashPolicy::Random {
                        prob: 0.02,
                        seed: 0xC0FFEE + pid as u64,
                    });
                    // `seq` and `pending` play the role of state persisted at the
                    // previous capsule boundary: they survive the simulated crash.
                    let mut seq: u64 = 0;
                    let mut done: u64 = 0;
                    while done < PER_THREAD {
                        seq += 1;
                        let mut recovering = false;
                        // Retry the "capsule" until it completes without crashing.
                        loop {
                            let attempt = catch_crash(|| {
                                if recovering {
                                    let r = space.recover(&t, x);
                                    if r.flag && r.seq >= seq {
                                        return true; // already applied, do not repeat
                                    }
                                }
                                let v = space.read(&t, x);
                                // A failed CAS consumed this sequence number; in
                                // the real transformation the retry happens in a
                                // new capsule with a new seq. Mirror that here.
                                space.cas(&t, x, v, v + 1, seq)
                            });
                            match attempt {
                                Ok(true) => break,
                                Ok(false) => {
                                    // CAS failed cleanly (contention): new capsule.
                                    seq += 1;
                                    recovering = false;
                                }
                                Err(_) => {
                                    t.note_crash();
                                    recovering = true;
                                }
                            }
                        }
                        done += 1;
                    }
                });
            }
        });
        let t = mem.thread(0);
        assert_eq!(
            space.read(&t, x),
            3 * PER_THREAD,
            "each logical increment must be applied exactly once despite crashes"
        );
    }

    #[test]
    fn announcement_slots_are_sharded_per_pid_group() {
        let mem = PMem::with_threads(SHARD_PIDS * 2);
        let t = mem.thread(0);
        let space = RcasSpace::with_default_layout(&t, SHARD_PIDS * 2);
        // Within a shard: consecutive pids are one line apart.
        for pid in 0..SHARD_PIDS - 1 {
            assert_eq!(
                space.ann_addr(pid + 1).to_raw() - space.ann_addr(pid).to_raw(),
                LINE_WORDS,
            );
        }
        // Across the shard boundary: one padding line separates the blocks.
        assert_eq!(
            space.ann_addr(SHARD_PIDS).to_raw() - space.ann_addr(SHARD_PIDS - 1).to_raw(),
            2 * LINE_WORDS,
            "shard blocks must be separated by a padding line"
        );
        assert_eq!(space.shard_of(SHARD_PIDS - 1), 0);
        assert_eq!(space.shard_of(SHARD_PIDS), 1);
        // Every slot sits at a line boundary.
        for pid in 0..SHARD_PIDS * 2 {
            assert_eq!(space.ann_addr(pid), space.ann_addr(pid).line_base());
        }
    }

    #[test]
    fn evidence_round_trip_and_invalidation() {
        let (mem, space, x) = setup(2);
        let t = mem.thread(0);
        assert!(space.evidence(&t).is_none(), "fresh slot carries no evidence");
        assert!(space.cas_with_evidence(&t, x, 0, 10, 1, 77));
        let ev = space.evidence(&t).expect("evidence must survive the CAS");
        assert_eq!(ev.x, x);
        assert_eq!(ev.new, 10);
        assert_eq!(ev.expected, 0);
        assert_eq!(ev.aux, 77);
        assert_eq!(ev.result.seq, 1);
        // After a re-notify on the recorded object, the flag shows success.
        let r = space.recover(&t, x);
        assert!(r.flag && r.seq == 1);
        let ev = space.evidence(&t).unwrap();
        assert!(ev.result.flag);
        // A later evidence-free CAS re-announces over the slot: the stale
        // evidence no longer matches the announcement seq and must vanish.
        assert!(space.cas(&t, x, 10, 20, 2));
        assert!(space.evidence(&t).is_none());
        assert_eq!(space.announcement(&t).seq, 2);
    }

    #[test]
    fn help_group_completes_a_group_members_notification() {
        let nprocs = SHARD_PIDS + 1;
        let mem = PMem::with_threads(nprocs);
        let t0 = mem.thread(0);
        let space = RcasSpace::with_default_layout(&t0, nprocs);
        let x = space.create(&t0, 0).addr();
        // p0 wins an evidence-carrying CAS and "crashes" before anyone notices.
        assert!(space.cas_with_evidence(&t0, x, 0, 5, 1, 0));
        assert!(!RecoverResult::unpack(t0.read(space.ann_addr(0))).flag);
        // A pid outside p0's shard scans only its own (empty) group.
        let t_far = mem.thread(SHARD_PIDS);
        assert_eq!(space.help_group(&t_far), 0);
        assert!(
            !RecoverResult::unpack(t_far.read(space.ann_addr(0))).flag,
            "helpers must not scan outside their shard"
        );
        // A group member's scan finds the pending attempt and notifies it.
        let t1 = mem.thread(1);
        assert_eq!(space.help_group(&t1), 1);
        let r = RecoverResult::unpack(t1.read(space.ann_addr(0)));
        assert!(r.flag && r.seq == 1, "help_group must complete the notify: {r:?}");
        // p0 itself is skipped by its own scan.
        assert_eq!(space.help_group(&t0), 0);
    }

    #[test]
    fn seq_exhaustion_surfaces_as_typed_error_not_a_panic() {
        // Regression (million-key scenario): a narrow seq field exhausts mid-run
        // and `pack` panics with the "ABA hazard" assert. `try_cas` must instead
        // return the typed error, with no protocol side effects.
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let layout = RcasLayout::new(52, 6, 6); // 63-op seq ceiling
        let space = RcasSpace::new(&t, 1, layout);
        let x = space.create(&t, 0).addr();
        // Drive the single pid all the way to the ceiling...
        let mut v = 0;
        for seq in 1..=layout.max_seq() {
            assert_eq!(space.try_cas(&t, x, v, v + 1, seq), Ok(true));
            v += 1;
        }
        assert_eq!(space.read(&t, x), layout.max_seq());
        // ...one more op exhausts the field: typed error at the call site.
        let over = layout.max_seq() + 1;
        assert_eq!(
            space.try_cas(&t, x, v, v + 1, over),
            Err(PackError::SeqExhausted { seq: over, bits: 6 })
        );
        assert_eq!(space.read(&t, x), v, "failed encode must leave the object untouched");
        assert_eq!(
            space.announcement(&t).seq,
            layout.max_seq(),
            "failed encode must not announce"
        );
    }

    #[test]
    #[should_panic]
    fn nprocs_must_leave_room_for_anonymous_pid() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        // max pid for the default layout is 63; 63 processes is fine, 64 is not.
        let _ = RcasSpace::new(&t, 64, RcasLayout::DEFAULT);
    }
}
