//! Bit-packing of the ⟨value, pid, seq⟩ triple into a single 64-bit word.
//!
//! The paper notes (§9, "CAS") that the recoverable CAS algorithm needs to store a
//! value, a process id and a sequence number in one atomically updatable location,
//! and that a double-word CAS can be used on real machines. The simulator's words
//! are 64 bits, so the default encoding packs the triple into one word; callers with
//! larger values can use [`IndirectRcas`](crate::IndirectRcas) instead.
//!
//! ABA-freedom — which the recoverable CAS algorithm requires of its callers — is
//! preserved as long as the sequence-number field never wraps; [`RcasLayout::pack`]
//! therefore *panics* on overflow rather than silently truncating.

/// Why a [`RcasLayout::try_pack`] encode was rejected: one variant per field,
/// each carrying the offending input and the width it had to fit. Long-running
/// drivers (the million-op map workload, for example) match on `SeqExhausted`
/// to surface sequence-number exhaustion as a typed error at the call site
/// instead of an "ABA hazard" panic deep inside a sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PackError {
    /// The application value does not fit `value_bits`.
    ValueTooWide {
        /// The rejected value.
        value: u64,
        /// The layout's value width.
        bits: u32,
    },
    /// The process id does not fit `pid_bits`.
    PidTooWide {
        /// The rejected pid.
        pid: usize,
        /// The layout's pid width.
        bits: u32,
    },
    /// The per-process sequence number reached the field's ceiling — continuing
    /// by truncation would reintroduce the ABA problem.
    SeqExhausted {
        /// The rejected sequence number.
        seq: u64,
        /// The layout's sequence width.
        bits: u32,
    },
}

impl std::fmt::Display for PackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackError::ValueTooWide { value, bits } => {
                write!(f, "recoverable-CAS value {value:#x} does not fit in {bits} bits")
            }
            PackError::PidTooWide { pid, bits } => {
                write!(f, "pid {pid} does not fit in {bits} bits")
            }
            PackError::SeqExhausted { seq, bits } => {
                write!(f, "sequence number {seq} does not fit in {bits} bits (ABA hazard)")
            }
        }
    }
}

impl std::error::Error for PackError {}

/// Field widths for packing ⟨value, pid, seq⟩ into a 64-bit word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RcasLayout {
    /// Bits reserved for the application value (stored in the high bits).
    pub value_bits: u32,
    /// Bits reserved for the process id.
    pub pid_bits: u32,
    /// Bits reserved for the per-process sequence number (stored in the low bits).
    pub seq_bits: u32,
}

impl RcasLayout {
    /// Default layout: 32-bit values (enough for word indices into a 32 GiB arena),
    /// 6-bit pids (up to 64 processes) and 26-bit sequence numbers (67M capsules per
    /// process — far more than any test or benchmark in this repository executes).
    pub const DEFAULT: RcasLayout = RcasLayout {
        value_bits: 32,
        pid_bits: 6,
        seq_bits: 26,
    };

    /// A layout with wider sequence numbers for very long runs, at the cost of
    /// smaller values (24-bit) — used by some stress tests.
    pub const LONG_RUN: RcasLayout = RcasLayout {
        value_bits: 24,
        pid_bits: 6,
        seq_bits: 34,
    };

    /// Construct and validate a custom layout.
    pub fn new(value_bits: u32, pid_bits: u32, seq_bits: u32) -> RcasLayout {
        let l = RcasLayout {
            value_bits,
            pid_bits,
            seq_bits,
        };
        l.validate();
        l
    }

    fn validate(&self) {
        assert!(
            self.value_bits + self.pid_bits + self.seq_bits == 64,
            "RcasLayout fields must sum to exactly 64 bits (got {}+{}+{})",
            self.value_bits,
            self.pid_bits,
            self.seq_bits
        );
        assert!(self.value_bits >= 1 && self.pid_bits >= 1 && self.seq_bits >= 1);
    }

    /// Largest representable value.
    pub fn max_value(&self) -> u64 {
        mask(self.value_bits)
    }

    /// Largest representable pid.
    pub fn max_pid(&self) -> usize {
        mask(self.pid_bits) as usize
    }

    /// Largest representable sequence number.
    pub fn max_seq(&self) -> u64 {
        mask(self.seq_bits)
    }

    /// Pack a ⟨value, pid, seq⟩ triple. Panics if any field overflows its width
    /// (an overflowing sequence number would reintroduce the ABA problem).
    /// Callers that must survive exhaustion use [`try_pack`](Self::try_pack).
    #[inline]
    pub fn pack(&self, value: u64, pid: usize, seq: u64) -> u64 {
        match self.try_pack(value, pid, seq) {
            Ok(word) => word,
            Err(e) => panic!("{e}"),
        }
    }

    /// The checked encode: pack a ⟨value, pid, seq⟩ triple, or report *which*
    /// field overflowed as a typed [`PackError`] instead of panicking.
    #[inline]
    pub fn try_pack(&self, value: u64, pid: usize, seq: u64) -> Result<u64, PackError> {
        if value > self.max_value() {
            return Err(PackError::ValueTooWide {
                value,
                bits: self.value_bits,
            });
        }
        if pid as u64 > mask(self.pid_bits) {
            return Err(PackError::PidTooWide {
                pid,
                bits: self.pid_bits,
            });
        }
        if seq > self.max_seq() {
            return Err(PackError::SeqExhausted {
                seq,
                bits: self.seq_bits,
            });
        }
        Ok((value << (self.pid_bits + self.seq_bits)) | ((pid as u64) << self.seq_bits) | seq)
    }

    /// Unpack a word into ⟨value, pid, seq⟩.
    #[inline]
    pub fn unpack(&self, word: u64) -> (u64, usize, u64) {
        let seq = word & mask(self.seq_bits);
        let pid = (word >> self.seq_bits) & mask(self.pid_bits);
        let value = word >> (self.pid_bits + self.seq_bits);
        (value, pid as usize, seq)
    }

    /// Just the value component of a packed word.
    #[inline]
    pub fn value_of(&self, word: u64) -> u64 {
        word >> (self.pid_bits + self.seq_bits)
    }
}

impl Default for RcasLayout {
    fn default() -> Self {
        RcasLayout::DEFAULT
    }
}

#[inline]
fn mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_layout_is_valid() {
        RcasLayout::DEFAULT.validate();
        RcasLayout::LONG_RUN.validate();
        assert_eq!(RcasLayout::DEFAULT.max_pid(), 63);
    }

    #[test]
    fn pack_unpack_round_trip() {
        let l = RcasLayout::DEFAULT;
        let w = l.pack(0xdead_beef, 5, 1234);
        assert_eq!(l.unpack(w), (0xdead_beef, 5, 1234));
        assert_eq!(l.value_of(w), 0xdead_beef);
    }

    #[test]
    fn zero_triple_packs_to_zero() {
        let l = RcasLayout::DEFAULT;
        assert_eq!(l.pack(0, 0, 0), 0);
        assert_eq!(l.unpack(0), (0, 0, 0));
    }

    #[test]
    fn try_pack_reports_the_offending_field() {
        let l = RcasLayout::DEFAULT;
        assert_eq!(
            l.try_pack(1 << 32, 0, 0),
            Err(PackError::ValueTooWide { value: 1 << 32, bits: 32 })
        );
        assert_eq!(
            l.try_pack(0, 64, 0),
            Err(PackError::PidTooWide { pid: 64, bits: 6 })
        );
        assert_eq!(
            l.try_pack(0, 0, 1 << 26),
            Err(PackError::SeqExhausted { seq: 1 << 26, bits: 26 })
        );
        // The typed error renders the same diagnosis `pack` panics with.
        let msg = PackError::SeqExhausted { seq: 1 << 26, bits: 26 }.to_string();
        assert!(msg.contains("ABA hazard"), "missing diagnosis: {msg}");
        // At the ceiling itself the encode still succeeds.
        assert!(l.try_pack(0, 0, l.max_seq()).is_ok());
    }

    #[test]
    #[should_panic]
    fn value_overflow_panics() {
        let l = RcasLayout::DEFAULT;
        let _ = l.pack(1 << 32, 0, 0);
    }

    #[test]
    #[should_panic]
    fn seq_overflow_panics() {
        let l = RcasLayout::DEFAULT;
        let _ = l.pack(0, 0, 1 << 26);
    }

    #[test]
    #[should_panic]
    fn pid_overflow_panics() {
        let l = RcasLayout::DEFAULT;
        let _ = l.pack(0, 64, 0);
    }

    #[test]
    #[should_panic]
    fn invalid_widths_panic() {
        let _ = RcasLayout::new(32, 16, 8);
    }

    proptest! {
        #[test]
        fn prop_round_trip(value in 0u64..(1 << 32), pid in 0usize..64, seq in 0u64..(1 << 26)) {
            let l = RcasLayout::DEFAULT;
            prop_assert_eq!(l.unpack(l.pack(value, pid, seq)), (value, pid, seq));
        }

        #[test]
        fn prop_distinct_triples_pack_distinctly(
            a in (0u64..1000, 0usize..8, 0u64..1000),
            b in (0u64..1000, 0usize..8, 0u64..1000),
        ) {
            let l = RcasLayout::DEFAULT;
            if a != b {
                prop_assert_ne!(l.pack(a.0, a.1, a.2), l.pack(b.0, b.1, b.2));
            }
        }

        #[test]
        fn prop_long_run_round_trip(value in 0u64..(1 << 24), pid in 0usize..64, seq in 0u64..(1 << 34)) {
            let l = RcasLayout::LONG_RUN;
            prop_assert_eq!(l.unpack(l.pack(value, pid, seq)), (value, pid, seq));
        }
    }
}
