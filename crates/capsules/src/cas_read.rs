//! Algorithm 3: the CAS at the head of a CAS-Read capsule.
//!
//! A CAS-Read capsule may contain at most one CAS to shared memory, and it must be
//! the capsule's first shared-memory instruction; any number of shared reads and
//! local operations may follow. When such a capsule is re-executed after a crash,
//! the CAS must not take effect twice. [`recoverable_cas`] implements exactly the
//! pseudocode of Algorithm 3: advance the capsule's sequence number, and — only on
//! the crash path — consult `checkRecovery` before deciding whether to issue the
//! CAS again.

use pmem::PAddr;
use rcas::{check_recovery, RcasSpace};

use crate::runtime::CapsuleRuntime;

/// Perform the (single) recoverable CAS of a CAS-Read capsule.
///
/// Must be the first shared-memory effect of the capsule. `expected` and `new` must
/// be derived from state persisted at the previous boundary (or be constants), so
/// that repetitions of the capsule issue the same CAS — this is the capsule
/// correctness condition of Definition 2.2, and it is what makes the repetitions
/// invisible.
///
/// Returns `true` if the CAS took effect (now, or before a crash that interrupted
/// an earlier execution of this capsule).
pub fn recoverable_cas(
    rt: &mut CapsuleRuntime<'_, '_>,
    space: &RcasSpace,
    x: PAddr,
    expected: u64,
    new: u64,
) -> bool {
    let seq = rt.advance_seq();
    if rt.crashed() {
        // Operation `seq` may already have been executed before the crash.
        if check_recovery(space, rt.thread(), x, seq) {
            return true;
        }
    }
    space.cas(rt.thread(), x, expected, new, seq)
}

/// Perform an *anonymous* recoverable CAS (§7): used inside parallelizable methods
/// (generator / wrap-up) for locations that the CAS-executor also touches, so that
/// the executor's notifications are never clobbered. Does not consume a sequence
/// number and is safe to repeat by construction of parallelizable methods.
pub fn anonymous_cas(
    rt: &mut CapsuleRuntime<'_, '_>,
    space: &RcasSpace,
    x: PAddr,
    expected: u64,
    new: u64,
) -> bool {
    space.cas_anonymous(rt.thread(), x, expected, new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::BoundaryStyle;
    use crate::runtime::CapsuleStep;
    use pmem::{install_quiet_crash_hook, CrashPolicy, PMem};
    use rcas::RcasSpace;

    /// Increment a shared recoverable-CAS counter exactly `n` times, one CAS-Read
    /// capsule per increment, under the given crash policy; return the runtime.
    fn increment_n(mem: &PMem, pid: usize, x: PAddr, space: &RcasSpace, n: u64, policy: CrashPolicy) {
        let t = mem.thread(pid);
        let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::General, 2);
        // Arm crash injection only after the runtime's frame exists.
        t.set_crash_policy(policy);
        for _ in 0..n {
            rt.run_op(0, |rt| match rt.pc() {
                // Capsule 0 (read-only): read the current value, persist it.
                0 => {
                    let v = space.read(rt.thread(), x);
                    rt.set_local(0, v);
                    rt.boundary(1);
                    CapsuleStep::Continue
                }
                // Capsule 1 (CAS-Read): CAS(v, v+1); on failure go back and re-read.
                1 => {
                    let v = rt.local(0);
                    let ok = recoverable_cas(rt, space, x, v, v + 1);
                    if ok {
                        rt.boundary(2);
                        CapsuleStep::Done(())
                    } else {
                        rt.boundary(0);
                        CapsuleStep::Continue
                    }
                }
                // Capsule 2: the operation had already completed when a crash hit
                // (the final boundary was published); just report completion.
                2 => CapsuleStep::Done(()),
                pc => unreachable!("unexpected pc {pc}"),
            });
        }
        t.disarm_crashes();
    }

    #[test]
    fn single_thread_exact_count_without_crashes() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let space = RcasSpace::with_default_layout(&t, 1);
        let x = space.create(&t, 0).addr();
        increment_n(&mem, 0, x, &space, 100, CrashPolicy::Never);
        assert_eq!(space.read(&mem.thread(0), x), 100);
    }

    #[test]
    fn single_thread_exact_count_with_heavy_crashes() {
        install_quiet_crash_hook();
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let space = RcasSpace::with_default_layout(&t, 1);
        let x = space.create(&t, 0).addr();
        increment_n(
            &mem,
            0,
            x,
            &space,
            200,
            CrashPolicy::Random {
                prob: 0.05,
                seed: 7,
            },
        );
        assert_eq!(
            space.read(&mem.thread(0), x),
            200,
            "every increment must take effect exactly once despite crashes"
        );
    }

    #[test]
    fn multi_thread_exact_count_with_crashes() {
        install_quiet_crash_hook();
        const THREADS: usize = 3;
        const PER_THREAD: u64 = 150;
        let mem = PMem::with_threads(THREADS);
        let t0 = mem.thread(0);
        let space = RcasSpace::with_default_layout(&t0, THREADS);
        let x = space.create(&t0, 0).addr();
        std::thread::scope(|s| {
            for pid in 0..THREADS {
                let mem = &mem;
                let space = &space;
                s.spawn(move || {
                    increment_n(
                        mem,
                        pid,
                        x,
                        space,
                        PER_THREAD,
                        CrashPolicy::Random {
                            prob: 0.01,
                            seed: 1000 + pid as u64,
                        },
                    );
                });
            }
        });
        assert_eq!(
            space.read(&mem.thread(0), x),
            THREADS as u64 * PER_THREAD,
            "increments must be exactly-once under concurrency and crashes"
        );
    }

    #[test]
    fn durable_space_survives_full_system_crashes_at_every_crash_point() {
        // The capsule-level form of the flush-discipline guarantee: a CAS-Read
        // increment driven by `run_op` with system crashes (every caught crash
        // rolls unflushed cache lines back) must be exactly-once at *every*
        // crash point — which requires the recoverable-CAS space to flush its
        // announcement lines before each publishing CAS
        // (`RcasSpace::with_durability`; DESIGN.md §7). The crash-point count
        // comes from Stats, never a constant.
        use pmem::{CrashPlan, MemConfig, Mode};
        install_quiet_crash_hook();
        let run = |plan: Option<CrashPlan>| -> u64 {
            let mem = PMem::new(MemConfig::new(1).mode(Mode::SharedCache));
            let t = mem.thread(0);
            let space = RcasSpace::with_default_layout(&t, 1).with_durability(true);
            let x = space.create(&t, 0).addr();
            t.persist(x);
            let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::General, 2);
            rt.set_system_crashes(true);
            mem.persist_everything();
            let _ = t.take_stats();
            if let Some(p) = plan {
                t.set_crash_schedule(p);
            }
            for _ in 0..3 {
                rt.run_op(0, |rt| match rt.pc() {
                    0 => {
                        let v = space.read(rt.thread(), x);
                        rt.set_local(0, v);
                        rt.boundary(1);
                        CapsuleStep::Continue
                    }
                    1 => {
                        let v = rt.local(0);
                        let ok = recoverable_cas(rt, &space, x, v, v + 1);
                        if ok {
                            rt.thread().persist(x);
                            rt.boundary(2);
                            CapsuleStep::Done(())
                        } else {
                            rt.boundary(0);
                            CapsuleStep::Continue
                        }
                    }
                    2 => CapsuleStep::Done(()),
                    pc => unreachable!("pc {pc}"),
                });
            }
            let points = t.stats().crash_points;
            t.disarm_crashes();
            assert_eq!(
                space.read(&t, x),
                3,
                "each increment must apply exactly once under full-system crashes"
            );
            points
        };
        let n = run(None);
        assert!(n > 0);
        for k in 0..n {
            let _ = run(Some(CrashPlan::once(k)));
            // And the nested flavour: crash again at the first instruction of
            // the recovery the first crash triggered.
            let _ = run(Some(CrashPlan::new(vec![k, 0])));
        }
    }

    #[test]
    fn anonymous_cas_preserves_recoverability_of_named_cas() {
        let mem = PMem::with_threads(2);
        let t0 = mem.thread(0);
        let space = RcasSpace::with_default_layout(&t0, 2);
        let x = space.create(&t0, 0).addr();
        let mut rt0 = CapsuleRuntime::new(&t0, BoundaryStyle::General, 1);
        rt0.boundary(0);
        assert!(recoverable_cas(&mut rt0, &space, x, 0, 5));
        // A wrap-up style anonymous CAS by the same process on the same object.
        assert!(anonymous_cas(&mut rt0, &space, x, 5, 6));
        // The named CAS's success is still discoverable after a (simulated) crash.
        rt0.recover();
        let r = space.recover(&t0, x);
        assert!(r.flag && r.seq == 1, "notification for the executor CAS must survive: {r:?}");
    }
}
