//! Persistent stack frames and capsule-boundary emission.
//!
//! A frame stores, durably, everything a process needs to resume from its last
//! capsule boundary: the program counter, the per-process sequence number and the
//! persisted locals. Two layouts are provided.
//!
//! ## General layout (§2.3)
//!
//! ```text
//! word 0                 : control = (pc << 32) | validity mask
//! words 1 .. 1+S         : copy A of slots 0..S
//! words 1+S .. 1+2S      : copy B of slots 0..S
//! ```
//!
//! Each persisted slot has two copies; bit *i* of the validity mask says which copy
//! of slot *i* is current. A boundary writes the *invalid* copy of every changed
//! slot, flushes those lines, fences, then atomically publishes the new state by
//! writing the control word (new pc + flipped mask bits) and flushing + fencing it.
//! Slot 0 is always the sequence number; user locals occupy slots 1..S.
//!
//! ## Compact layout (§9, used by the `-Opt` variants)
//!
//! ```text
//! word 0        : (pc << 48) | sequence number     (written last)
//! words 1 .. 8  : up to 7 user locals (single copy)
//! ```
//!
//! Everything lives on one cache line, so a boundary is: write the changed locals,
//! write the control word (pc + sequence number together) last, one flush, one
//! fence — exploiting the fact that writes to the same cache line persist in the
//! order they were written. Packing the sequence number into the control word keeps
//! it atomic with the pc, which the recoverable-CAS protocol requires. The price is
//! a proof obligation on the encapsulated code: a capsule must not *depend on* a
//! persisted user local that its own boundary overwrites with a different value
//! (otherwise a crash that persists the new local but not the new pc would re-run
//! the capsule with corrupted inputs). The hand-optimised queue variants are written
//! to satisfy this; [`Frame::check_compact_war`] lets the runtime assert it in tests.

use pmem::{PAddr, PThread, LINE_WORDS};

/// Which boundary implementation a frame uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundaryStyle {
    /// Double-buffered slots + validity mask; two flushes and two fences per
    /// boundary. Works for any capsule.
    General,
    /// Single-cache-line frame; one flush and one fence per boundary. Limited to 6
    /// user locals and to capsules that do not overwrite their own persisted inputs.
    Compact,
}

/// Maximum number of user locals in a general frame (mask bits minus the seq slot).
pub const MAX_GENERAL_VARS: usize = 31;
/// Maximum number of user locals in a compact frame (one cache line minus the
/// control word, which holds both the pc and the sequence number).
pub const MAX_COMPACT_VARS: usize = (LINE_WORDS - 1) as usize;
/// Maximum sequence number representable in a compact frame's control word.
pub const MAX_COMPACT_SEQ: u64 = (1 << 48) - 1;

/// A persistent stack frame.
#[derive(Clone, Copy, Debug)]
pub struct Frame {
    base: PAddr,
    style: BoundaryStyle,
    /// Number of user locals (excluding the sequence-number slot).
    nvars: usize,
}

/// Slot index of the sequence number inside the frame.
pub(crate) const SEQ_SLOT: usize = 0;

impl Frame {
    /// Allocate a frame for `nvars` user locals.
    pub fn alloc(thread: &PThread<'_>, style: BoundaryStyle, nvars: usize) -> Frame {
        let frame = match style {
            BoundaryStyle::General => {
                assert!(
                    nvars <= MAX_GENERAL_VARS,
                    "a general frame supports at most {MAX_GENERAL_VARS} user locals (got {nvars})"
                );
                let slots = (nvars + 1) as u64;
                // Line-aligned so the number of lines a boundary touches (and hence
                // its flush count) is a property of the frame shape, not of what
                // happened to be allocated before it.
                let base = thread.alloc_aligned(1 + 2 * slots);
                Frame { base, style, nvars }
            }
            BoundaryStyle::Compact => {
                assert!(
                    nvars <= MAX_COMPACT_VARS,
                    "a compact frame supports at most {MAX_COMPACT_VARS} user locals (got {nvars})"
                );
                // One full cache line, never straddling (the arena aligns sub-line
                // allocations) — allocate the whole line so nothing else shares it.
                let base = thread.alloc(LINE_WORDS);
                Frame { base, style, nvars }
            }
        };
        // Make the initial (all-zero) frame durable so that the very first recovery
        // of a process that crashed before its first boundary is well defined.
        frame.persist_initial(thread);
        frame
    }

    /// Re-attach to an existing frame (after a restart, the address comes from the
    /// process's restart pointer).
    pub fn attach(base: PAddr, style: BoundaryStyle, nvars: usize) -> Frame {
        Frame { base, style, nvars }
    }

    /// The frame's base address (what gets stored in the restart pointer).
    pub fn base(&self) -> PAddr {
        self.base
    }

    /// The frame's boundary style.
    pub fn style(&self) -> BoundaryStyle {
        self.style
    }

    /// Number of user locals.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Total number of persisted slots (user locals + the sequence number).
    pub fn slots(&self) -> usize {
        self.nvars + 1
    }

    fn persist_initial(&self, thread: &PThread<'_>) {
        match self.style {
            BoundaryStyle::General => {
                // Control word and both copy regions are zero already (fresh
                // allocation); flush the lines they occupy.
                let words = 1 + 2 * self.slots() as u64;
                let mut w = 0;
                while w < words {
                    thread.flush(self.base.offset(w));
                    w += LINE_WORDS;
                }
                thread.fence();
            }
            BoundaryStyle::Compact => {
                thread.persist(self.base);
            }
        }
    }

    fn control_addr(&self) -> PAddr {
        self.base
    }

    fn copy_addr(&self, copy: u64, slot: usize) -> PAddr {
        debug_assert!(self.style == BoundaryStyle::General);
        debug_assert!(slot < self.slots());
        self.base.offset(1 + copy * self.slots() as u64 + slot as u64)
    }

    fn compact_slot_addr(&self, slot: usize) -> PAddr {
        debug_assert!(self.style == BoundaryStyle::Compact);
        debug_assert!(slot >= 1 && slot < self.slots(), "slot {slot} is not a user slot");
        // Slot 0 (the sequence number) lives inside the control word; user slot i
        // occupies word i of the line.
        self.base.offset(slot as u64)
    }

    /// Emit a capsule boundary: persist the changed slots and atomically publish the
    /// new program counter.
    ///
    /// `changed` lists `(slot, value)` pairs; slot [`SEQ_SLOT`] is the sequence
    /// number, slots `1..=nvars` are the user locals (user index + 1).
    pub fn write_boundary(&self, thread: &PThread<'_>, pc: u32, changed: &[(usize, u64)]) {
        match self.style {
            BoundaryStyle::General => self.write_boundary_general(thread, pc, changed),
            BoundaryStyle::Compact => self.write_boundary_compact(thread, pc, changed),
        }
    }

    fn write_boundary_general(&self, thread: &PThread<'_>, pc: u32, changed: &[(usize, u64)]) {
        let control = thread.read(self.control_addr());
        let mut mask = control & 0xFFFF_FFFF;
        if !changed.is_empty() {
            // Write the currently invalid copy of each changed slot.
            let mut touched_lines: Vec<u64> = Vec::with_capacity(changed.len());
            for &(slot, value) in changed {
                assert!(slot < self.slots(), "slot {slot} out of range");
                let valid_copy = (mask >> slot) & 1;
                let target = self.copy_addr(1 - valid_copy, slot);
                thread.write(target, value);
                mask ^= 1 << slot;
                let line = target.line_base().index();
                if !touched_lines.contains(&line) {
                    touched_lines.push(line);
                }
            }
            for line in touched_lines {
                thread.flush(PAddr::from_raw(line));
            }
            thread.fence();
        }
        // Atomically publish: new pc + flipped validity bits in one word. A
        // release store: the slot copies flushed above are ordered under the
        // control word, which is what recovery's reads rely on.
        let new_control = ((pc as u64) << 32) | mask;
        thread.write_release(self.control_addr(), new_control);
        thread.persist(self.control_addr());
    }

    fn write_boundary_compact(&self, thread: &PThread<'_>, pc: u32, changed: &[(usize, u64)]) {
        // The sequence number travels inside the control word, so fish it out of the
        // change list (or keep the current one if this boundary did not advance it).
        let mut seq = None;
        for &(slot, value) in changed {
            assert!(slot < self.slots(), "slot {slot} out of range");
            if slot == SEQ_SLOT {
                assert!(value <= MAX_COMPACT_SEQ, "sequence number overflows the compact frame");
                seq = Some(value);
            } else {
                thread.write(self.compact_slot_addr(slot), value);
            }
        }
        let seq = seq.unwrap_or_else(|| thread.read(self.control_addr()) & MAX_COMPACT_SEQ);
        // The control word (pc + seq) is written last; within one cache line, stores
        // persist in order, so a crash can never persist the new pc without the new
        // locals, and the pc/seq pair is updated atomically. Written as a
        // release store: the slot stores above are publication payload.
        thread.write_release(self.control_addr(), ((pc as u64) << 48) | seq);
        thread.persist(self.control_addr());
    }

    /// Read the persisted state back: `(pc, slot values)`. Constant work — this is
    /// what bounds the recovery delay of every simulator built on capsules.
    pub fn recover(&self, thread: &PThread<'_>) -> (u32, Vec<u64>) {
        match self.style {
            BoundaryStyle::General => {
                let control = thread.read(self.control_addr());
                let pc = (control >> 32) as u32;
                let mask = control & 0xFFFF_FFFF;
                let values = (0..self.slots())
                    .map(|slot| {
                        let valid_copy = (mask >> slot) & 1;
                        thread.read(self.copy_addr(valid_copy, slot))
                    })
                    .collect();
                (pc, values)
            }
            BoundaryStyle::Compact => {
                let control = thread.read(self.control_addr());
                let pc = (control >> 48) as u32;
                let mut values = vec![control & MAX_COMPACT_SEQ];
                values.extend((1..self.slots()).map(|slot| thread.read(self.compact_slot_addr(slot))));
                (pc, values)
            }
        }
    }

    /// For compact frames: report whether persisting `changed` would overwrite a
    /// slot in `read_mask` (slots the current capsule depended on) with a different
    /// value than the one it read — the write-after-read hazard described in the
    /// module docs. General frames are immune (double buffering) and return `false`.
    pub fn check_compact_war(
        &self,
        thread: &PThread<'_>,
        read_mask: u64,
        changed: &[(usize, u64)],
    ) -> bool {
        if self.style != BoundaryStyle::Compact {
            return false;
        }
        changed.iter().any(|&(slot, value)| {
            slot != SEQ_SLOT
                && (read_mask >> slot) & 1 == 1
                && thread.read(self.compact_slot_addr(slot)) != value
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{MemConfig, Mode, PMem};

    fn mem() -> PMem {
        PMem::new(MemConfig::new(1).mode(Mode::SharedCache))
    }

    #[test]
    fn general_boundary_round_trip() {
        let m = mem();
        let t = m.thread(0);
        let f = Frame::alloc(&t, BoundaryStyle::General, 4);
        f.write_boundary(&t, 7, &[(SEQ_SLOT, 3), (1, 10), (2, 20)]);
        let (pc, vals) = f.recover(&t);
        assert_eq!(pc, 7);
        assert_eq!(vals[SEQ_SLOT], 3);
        assert_eq!(vals[1], 10);
        assert_eq!(vals[2], 20);
        assert_eq!(vals[3], 0, "untouched slot keeps its initial value");
    }

    #[test]
    fn compact_boundary_round_trip() {
        let m = mem();
        let t = m.thread(0);
        let f = Frame::alloc(&t, BoundaryStyle::Compact, 3);
        f.write_boundary(&t, 2, &[(SEQ_SLOT, 1), (1, 100)]);
        f.write_boundary(&t, 3, &[(2, 200)]);
        let (pc, vals) = f.recover(&t);
        assert_eq!(pc, 3);
        assert_eq!(vals, vec![1, 100, 200, 0]);
    }

    #[test]
    fn boundaries_survive_a_crash() {
        let m = mem();
        let t = m.thread(0);
        let f = Frame::alloc(&t, BoundaryStyle::General, 2);
        f.write_boundary(&t, 5, &[(SEQ_SLOT, 9), (1, 11), (2, 22)]);
        // Volatile-only update after the boundary must be lost; the boundary state
        // must survive.
        t.write(f.base().offset(1), 9999); // scribble on copy A without flushing
        m.crash_all();
        let t = m.thread(0);
        let (pc, vals) = f.recover(&t);
        assert_eq!(pc, 5);
        assert_eq!(vals[SEQ_SLOT], 9);
        assert_eq!(vals[1], 11);
        assert_eq!(vals[2], 22);
    }

    #[test]
    fn compact_boundary_survives_a_crash() {
        let m = mem();
        let t = m.thread(0);
        let f = Frame::alloc(&t, BoundaryStyle::Compact, 2);
        f.write_boundary(&t, 4, &[(SEQ_SLOT, 2), (1, 5), (2, 6)]);
        m.crash_all();
        let t = m.thread(0);
        let (pc, vals) = f.recover(&t);
        assert_eq!((pc, vals[SEQ_SLOT], vals[1], vals[2]), (4, 2, 5, 6));
    }

    #[test]
    fn repeated_boundaries_alternate_copies_correctly() {
        let m = mem();
        let t = m.thread(0);
        let f = Frame::alloc(&t, BoundaryStyle::General, 1);
        for i in 1..=20u64 {
            f.write_boundary(&t, i as u32, &[(1, i * 10)]);
            let (pc, vals) = f.recover(&t);
            assert_eq!(pc as u64, i);
            assert_eq!(vals[1], i * 10);
        }
    }

    #[test]
    fn compact_uses_fewer_fences_than_general() {
        let m = mem();
        let t = m.thread(0);
        let general = Frame::alloc(&t, BoundaryStyle::General, 3);
        let compact = Frame::alloc(&t, BoundaryStyle::Compact, 3);
        let before = t.stats();
        general.write_boundary(&t, 1, &[(1, 1), (2, 2)]);
        let mid = t.stats();
        compact.write_boundary(&t, 1, &[(1, 1), (2, 2)]);
        let after = t.stats();
        let general_cost = mid.since(&before);
        let compact_cost = after.since(&mid);
        assert_eq!(general_cost.fences, 2, "general boundary uses two fences");
        assert_eq!(compact_cost.fences, 1, "compact boundary uses one fence");
        assert!(compact_cost.flushes < general_cost.flushes || compact_cost.flushes == 1);
    }

    #[test]
    fn attach_reconstructs_the_same_frame() {
        let m = mem();
        let t = m.thread(0);
        let f = Frame::alloc(&t, BoundaryStyle::General, 2);
        f.write_boundary(&t, 9, &[(1, 77)]);
        let g = Frame::attach(f.base(), BoundaryStyle::General, 2);
        let (pc, vals) = g.recover(&t);
        assert_eq!(pc, 9);
        assert_eq!(vals[1], 77);
    }

    #[test]
    fn compact_war_check_detects_hazard() {
        let m = mem();
        let t = m.thread(0);
        let f = Frame::alloc(&t, BoundaryStyle::Compact, 2);
        f.write_boundary(&t, 1, &[(1, 10)]);
        // The capsule read slot 1 (mask bit 1) and now wants to persist a different
        // value into it: hazard.
        assert!(f.check_compact_war(&t, 0b010, &[(1, 11)]));
        // Persisting the same value, or a slot the capsule did not read, is fine.
        assert!(!f.check_compact_war(&t, 0b010, &[(1, 10)]));
        assert!(!f.check_compact_war(&t, 0b010, &[(2, 11)]));
        // General frames never report a hazard.
        let g = Frame::alloc(&t, BoundaryStyle::General, 2);
        g.write_boundary(&t, 1, &[(1, 10)]);
        assert!(!g.check_compact_war(&t, 0b010, &[(1, 11)]));
    }

    #[test]
    #[should_panic]
    fn too_many_compact_vars_panics() {
        let m = mem();
        let t = m.thread(0);
        let _ = Frame::alloc(&t, BoundaryStyle::Compact, MAX_COMPACT_VARS + 1);
    }

    #[test]
    #[should_panic]
    fn out_of_range_slot_panics() {
        let m = mem();
        let t = m.thread(0);
        let f = Frame::alloc(&t, BoundaryStyle::General, 1);
        f.write_boundary(&t, 1, &[(5, 1)]);
    }
}
