//! Contention measurement for the adaptive fast path.
//!
//! The capsule transformation pays for crash-invisibility with boundaries and
//! per-CAS announcement work on *every* operation, contended or not. The
//! adaptive variants instead try each operation as a single un-checkpointed
//! fast capsule first (one evidence-carrying recoverable CAS, no intermediate
//! boundaries) and only fall back to the full simulator when the fast CAS
//! keeps losing — i.e. when the structure is actually contended and the
//! simulator's helping machinery earns its cost.
//!
//! [`ContentionMeasure`] is the volatile, per-handle policy knob for that
//! decision: a consecutive-CAS-failure streak plus a demotion cooldown. It
//! never touches persistent memory, so it cannot affect crash correctness —
//! it only chooses which (individually crash-correct) path the next operation
//! enters, and that choice is sealed into the operation's entry boundary.

/// Whether the contention-adaptive fast path is enabled for this process
/// (the `DF_ADAPTIVE` environment knob; default on, `DF_ADAPTIVE=0` or an
/// empty value disables it). Read once and cached: the adaptive variants
/// consult this at structure construction time.
pub fn adaptive_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| {
        std::env::var_os("DF_ADAPTIVE").map_or(true, |v| v != "0" && !v.is_empty())
    })
}

/// Consecutive fast-CAS failures tolerated before an operation demotes
/// itself to the slow path.
const DEFAULT_THRESHOLD: u32 = 2;

/// Operations routed straight to the slow path after a demotion, before the
/// fast path is tried again.
const DEFAULT_PROBATION: u32 = 8;

/// A CAS-failure streak counter with a demotion cooldown.
///
/// * [`record_failure`](ContentionMeasure::record_failure) after every lost
///   fast-path CAS; when the streak reaches the threshold it trips (returns
///   `true`), arming a cooldown of [`DEFAULT_PROBATION`] operations.
/// * [`record_success`](ContentionMeasure::record_success) resets the streak.
/// * [`begin_op`](ContentionMeasure::begin_op) at each operation start; it
///   pays down the cooldown and reports whether the operation should take the
///   slow path.
#[derive(Clone, Copy, Debug)]
pub struct ContentionMeasure {
    streak: u32,
    cooldown: u32,
    threshold: u32,
    probation: u32,
    fast_ops: u64,
    demotions: u64,
}

impl Default for ContentionMeasure {
    fn default() -> Self {
        ContentionMeasure::new()
    }
}

impl ContentionMeasure {
    /// A measure with the default threshold and probation window.
    pub fn new() -> ContentionMeasure {
        ContentionMeasure {
            streak: 0,
            cooldown: 0,
            threshold: DEFAULT_THRESHOLD,
            probation: DEFAULT_PROBATION,
            fast_ops: 0,
            demotions: 0,
        }
    }

    /// Override the failure-streak threshold (min 1).
    pub fn with_threshold(mut self, threshold: u32) -> ContentionMeasure {
        self.threshold = threshold.max(1);
        self
    }

    /// Override the post-demotion probation window.
    pub fn with_probation(mut self, probation: u32) -> ContentionMeasure {
        self.probation = probation;
        self
    }

    /// Called at operation start: pays down any cooldown and returns `true`
    /// while the handle is on probation (the operation should use the slow
    /// path).
    pub fn begin_op(&mut self) -> bool {
        if self.cooldown > 0 {
            self.cooldown -= 1;
            true
        } else {
            self.fast_ops += 1;
            false
        }
    }

    /// Whether the handle currently considers the structure contended.
    pub fn contended(&self) -> bool {
        self.cooldown > 0
    }

    /// Record a lost fast-path CAS. Returns `true` when the failure streak
    /// trips the threshold: the caller should demote the current operation to
    /// the slow path (the cooldown is armed and the streak reset).
    pub fn record_failure(&mut self) -> bool {
        self.streak += 1;
        if self.streak >= self.threshold {
            self.streak = 0;
            self.cooldown = self.probation;
            self.demotions += 1;
            true
        } else {
            false
        }
    }

    /// Record a won fast-path CAS (resets the failure streak).
    pub fn record_success(&mut self) {
        self.streak = 0;
    }

    /// Operations this handle routed to the fast entry point (telemetry: the
    /// crash-point sweeps assert on this to prove the fast path — not just
    /// the simulator — was the code actually being crashed).
    pub fn fast_ops(&self) -> u64 {
        self.fast_ops
    }

    /// Times the failure streak tripped and an operation demoted itself from
    /// the fast path to the full simulator mid-flight. The interleaved sweeps
    /// assert on this to prove the fast→slow demotion boundary was exercised
    /// under crashes rather than assumed reachable.
    pub fn demotions(&self) -> u64 {
        self.demotions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut m = ContentionMeasure::new().with_threshold(2);
        assert!(!m.record_failure());
        assert!(m.record_failure(), "second consecutive failure must trip");
        assert!(m.contended());
    }

    #[test]
    fn success_resets_the_streak() {
        let mut m = ContentionMeasure::new().with_threshold(2);
        assert!(!m.record_failure());
        m.record_success();
        assert!(!m.record_failure(), "streak must restart after a success");
    }

    #[test]
    fn probation_routes_ops_slow_then_expires() {
        let mut m = ContentionMeasure::new().with_threshold(1).with_probation(3);
        assert!(!m.begin_op(), "uncontended handle starts fast");
        assert!(m.record_failure());
        for i in 0..3 {
            assert!(m.begin_op(), "op {i} during probation must go slow");
        }
        assert!(!m.begin_op(), "probation paid down: fast path again");
    }
}
