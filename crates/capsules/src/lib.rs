//! # `capsules` — capsule boundaries and the per-process capsule runtime
//!
//! The paper's transformations (§2.3, §5, §6) split a program into *capsules*:
//! contiguous chunks of code separated by *capsule boundaries* at which the process
//! persists everything the rest of the execution needs — the program counter, the
//! live stack-allocated locals and the per-process sequence number. After a crash
//! the process restarts from the previous boundary and re-executes the interrupted
//! capsule; correctness (Definition 2.2) requires that the repetitions be invisible,
//! which the CAS-Read capsule discipline plus the recoverable CAS guarantee.
//!
//! This crate provides the machinery the paper assumes a compiler would emit:
//!
//! * [`Frame`] — the persistent stack frame: two copies of every persisted local
//!   plus a validity mask and the program counter packed into one atomically
//!   writable control word ([`BoundaryStyle::General`]), or the hand-optimised
//!   single-cache-line layout that needs only one flush and one fence per boundary
//!   ([`BoundaryStyle::Compact`], the §9 "all locals on one cache line" trick used by
//!   the `-Opt` queue variants),
//! * [`CapsuleRuntime`] — volatile mirrors of the persisted locals, sequence-number
//!   management, the `crashed()` protocol, boundary emission, recovery (reload the
//!   frame), and [`CapsuleRuntime::run_op`] — the driver loop that catches simulated
//!   crashes and restarts the interrupted capsule, standing in for the restart
//!   pointer + context reload of §2.1,
//! * [`cas_read`] — Algorithm 3: the recoverable CAS at the head of a CAS-Read
//!   capsule, wrapped so it is executed exactly once even across crashes.
//!
//! Everything is expressed against the simulated machine of the [`pmem`] crate, so
//! boundaries cost real (simulated) flushes and fences that show up in [`pmem::Stats`].

#![warn(missing_docs)]

pub mod cas_read;
pub mod frame;
pub mod runtime;

pub use cas_read::recoverable_cas;
pub use frame::{BoundaryStyle, Frame};
pub use runtime::{CapsuleMetrics, CapsuleRuntime, CapsuleStep};
