//! # `capsules` — capsule boundaries and the per-process capsule runtime
//!
//! The paper's transformations (§2.3, §5, §6) split a program into *capsules*:
//! contiguous chunks of code separated by *capsule boundaries* at which the process
//! persists everything the rest of the execution needs — the program counter, the
//! live stack-allocated locals and the per-process sequence number. After a crash
//! the process restarts from the previous boundary and re-executes the interrupted
//! capsule; correctness (Definition 2.2) requires that the repetitions be invisible,
//! which the CAS-Read capsule discipline plus the recoverable CAS guarantee.
//!
//! This crate provides the machinery the paper assumes a compiler would emit:
//!
//! * [`Frame`] — the persistent stack frame: two copies of every persisted local
//!   plus a validity mask and the program counter packed into one atomically
//!   writable control word ([`BoundaryStyle::General`]), or the hand-optimised
//!   single-cache-line layout that needs only one flush and one fence per boundary
//!   ([`BoundaryStyle::Compact`], the §9 "all locals on one cache line" trick used by
//!   the `-Opt` queue variants),
//! * [`CapsuleRuntime`] — volatile mirrors of the persisted locals, sequence-number
//!   management, the `crashed()` protocol, boundary emission, recovery (reload the
//!   frame), and [`CapsuleRuntime::run_op`] — the driver loop that catches simulated
//!   crashes and restarts the interrupted capsule, standing in for the restart
//!   pointer + context reload of §2.1,
//! * [`cas_read`] — Algorithm 3: the recoverable CAS at the head of a CAS-Read
//!   capsule, wrapped so it is executed exactly once even across crashes.
//!
//! Everything is expressed against the simulated machine of the [`pmem`] crate, so
//! boundaries cost real (simulated) flushes and fences that show up in [`pmem::Stats`].
//!
//! ## Quick tour
//!
//! An encapsulated operation is a state machine over the persisted program counter;
//! [`CapsuleRuntime::run_op`] drives it to completion across any number of simulated
//! crashes. Here a sum is computed one addend per capsule while a deterministic
//! [`pmem::CrashPlan`] crashes the process mid-operation — and then once more inside
//! the recovery triggered by the first crash:
//!
//! ```
//! use capsules::{BoundaryStyle, CapsuleRuntime, CapsuleStep};
//! use pmem::{CrashPlan, PMem};
//!
//! fn sum_to_ten(rt: &mut CapsuleRuntime<'_, '_>) -> u64 {
//!     rt.run_op(0, |rt| {
//!         let i = rt.pc() as u64;
//!         if i == 10 {
//!             return CapsuleStep::Done(rt.local(0));
//!         }
//!         let acc = rt.local(0);
//!         rt.set_local(0, acc + i + 1);
//!         rt.boundary(rt.pc() + 1);
//!         CapsuleStep::Continue
//!     })
//! }
//!
//! pmem::install_quiet_crash_hook();
//!
//! // Crash points are counted, never guessed: run once crash-free and read the
//! // operation's crash-point count from the thread's statistics.
//! let mem = PMem::with_threads(1);
//! let t = mem.thread(0);
//! let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::General, 1);
//! let _ = t.take_stats();
//! assert_eq!(sum_to_ten(&mut rt), 55);
//! let points = t.stats().crash_points;
//!
//! // Replay on a fresh machine, crashing mid-operation and then again at the
//! // very first instruction of the resulting recovery (a nested schedule).
//! let mem = PMem::with_threads(1);
//! let t = mem.thread(0);
//! let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::General, 1);
//! t.set_crash_schedule(CrashPlan::new(vec![points / 2, 0]));
//! let total = sum_to_ten(&mut rt);
//! t.disarm_crashes();
//!
//! assert_eq!(total, 55);                       // 1 + 2 + … + 10, exactly once
//! assert!(rt.metrics().recoveries >= 1);       // the capsule was re-executed…
//! assert!(rt.metrics().recovery_crashes >= 1); // …and recovery itself was interrupted
//! ```

#![warn(missing_docs)]

pub mod cas_read;
pub mod contention;
pub mod frame;
pub mod runtime;

pub use cas_read::{anonymous_cas, recoverable_cas};
pub use contention::{adaptive_enabled, ContentionMeasure};
pub use frame::{BoundaryStyle, Frame};
pub use runtime::{CapsuleMetrics, CapsuleRuntime, CapsuleStep};
