//! The per-process capsule runtime.
//!
//! [`CapsuleRuntime`] owns the volatile mirrors of the persisted state (program
//! counter, sequence number, locals), emits capsule boundaries, and — through
//! [`CapsuleRuntime::run_op`] — drives an encapsulated operation to completion
//! across any number of simulated crashes: every crash unwinds the operation body
//! (losing its Rust locals, i.e. the volatile memory of the model), the runtime
//! reloads the persistent frame, raises the `crashed()` flag, and re-enters the body
//! at the persisted program counter.
//!
//! Encapsulated operations are written as explicit state machines over the program
//! counter, which is exactly the code shape the paper's source-to-source
//! transformation would produce; see the `queues` crate for full examples and the
//! `delayfree` crate for the simulator-level wrappers.

use pmem::{catch_crash, raise_crash, PAddr, PThread};

use crate::contention::ContentionMeasure;
use crate::frame::{BoundaryStyle, Frame, SEQ_SLOT};

/// What an encapsulated operation body tells the driver after executing a capsule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CapsuleStep<R> {
    /// The operation is not finished; run the next capsule (at the pc the body
    /// established with its last boundary).
    Continue,
    /// The operation finished with this result.
    Done(R),
}

/// Counters describing how much capsule machinery ran (complementing
/// [`pmem::Stats`], which counts the underlying memory instructions).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CapsuleMetrics {
    /// Encapsulated operations started.
    pub operations: u64,
    /// Capsule executions (including repetitions after crashes).
    pub capsules: u64,
    /// Capsule boundaries written.
    pub boundaries: u64,
    /// Recoveries performed (frame reloads after a crash).
    pub recoveries: u64,
    /// Crashes that interrupted a recovery in progress (the nested
    /// crash-during-recovery path of [`CapsuleRuntime::run_op`]): the recovery was
    /// restarted from scratch, which is safe because it only reads. Exhaustive
    /// crash-point sweeps assert on this counter to prove the nested path ran.
    pub recovery_crashes: u64,
    /// Crashes that interrupted the operation-entry boundary, which `run_op`
    /// retries directly (no frame recovery needed: the arguments still live in
    /// the runtime's volatile mirrors and a torn boundary is unpublished).
    /// Together with `recoveries` this accounts for every crash an operation
    /// absorbed, which is how the `dfck` sweeper proves a crash point was
    /// actually handled rather than silently skipped.
    pub entry_retries: u64,
    /// Operations the contention policy routed to the adaptive fast entry
    /// point (mirrors [`ContentionMeasure::fast_ops`]); the crash-point
    /// sweeps assert on this to prove fast-path code was actually crashed.
    pub fast_ops: u64,
    /// Fast→slow demotions: operations that started on the fast path and
    /// fell back to the full simulator after the CAS-failure streak tripped
    /// (mirrors [`ContentionMeasure::demotions`]).
    pub demotions: u64,
}

/// Per-process capsule state: a persistent [`Frame`] plus its volatile mirrors.
pub struct CapsuleRuntime<'t, 'm> {
    thread: &'t PThread<'m>,
    frame: Frame,
    /// Volatile mirror of the persisted slots (slot 0 = sequence number).
    locals: Vec<u64>,
    pc: u32,
    /// Bitmask of slots changed since the last boundary.
    dirty: u64,
    /// Bitmask of slots read since the last boundary (compact-frame hazard check).
    read_mask: u64,
    crashed: bool,
    /// Whether `run_op` persists a boundary at operation entry (see
    /// [`set_entry_boundary`](Self::set_entry_boundary)).
    entry_boundary: bool,
    /// Whether the operation-final boundary is emitted (see
    /// [`set_final_boundary`](Self::set_final_boundary)).
    final_boundary: bool,
    /// Whether compact-frame boundaries assert the absence of write-after-read
    /// hazards (enabled by default; benchmarks may disable it).
    war_check: bool,
    /// Crash flavour simulated when `run_op` catches a [`CrashSignal`]: per-process
    /// (`false`, the default — volatile thread state lost, shared cache intact) or
    /// full-system (`true` — every unflushed cache line rolls back too). See
    /// [`set_system_crashes`](Self::set_system_crashes).
    system_crashes: bool,
    /// When set, a caught crash is *not* absorbed: the signal is re-raised so it
    /// unwinds out of the operation driver entirely (see
    /// [`set_unwind_on_crash`](Self::set_unwind_on_crash)).
    unwind_on_crash: bool,
    /// Volatile contention policy for the adaptive fast path (see
    /// [`ContentionMeasure`]); never persisted, never affects crash
    /// correctness — it only routes operations between the fast and slow
    /// entry points.
    contention: ContentionMeasure,
    metrics: CapsuleMetrics,
}

impl<'t, 'm> CapsuleRuntime<'t, 'm> {
    /// Create a runtime with a freshly allocated frame for `nvars` user locals, and
    /// publish the frame in the process's restart pointer.
    pub fn new(thread: &'t PThread<'m>, style: BoundaryStyle, nvars: usize) -> Self {
        let frame = Frame::alloc(thread, style, nvars);
        // Publish the frame as this process's restart context (§2.1).
        thread.write(thread.restart_word(), frame.base().to_raw());
        thread.persist(thread.restart_word());
        CapsuleRuntime {
            thread,
            frame,
            locals: vec![0; nvars + 1],
            pc: 0,
            dirty: 0,
            read_mask: 0,
            crashed: false,
            entry_boundary: true,
            final_boundary: true,
            war_check: true,
            system_crashes: false,
            unwind_on_crash: false,
            contention: ContentionMeasure::new(),
            metrics: CapsuleMetrics::default(),
        }
    }

    /// Re-attach to the frame published in the process's restart pointer — what a
    /// process does when it restarts after a crash. The runtime comes up in the
    /// recovered state (persisted locals loaded, `crashed()` raised).
    pub fn attach_from_restart_pointer(
        thread: &'t PThread<'m>,
        style: BoundaryStyle,
        nvars: usize,
    ) -> Self {
        let base = PAddr::from_raw(thread.read(thread.restart_word()));
        let frame = Frame::attach(base, style, nvars);
        let mut rt = CapsuleRuntime {
            thread,
            frame,
            locals: vec![0; nvars + 1],
            pc: 0,
            dirty: 0,
            read_mask: 0,
            crashed: false,
            entry_boundary: true,
            final_boundary: true,
            war_check: true,
            system_crashes: false,
            unwind_on_crash: false,
            contention: ContentionMeasure::new(),
            metrics: CapsuleMetrics::default(),
        };
        rt.recover();
        rt
    }

    /// The thread this runtime issues instructions through.
    pub fn thread(&self) -> &'t PThread<'m> {
        self.thread
    }

    /// The persistent frame backing this runtime.
    pub fn frame(&self) -> &Frame {
        &self.frame
    }

    /// Capsule-level counters (the contention policy's fast-path telemetry is
    /// folded in so sweep harnesses read one struct).
    pub fn metrics(&self) -> CapsuleMetrics {
        let mut m = self.metrics;
        m.fast_ops = self.contention.fast_ops();
        m.demotions = self.contention.demotions();
        m
    }

    /// Control whether [`run_op`](Self::run_op) persists a boundary when the
    /// operation starts. The paper's experiments omit this per-operation boundary
    /// because it is common to every variant under test (§10); crash-recovery tests
    /// keep it on (the default) so that restarting an operation from its entry is
    /// always well defined.
    pub fn set_entry_boundary(&mut self, enabled: bool) {
        self.entry_boundary = enabled;
    }

    /// Control whether [`finish_boundary`](Self::finish_boundary) actually persists
    /// the operation-final boundary. Like the entry boundary, the final boundary is
    /// the same for every variant (it doubles as the next operation's entry), so the
    /// paper's measurements elide it; disabling it trades away detectability of the
    /// very last operation's return value, which is exactly the trade-off §10
    /// discusses for the comparative experiments.
    pub fn set_final_boundary(&mut self, enabled: bool) {
        self.final_boundary = enabled;
    }

    /// Emit the boundary that ends an operation (persisting its return value),
    /// unless final boundaries are disabled for measurement parity.
    pub fn finish_boundary(&mut self, next_pc: u32) {
        if self.final_boundary {
            self.boundary(next_pc);
        } else {
            self.pc = next_pc;
            self.dirty = 0;
            self.read_mask = 0;
            self.crashed = false;
        }
    }

    /// Enable or disable the compact-frame write-after-read hazard assertion.
    pub fn set_war_check(&mut self, enabled: bool) {
        self.war_check = enabled;
    }

    /// Select which crash flavour [`run_op`](Self::run_op) simulates when it
    /// catches a crash. By default an injected crash is a *per-process* fault
    /// (the PPM model of §2.1): the thread's volatile state is lost but the
    /// shared cache survives. With system crashes enabled, every caught crash
    /// also rolls the whole machine's unflushed cache lines back to their
    /// durable contents ([`PMem::crash_all`](pmem::PMem::crash_all)) before
    /// recovery runs — the shared-cache model's full-system power failure, which
    /// additionally verifies the algorithm's flush placement.
    ///
    /// Only sound when no *other* thread is executing simulated instructions at
    /// any crash point (`crash_all` requires quiescence). Single-threaded
    /// harnesses like the `dfck` sweeper's replays satisfy this trivially;
    /// genuinely concurrent replays satisfy it by running every worker under a
    /// [`ThreadScheduler`](pmem::ThreadScheduler), whose baton guarantees the
    /// crashing thread is the only one executing simulated instructions — the
    /// handler below then broadcasts the crash to the parked peers with
    /// [`PThread::kill_peers`](pmem::PThread::kill_peers).
    pub fn set_system_crashes(&mut self, enabled: bool) {
        self.system_crashes = enabled;
    }

    /// Choose what happens when the operation driver catches a crash. The default
    /// (`false`) absorbs the crash: the runtime applies the machine-level fault,
    /// reloads the frame and re-enters the body — a process that restarts
    /// instantly and finishes its operation in place. With unwinding enabled the
    /// signal is re-raised instead, so the crash propagates out of
    /// [`run_op`](Self::run_op) / [`resume_op`](Self::resume_op) to whatever
    /// owns the OS thread — modelling a process incarnation that genuinely
    /// *dies* mid-operation. The persistent frame is untouched (the restart
    /// pointer still names it), so a later incarnation can
    /// [`attach_from_restart_pointer`](Self::attach_from_restart_pointer) and
    /// finish the operation with `resume_op`. The service harness uses this for
    /// its kill-restart drills; note the *caller* becomes responsible for
    /// applying the machine-level crash (e.g. `crash_all` once the shard's
    /// workers have quiesced).
    pub fn set_unwind_on_crash(&mut self, enabled: bool) {
        self.unwind_on_crash = enabled;
    }

    /// Record the caught crash with the machine: full-system rollback in system
    /// mode, per-process fault otherwise.
    ///
    /// A crash that was itself the *collateral* of a peer's full-system crash —
    /// a kill delivered at a scheduler yield point — applies nothing further:
    /// the crashing peer already rolled the machine back and set every crashed
    /// flag, and re-applying `crash_all` here would roll back state the peers
    /// legitimately wrote *after* that crash. (The machine-level crashed flag is
    /// consumed by [`recover`](Self::recover), exactly as for a direct crash.)
    fn apply_crash(&self) {
        self.thread.note_crash();
        if self.thread.take_killed() {
            return;
        }
        if self.system_crashes {
            self.thread.mem().crash_all();
            // Under a thread scheduler the other workers are parked mid-access:
            // deliver the same crash to them. A no-op without a scheduler.
            self.thread.kill_peers();
        } else {
            self.thread.mem().crash_thread(self.thread.pid());
        }
    }

    // ----- persisted locals ----------------------------------------------------

    /// Read user local `i` (its value as of the last boundary or the last
    /// `set_local` in this capsule).
    pub fn local(&mut self, i: usize) -> u64 {
        let slot = i + 1;
        assert!(slot <= self.frame.nvars(), "local {i} out of range");
        self.read_mask |= 1 << slot;
        self.locals[slot]
    }

    /// Set user local `i`; it will be persisted at the next boundary.
    pub fn set_local(&mut self, i: usize, value: u64) {
        let slot = i + 1;
        assert!(slot <= self.frame.nvars(), "local {i} out of range");
        self.locals[slot] = value;
        self.dirty |= 1 << slot;
    }

    /// Convenience: store a [`PAddr`] in a local.
    pub fn set_local_addr(&mut self, i: usize, addr: PAddr) {
        self.set_local(i, addr.to_raw());
    }

    /// Convenience: read a local as a [`PAddr`].
    pub fn local_addr(&mut self, i: usize) -> PAddr {
        PAddr::from_raw(self.local(i))
    }

    /// The current capsule's view of the per-process sequence number.
    pub fn seq(&self) -> u64 {
        self.locals[SEQ_SLOT]
    }

    /// Advance the sequence number (once per recoverable CAS). Repetitions of the
    /// same capsule see the same values because the counter is reset to its
    /// persisted value on recovery and re-advanced deterministically.
    pub fn advance_seq(&mut self) -> u64 {
        self.locals[SEQ_SLOT] += 1;
        self.dirty |= 1 << SEQ_SLOT;
        self.locals[SEQ_SLOT]
    }

    /// Raise the sequence number to `seq` if it is ahead of the volatile mirror —
    /// the fast-path recovery case where the announcement proves this process
    /// already advanced (and announced) a sequence number whose boundary never
    /// persisted. Repeating the operation with the recovered number keeps the
    /// never-reuse invariant of Algorithm 1.
    pub fn sync_seq(&mut self, seq: u64) {
        if seq > self.locals[SEQ_SLOT] {
            self.locals[SEQ_SLOT] = seq;
            self.dirty |= 1 << SEQ_SLOT;
        }
    }

    /// The volatile contention policy routing operations between the adaptive
    /// fast path and the full simulator.
    pub fn contention_mut(&mut self) -> &mut ContentionMeasure {
        &mut self.contention
    }

    /// Replace the contention policy (threshold/probation template). Purely
    /// volatile routing state: the sensitized `dfck` sweeps use a threshold-1
    /// policy so every lost fast-path CAS exercises the demotion boundary.
    pub fn set_contention(&mut self, policy: ContentionMeasure) {
        self.contention = policy;
    }

    /// The `crashed()` flag of Algorithm 3: true iff the current capsule is being
    /// re-executed because of a crash. Cleared by the next boundary.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// The current program counter (the pc of the capsule being executed).
    pub fn pc(&self) -> u32 {
        self.pc
    }

    // ----- boundaries and recovery ----------------------------------------------

    /// Emit a capsule boundary: persist every slot changed since the previous
    /// boundary together with the next program counter, atomically.
    pub fn boundary(&mut self, next_pc: u32) {
        let changed: Vec<(usize, u64)> = (0..self.frame.slots())
            .filter(|slot| (self.dirty >> slot) & 1 == 1)
            .map(|slot| (slot, self.locals[slot]))
            .collect();
        if self.war_check
            && self.frame.style() == BoundaryStyle::Compact
            && self
                .frame
                .check_compact_war(self.thread, self.read_mask, &changed)
        {
            panic!(
                "compact-frame write-after-read hazard: capsule at pc {} overwrites a local it depended on",
                self.pc
            );
        }
        self.frame.write_boundary(self.thread, next_pc, &changed);
        self.pc = next_pc;
        self.dirty = 0;
        self.read_mask = 0;
        self.crashed = false;
        self.metrics.boundaries += 1;
    }

    /// Reload the persisted frame into the volatile mirrors (what the process does
    /// on restart). Raises the `crashed()` flag and counts the (constant) number of
    /// recovery instructions in [`pmem::Stats::recovery_steps`].
    pub fn recover(&mut self) {
        self.thread.begin_recovery();
        let (pc, values) = self.frame.recover(self.thread);
        self.thread.end_recovery();
        self.pc = pc;
        self.locals = values;
        self.dirty = 0;
        self.read_mask = 0;
        self.crashed = true;
        // Consume the system-level crashed flag, mirroring the model's crashed().
        let _ = self.thread.mem().take_crashed(self.thread.pid());
        self.metrics.recoveries += 1;
    }

    // ----- operation driver ------------------------------------------------------

    /// Run an encapsulated operation to completion, surviving any number of
    /// simulated crashes.
    ///
    /// `entry_pc` is the program counter of the operation's first capsule. `body`
    /// executes exactly one capsule per invocation: it dispatches on
    /// [`pc()`](Self::pc), performs the capsule's instructions, emits a
    /// [`boundary`](Self::boundary) (except possibly before returning `Done`), and
    /// returns whether the operation continues or finished.
    ///
    /// Operation arguments that the first capsule needs across a crash must be
    /// stored with [`set_local`](Self::set_local) *before* calling `run_op`, so the
    /// entry boundary persists them.
    pub fn run_op<R>(
        &mut self,
        entry_pc: u32,
        body: impl FnMut(&mut Self) -> CapsuleStep<R>,
    ) -> R {
        self.metrics.operations += 1;
        self.pc = entry_pc;
        // Reads recorded since the previous operation's final boundary belong to
        // that *completed* operation — typically its result-reporting capsule
        // (re-)reading a persisted local after a crash. They are out of scope for
        // the compact-frame write-after-read check on this operation's entry
        // boundary: a crash inside the entry boundary is retried in place below
        // (the arguments still live in this runtime), never resumed from the
        // stale program counter, so overwriting those locals is safe.
        self.read_mask = 0;
        if self.entry_boundary {
            // A crash during the entry boundary itself is retried directly: the
            // operation arguments still live in the caller (this runtime's volatile
            // mirrors), and a partially written boundary is harmless because the
            // control word is only published as its final step.
            loop {
                match catch_crash(|| self.boundary(entry_pc)) {
                    Ok(()) => break,
                    Err(crashed) => {
                        if self.unwind_on_crash {
                            raise_crash(crashed.signal.pid, crashed.signal.at_step);
                        }
                        self.metrics.entry_retries += 1;
                        self.apply_crash();
                        self.pc = entry_pc;
                    }
                }
            }
        } else {
            self.dirty = 0;
            self.read_mask = 0;
            self.crashed = false;
        }
        self.drive(body)
    }

    /// Drive an *already-entered* operation to completion from the runtime's
    /// current program counter — no entry boundary, no pc reset.
    ///
    /// This is the restart half of [`run_op`](Self::run_op): after
    /// [`attach_from_restart_pointer`](Self::attach_from_restart_pointer) loaded
    /// the frame of an operation a previous incarnation left in flight, calling
    /// `resume_op` with the same body re-enters the persisted capsule (with
    /// [`crashed()`](Self::crashed) raised, exactly as an in-place recovery
    /// would) and runs the state machine to its `Done`. Calling it when the
    /// persisted pc already names a completed capsule simply re-executes that
    /// result-reporting capsule, which is how a restarted process reads back the
    /// return value of an operation whose ack was lost in the crash.
    pub fn resume_op<R>(&mut self, body: impl FnMut(&mut Self) -> CapsuleStep<R>) -> R {
        self.metrics.operations += 1;
        self.drive(body)
    }

    /// The crash-absorbing capsule loop shared by `run_op` and `resume_op`.
    fn drive<R>(&mut self, mut body: impl FnMut(&mut Self) -> CapsuleStep<R>) -> R {
        loop {
            self.metrics.capsules += 1;
            match catch_crash(|| body(self)) {
                Ok(CapsuleStep::Done(result)) => return result,
                Ok(CapsuleStep::Continue) => continue,
                Err(crashed) => {
                    if self.unwind_on_crash {
                        // Kill-restart mode: the incarnation dies here instead of
                        // recovering in place; the frame keeps the operation.
                        raise_crash(crashed.signal.pid, crashed.signal.at_step);
                    }
                    // The thread's volatile state is gone (the closure unwound);
                    // simulate the restart: mark the crash, reload the frame. The
                    // recovery itself may be interrupted by a further crash — the
                    // model allows crashes at any instruction — so retry it until
                    // it completes (recovery is idempotent: it only reads).
                    self.apply_crash();
                    while catch_crash(|| self.recover()).is_err() {
                        // A crash interrupted the recovery itself (the model allows
                        // crashes at any instruction); count it so sweeps can assert
                        // the nested path was exercised, then restart the recovery.
                        self.metrics.recovery_crashes += 1;
                        self.apply_crash();
                    }
                }
            }
        }
    }
}

impl std::fmt::Debug for CapsuleRuntime<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CapsuleRuntime")
            .field("pid", &self.thread.pid())
            .field("pc", &self.pc)
            .field("seq", &self.locals[SEQ_SLOT])
            .field("crashed", &self.crashed)
            .field("metrics", &self.metrics)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{install_quiet_crash_hook, CrashPolicy, PMem};

    #[test]
    fn locals_persist_across_boundary_and_recovery() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::General, 3);
        rt.set_local(0, 5);
        rt.set_local(2, 7);
        rt.boundary(1);
        // Volatile scribble that is *not* followed by a boundary.
        rt.set_local(0, 999);
        rt.recover();
        assert_eq!(rt.local(0), 5);
        assert_eq!(rt.local(1), 0);
        assert_eq!(rt.local(2), 7);
        assert_eq!(rt.pc(), 1);
        assert!(rt.crashed());
        rt.boundary(2);
        assert!(!rt.crashed(), "boundary clears the crashed flag");
    }

    #[test]
    fn seq_is_stable_across_capsule_repetition() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::General, 1);
        rt.boundary(0);
        let s1 = rt.advance_seq();
        // Crash before the boundary: the advance is lost...
        rt.recover();
        let s2 = rt.advance_seq();
        assert_eq!(s1, s2, "a repeated capsule must reuse the same sequence number");
        rt.boundary(1);
        let s3 = rt.advance_seq();
        assert_eq!(s3, s2 + 1, "a new capsule gets a fresh sequence number");
    }

    #[test]
    fn run_op_completes_simple_state_machine() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::General, 2);
        // Compute sum of 1..=10 with one addend per capsule, persisted as it goes.
        let total = rt.run_op(0, |rt| {
            let i = rt.pc() as u64;
            if i == 10 {
                return CapsuleStep::Done(rt.local(0));
            }
            let acc = rt.local(0) + (i + 1);
            rt.set_local(0, acc);
            rt.boundary(rt.pc() + 1);
            CapsuleStep::Continue
        });
        assert_eq!(total, 55);
        let metrics = rt.metrics();
        assert_eq!(metrics.operations, 1);
        assert_eq!(metrics.capsules, 11);
        assert!(metrics.boundaries >= 11);
        assert_eq!(metrics.recoveries, 0);
    }

    #[test]
    fn run_op_survives_random_crashes_with_exact_result() {
        install_quiet_crash_hook();
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::General, 2);
        t.set_crash_policy(CrashPolicy::Random {
            prob: 0.05,
            seed: 42,
        });
        let total = rt.run_op(0, |rt| {
            let i = rt.pc() as u64;
            if i == 50 {
                return CapsuleStep::Done(rt.local(0));
            }
            let acc = rt.local(0) + (i + 1);
            rt.set_local(0, acc);
            rt.boundary(rt.pc() + 1);
            CapsuleStep::Continue
        });
        t.disarm_crashes();
        assert_eq!(total, (1..=50).sum::<u64>());
        assert!(
            rt.metrics().recoveries > 0,
            "the crash policy should have interrupted at least one capsule"
        );
        assert!(t.stats().crashes >= rt.metrics().recoveries);
    }

    #[test]
    fn nested_crash_during_recovery_is_retried_and_counted() {
        install_quiet_crash_hook();
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::General, 2);
        rt.set_local(0, 9);
        // Crash inside the capsule body, then again at the first instruction of
        // each of the next two recovery attempts (deterministic nested schedule).
        t.set_crash_schedule(pmem::CrashPlan::new(vec![10, 0, 0]));
        let out = rt.run_op(0, |rt| {
            let probe = rt.thread().alloc(1);
            for _ in 0..8 {
                let _ = rt.thread().read(probe);
            }
            CapsuleStep::Done(rt.local(0))
        });
        t.disarm_crashes();
        assert_eq!(out, 9, "result must be exact despite crash-during-recovery");
        assert_eq!(
            rt.metrics().recovery_crashes,
            2,
            "both nested crashes must hit (and be retried inside) recovery"
        );
        assert!(rt.metrics().recoveries >= 1);
        assert_eq!(t.stats().crashes, 3);
    }

    #[test]
    fn entry_boundary_persists_operation_arguments() {
        install_quiet_crash_hook();
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::General, 2);
        rt.set_local(1, 123); // the operation "argument"
        // The entry boundary costs 7 instructions (read control, write copy, flush,
        // fence, write control, flush, fence); fire the crash inside the body.
        t.set_crash_policy(CrashPolicy::Countdown(8));
        let arg_seen = rt.run_op(7, |rt| {
            // Burn a few instructions so the crash fires inside this capsule.
            let probe = rt.thread().alloc(1);
            for _ in 0..3 {
                let _ = rt.thread().read(probe);
            }
            CapsuleStep::Done(rt.local(1))
        });
        t.disarm_crashes();
        assert_eq!(arg_seen, 123, "argument must survive the crash via the entry boundary");
        assert!(rt.metrics().recoveries > 0);
        assert_eq!(rt.pc(), 7);
    }

    #[test]
    fn attach_from_restart_pointer_resumes_published_frame() {
        let mem = PMem::with_threads(1);
        let frame_pc;
        {
            let t = mem.thread(0);
            let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::General, 2);
            rt.set_local(1, 88);
            rt.boundary(4);
            frame_pc = rt.pc();
            // Simulate losing the whole process (drop rt and the thread handle).
        }
        mem.crash_all();
        let t = mem.thread(0);
        let mut rt = CapsuleRuntime::attach_from_restart_pointer(&t, BoundaryStyle::General, 2);
        assert!(rt.crashed());
        assert_eq!(rt.pc(), frame_pc);
        assert_eq!(rt.local(1), 88);
    }

    #[test]
    fn compact_runtime_round_trips() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::Compact, 3);
        rt.set_local(0, 10);
        rt.set_local(1, 20);
        rt.boundary(2);
        rt.set_local(2, 30);
        rt.boundary(3);
        rt.recover();
        assert_eq!((rt.local(0), rt.local(1), rt.local(2)), (10, 20, 30));
        assert_eq!(rt.pc(), 3);
    }

    #[test]
    #[should_panic(expected = "write-after-read hazard")]
    fn compact_war_hazard_is_detected() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::Compact, 2);
        rt.set_local(0, 1);
        rt.boundary(1);
        // This capsule reads local 0 and then tries to persist a different value
        // into it: with a single-copy frame that is unsafe.
        let v = rt.local(0);
        rt.set_local(0, v + 1);
        rt.boundary(2);
    }

    #[test]
    fn scheduled_workers_survive_system_crashes_with_exact_results() {
        use pmem::{CrashPlan, MemConfig, Mode, SchedConfig, ThreadScheduler};
        use std::sync::Arc;
        install_quiet_crash_hook();
        const WORKERS: usize = 3;
        const CAPSULES: u64 = 12;
        // Three capsule runtimes interleaved by a deterministic scheduler; pid 0
        // takes a nested full-system crash schedule (crash in the workload, then
        // again inside its own recovery). The peers are parked mid-instruction
        // at both crashes and observe them as kills; everyone's state machine
        // must still produce the exact sum.
        let run = |seed: u64| -> (Vec<(u64, u64)>, u64) {
            let mem = PMem::new(MemConfig::new(WORKERS).mode(Mode::SharedCache));
            let sched = ThreadScheduler::new(SchedConfig::new(WORKERS, seed));
            let per_pid: Vec<(u64, u64)> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..WORKERS)
                    .map(|pid| {
                        let mem = &mem;
                        let sched = &sched;
                        s.spawn(move || {
                            let t = mem.thread(pid);
                            t.set_thread_scheduler(Arc::clone(sched));
                            let _guard = sched.finish_guard(pid);
                            let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::General, 2);
                            rt.set_system_crashes(true);
                            if pid == 0 {
                                t.set_crash_schedule(CrashPlan::new(vec![25, 3]));
                            }
                            let total = rt.run_op(0, |rt| {
                                let i = rt.pc() as u64;
                                if i == CAPSULES {
                                    return CapsuleStep::Done(rt.local(0));
                                }
                                let acc = rt.local(0) + (i + 1);
                                rt.set_local(0, acc);
                                rt.boundary(rt.pc() + 1);
                                CapsuleStep::Continue
                            });
                            t.disarm_crashes();
                            let crashes = t.stats().crashes;
                            t.clear_thread_scheduler();
                            (total, crashes)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            (per_pid, sched.fingerprint())
        };
        let (per_pid, fingerprint) = run(7);
        let expected: u64 = (1..=CAPSULES).sum();
        for (pid, &(total, _)) in per_pid.iter().enumerate() {
            assert_eq!(total, expected, "pid {pid} lost state across the crash");
        }
        assert!(
            per_pid[0].1 >= 2,
            "the victim must observe both scripted crashes: {per_pid:?}"
        );
        for pid in 1..WORKERS {
            assert!(
                per_pid[pid].1 >= 1,
                "peer {pid} must observe the system crash as a kill: {per_pid:?}"
            );
        }
        // Deterministic: the same seed reproduces results and interleaving.
        let (again, fp_again) = run(7);
        assert_eq!(per_pid, again);
        assert_eq!(fingerprint, fp_again);
        // And a different seed reaches a different interleaving.
        let (_, fp_other) = run(8);
        assert_ne!(fingerprint, fp_other);
    }

    #[test]
    fn unwind_on_crash_kills_the_incarnation_and_resume_op_finishes_the_op() {
        install_quiet_crash_hook();
        const CAPSULES: u64 = 10;
        // The operation body both incarnations share: sum 1..=CAPSULES with one
        // addend per capsule, accumulator persisted at every boundary.
        fn body(rt: &mut CapsuleRuntime) -> CapsuleStep<u64> {
            let i = rt.pc() as u64;
            if i == CAPSULES {
                return CapsuleStep::Done(rt.local(0));
            }
            let acc = rt.local(0) + (i + 1);
            rt.set_local(0, acc);
            rt.boundary(rt.pc() + 1);
            CapsuleStep::Continue
        }
        let mem = PMem::with_threads(1);
        // Incarnation 1: dies mid-operation — the crash unwinds out of run_op.
        let died = {
            let t = mem.thread(0);
            let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::General, 2);
            rt.set_unwind_on_crash(true);
            t.set_crash_policy(CrashPolicy::Countdown(40));
            catch_crash(|| rt.run_op(0, body))
        };
        let signal = died.expect_err("the crash must escape run_op").signal;
        assert_eq!(signal.pid, 0);
        // The incarnation is gone; apply the machine-level fault it suffered.
        mem.crash_all();
        // Incarnation 2: re-attach the frame the restart pointer still names and
        // drive the interrupted operation to its exact result.
        let t = mem.thread(0);
        let mut rt = CapsuleRuntime::attach_from_restart_pointer(&t, BoundaryStyle::General, 2);
        assert!(rt.crashed());
        let pc_at_death = rt.pc();
        assert!(
            (1..CAPSULES as u32).contains(&pc_at_death),
            "the crash should land mid-operation, got pc {pc_at_death}"
        );
        let total = rt.resume_op(body);
        assert_eq!(total, (1..=CAPSULES).sum::<u64>());
        assert_eq!(rt.pc(), CAPSULES as u32);
    }

    #[test]
    fn war_check_can_be_disabled() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::Compact, 2);
        rt.set_war_check(false);
        rt.set_local(0, 1);
        rt.boundary(1);
        let v = rt.local(0);
        rt.set_local(0, v + 1);
        rt.boundary(2); // does not panic
        assert_eq!(rt.local(0), 2);
    }

    #[test]
    fn skipping_entry_boundary_reduces_persistence_cost() {
        let mem = PMem::with_threads(1);
        let t = mem.thread(0);
        let mut rt = CapsuleRuntime::new(&t, BoundaryStyle::General, 1);
        let run = |rt: &mut CapsuleRuntime, _label: &str| {
            let before = rt.thread().stats();
            rt.run_op(0, |rt| {
                rt.boundary(1);
                CapsuleStep::Done(())
            });
            rt.thread().stats().since(&before)
        };
        rt.set_entry_boundary(true);
        let with_entry = run(&mut rt, "with");
        rt.set_entry_boundary(false);
        let without_entry = run(&mut rt, "without");
        assert!(without_entry.fences < with_entry.fences);
    }
}
