//! Cache-line alignment for *host-side* per-process hot state.
//!
//! The simulated arena handles alignment of *persistent* words itself
//! ([`alloc_aligned`](crate::PThread::alloc_aligned) plus the sharded
//! announcement layouts in the `rcas` crate). But the harness also keeps
//! per-process state in ordinary Rust memory — the live statistics counters in
//! every [`PThread`](crate::PThread), the executor-owned worker slots of the
//! service drill — and when those blocks for *different* threads end up
//! adjacent in one allocation, every counter bump invalidates the neighbours'
//! cache line. [`CacheAligned`] pads and aligns a value to the host cache line
//! so per-pid blocks never share one.

/// Host cache-line size in bytes assumed by [`CacheAligned`].
///
/// 64 bytes matches x86-64 and most aarch64 parts; on machines with larger
/// lines the wrapper still removes sharing between blocks ≥ one line apart,
/// which is the common case for per-pid arrays.
pub const CACHE_LINE_BYTES: usize = 64;

/// Pads and aligns `T` to a full host cache line.
///
/// `#[repr(align(64))]` guarantees both the alignment of the wrapper *and*
/// (because size is always a multiple of alignment in Rust) that the wrapper
/// occupies a whole number of lines, so two `CacheAligned<T>` elements of an
/// array can never split a line between them.
///
/// The wrapper is transparent in use: it derefs to `T`, so field access and
/// method calls on the inner value need no unwrapping.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(64))]
pub struct CacheAligned<T>(pub T);

impl<T> CacheAligned<T> {
    /// Wrap a value, padding it to a cache-line boundary.
    #[inline]
    pub const fn new(value: T) -> Self {
        CacheAligned(value)
    }

    /// Unwrap the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> std::ops::Deref for CacheAligned<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for CacheAligned<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::mem::{align_of, size_of};

    #[test]
    fn wrapper_is_aligned_and_padded_to_whole_lines() {
        // A tiny payload still occupies (and is aligned to) one full line...
        assert_eq!(align_of::<CacheAligned<u8>>(), CACHE_LINE_BYTES);
        assert_eq!(size_of::<CacheAligned<u8>>(), CACHE_LINE_BYTES);
        // ...and a payload larger than a line rounds up to a multiple of it,
        // so array elements can never share a line.
        struct Big(#[allow(dead_code)] [u64; 9]);
        assert_eq!(align_of::<CacheAligned<Big>>(), CACHE_LINE_BYTES);
        assert_eq!(size_of::<CacheAligned<Big>>() % CACHE_LINE_BYTES, 0);
        assert!(size_of::<CacheAligned<Big>>() >= size_of::<Big>());
    }

    #[test]
    fn per_pid_stat_cells_fill_whole_lines() {
        // The live counter block each `PThread` owns: the hottest host-side
        // per-pid state in the tree. Regression-guard its padding so a new
        // counter field can't silently reintroduce cross-thread line sharing.
        use crate::stats::StatCells;
        assert_eq!(align_of::<CacheAligned<StatCells>>(), CACHE_LINE_BYTES);
        assert_eq!(size_of::<CacheAligned<StatCells>>() % CACHE_LINE_BYTES, 0);
    }

    #[test]
    fn deref_makes_the_wrapper_transparent() {
        let mut cell = CacheAligned::new(7u64);
        assert_eq!(*cell, 7);
        *cell += 1;
        assert_eq!(cell.into_inner(), 8);
    }
}
