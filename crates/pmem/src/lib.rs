//! # `pmem` — a simulated Parallel Persistent Memory (PPM) machine
//!
//! This crate is the substrate on which every other crate in the workspace runs.
//! It simulates the memory model of *Delay-Free Concurrency on Faulty Persistent
//! Memory* (Ben-David, Blelloch, Friedman, Wei — SPAA 2019), §2.1:
//!
//! * a large **persistent shared memory** addressed in 64-bit words, accessed with
//!   `Read`, `Write` and `CAS` instructions,
//! * a small **volatile private memory** per process (ordinary Rust locals — they are
//!   simply lost when a simulated crash unwinds the thread),
//! * **crash events** that wipe a process's volatile state while leaving persistent
//!   memory intact, and a **restart pointer** per process from which execution resumes,
//! * two cache models:
//!   * the **private-cache model** (the paper's PPM model): every store to shared
//!     memory is immediately persistent, and
//!   * the **shared-cache model**: stores land in a (volatile) cache and only become
//!     persistent when the program issues an explicit [`flush`](PThread::flush) /
//!     [`fence`](PThread::fence), mirroring `clflushopt` + `sfence` on real hardware.
//!
//! Because no commodity machine lets a test harness yank power at a chosen
//! instruction, every persistent word keeps *two* values: the `current` (cached)
//! value and the `persisted` value. A flush copies current → persisted for a whole
//! 64-byte cache line; a simulated crash rolls every word back to its persisted
//! value. This is the substitution documented in `DESIGN.md`: it exposes exactly the
//! operations the paper's algorithms use, plus deterministic crash injection.
//!
//! ## Quick tour
//!
//! ```
//! use pmem::{PMem, MemConfig, Mode};
//!
//! // A 2-process machine using the shared-cache model.
//! let mem = PMem::new(MemConfig::new(2).mode(Mode::SharedCache));
//! let t = mem.thread(0);
//!
//! // Allocate two persistent words and update them.
//! let a = t.alloc(2);
//! t.write(a, 41);
//! assert!(t.cas(a, 41, 42));
//! t.persist(a);                       // clflushopt + sfence
//! assert_eq!(t.read(a), 42);
//!
//! // A full-system crash rolls unflushed data back; `a` was persisted so it survives.
//! drop(t);
//! mem.crash_all();
//! let t = mem.thread(0);
//! assert_eq!(t.read(a), 42);
//! assert!(mem.take_crashed(0));       // the process observes that it crashed
//! ```
//!
//! ## Crash injection
//!
//! Each [`PThread`] carries a [`CrashPolicy`]. Every simulated instruction calls a
//! crash point; when the policy fires, the access panics with a [`CrashSignal`]
//! payload, which the capsule runtime (see the `capsules` crate) catches to emulate
//! the loss of volatile state followed by a restart from the last capsule boundary.
//!
//! ## Statistics
//!
//! Every thread handle counts reads, writes, CASes, flushes, fences and recovery
//! steps ([`Stats`]). The benchmark harness uses these to reproduce the paper's
//! flush-count arguments and the recovery-delay comparison.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod addr;
pub mod align;
pub mod arena;
pub mod audit;
pub mod crash;
pub mod hb;
pub mod mem;
pub mod mode;
pub mod sched;
pub mod stats;
pub mod typed;

pub use addr::PAddr;
pub use align::{CacheAligned, CACHE_LINE_BYTES};
pub use audit::FlushAuditor;
pub use hb::HbAnalyzer;
pub use crash::{
    catch_crash, install_quiet_crash_hook, raise_crash, CrashPlan, CrashPolicy, CrashSchedule,
    CrashSignal, Crashed,
};
pub use mem::{MemConfig, PMem, PThread, ThreadOptions};
pub use mode::Mode;
pub use sched::{FinishGuard, SchedConfig, ThreadScheduler};
pub use stats::Stats;
pub use typed::{PCell, PField};

/// Number of 64-bit words in a simulated cache line (64 bytes).
pub const LINE_WORDS: u64 = 8;

/// The null persistent address. Word 0 of the arena is reserved and never allocated,
/// so `PAddr::NULL` can be used as a sentinel pointer by data structures.
pub const NULL: PAddr = PAddr::NULL;
