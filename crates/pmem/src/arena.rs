//! The persistent word arena.
//!
//! Persistent memory is a flat array of 64-bit words, stored in lazily created
//! fixed-size segments so that allocation never moves existing words (threads hold
//! raw indices across the whole run). Each word carries two values:
//!
//! * `current` — what a load observes (the cache contents in the shared-cache
//!   model, the memory contents in the private-cache model), and
//! * `persisted` — what survives a simulated crash in the shared-cache model.
//!
//! Flushing a cache line copies `current` into `persisted` for the 8 words of the
//! line; a full-system crash copies `persisted` back into `current` for every
//! allocated word. In the private-cache model the `persisted` half is unused
//! (shared memory is durable by definition) and crashes do not touch memory.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use parking_lot::Mutex;

use crate::addr::PAddr;
use crate::LINE_WORDS;

/// Number of words per segment (1 MiWords = 8 MiB of `current` + 8 MiB of shadow).
pub const SEGMENT_WORDS: usize = 1 << 20;

/// Maximum number of segments (caps the arena at 64 Gi words; far more than any
/// test or benchmark needs, while keeping the segment table small).
pub const MAX_SEGMENTS: usize = 1 << 16;

/// One simulated persistent word: the cached value and the durable value.
#[derive(Debug)]
pub struct Word {
    current: AtomicU64,
    persisted: AtomicU64,
}

impl Word {
    fn new() -> Word {
        Word {
            current: AtomicU64::new(0),
            persisted: AtomicU64::new(0),
        }
    }

    /// Load the cached value.
    #[inline]
    pub fn load(&self) -> u64 {
        self.current.load(Ordering::SeqCst)
    }

    /// Store to the cached value.
    #[inline]
    pub fn store(&self, v: u64) {
        self.current.store(v, Ordering::SeqCst)
    }

    /// Compare-and-swap on the cached value; returns the witnessed value on failure.
    #[inline]
    pub fn compare_exchange(&self, expected: u64, new: u64) -> Result<u64, u64> {
        self.current
            .compare_exchange(expected, new, Ordering::SeqCst, Ordering::SeqCst)
    }

    /// Atomic fetch-and-add on the cached value.
    #[inline]
    pub fn fetch_add(&self, delta: u64) -> u64 {
        self.current.fetch_add(delta, Ordering::SeqCst)
    }

    /// Copy the cached value into the durable copy (what a `clflushopt` does once
    /// the following fence completes; the simulator persists eagerly at the flush).
    #[inline]
    pub fn persist_now(&self) {
        self.persisted
            .store(self.current.load(Ordering::SeqCst), Ordering::SeqCst);
    }

    /// Roll the cached value back to the durable copy (a crash).
    #[inline]
    pub fn rollback(&self) {
        self.current
            .store(self.persisted.load(Ordering::SeqCst), Ordering::SeqCst);
    }

    /// Read the durable copy (used by tests asserting durability invariants).
    #[inline]
    pub fn durable(&self) -> u64 {
        self.persisted.load(Ordering::SeqCst)
    }
}

/// Lazily grown, never-moving array of persistent words.
pub struct Arena {
    segments: Box<[OnceLock<Box<[Word]>>]>,
    /// Bump-allocation cursor (word index of the next free word).
    next: AtomicU64,
    /// Serialises segment creation (not on the access fast path).
    grow_lock: Mutex<()>,
}

impl Arena {
    /// Create an arena whose first `reserved` words (at least 1, for the null word)
    /// are pre-allocated and considered reserved for the system area.
    pub fn new(reserved: u64) -> Arena {
        let reserved = reserved.max(1);
        let mut segments = Vec::with_capacity(MAX_SEGMENTS);
        segments.resize_with(MAX_SEGMENTS, OnceLock::new);
        let arena = Arena {
            segments: segments.into_boxed_slice(),
            next: AtomicU64::new(reserved),
            grow_lock: Mutex::new(()),
        };
        arena.ensure_capacity(reserved);
        arena
    }

    /// The index one past the highest allocated word.
    pub fn allocated_words(&self) -> u64 {
        self.next.load(Ordering::SeqCst)
    }

    fn ensure_capacity(&self, upto_word: u64) {
        let last_segment = ((upto_word.max(1) - 1) / SEGMENT_WORDS as u64) as usize;
        assert!(
            last_segment < MAX_SEGMENTS,
            "simulated persistent memory exhausted ({} segments)",
            MAX_SEGMENTS
        );
        for seg in 0..=last_segment {
            if self.segments[seg].get().is_none() {
                let _guard = self.grow_lock.lock();
                self.segments[seg].get_or_init(|| {
                    let mut words = Vec::with_capacity(SEGMENT_WORDS);
                    words.resize_with(SEGMENT_WORDS, Word::new);
                    words.into_boxed_slice()
                });
            }
        }
    }

    /// Bump-allocate `nwords` consecutive words and return the address of the first.
    ///
    /// Allocations never straddle a cache line *unless* they are larger than a line,
    /// so that single-record flushes behave like they would on real hardware.
    pub fn alloc(&self, nwords: u64) -> PAddr {
        assert!(nwords > 0, "zero-sized persistent allocation");
        loop {
            let cur = self.next.load(Ordering::SeqCst);
            // Avoid straddling a cache line for sub-line allocations.
            let line_off = cur % LINE_WORDS;
            let base = if nwords <= LINE_WORDS && line_off + nwords > LINE_WORDS {
                cur + (LINE_WORDS - line_off)
            } else {
                cur
            };
            let end = base + nwords;
            if self
                .next
                .compare_exchange(cur, end, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                self.ensure_capacity(end);
                return PAddr(base);
            }
        }
    }

    /// Bump-allocate `nwords` consecutive words starting at a cache-line boundary.
    /// Used for records whose flush behaviour must not depend on allocation order
    /// (e.g. capsule frames).
    pub fn alloc_aligned(&self, nwords: u64) -> PAddr {
        assert!(nwords > 0, "zero-sized persistent allocation");
        loop {
            let cur = self.next.load(Ordering::SeqCst);
            let base = (cur + LINE_WORDS - 1) & !(LINE_WORDS - 1);
            let end = base + nwords;
            if self
                .next
                .compare_exchange(cur, end, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                self.ensure_capacity(end);
                return PAddr(base);
            }
        }
    }

    /// Access a word. Panics if the address was never allocated.
    #[inline]
    pub fn word(&self, addr: PAddr) -> &Word {
        debug_assert!(!addr.is_null(), "dereferencing the null PAddr");
        let idx = addr.0 as usize;
        let seg = idx / SEGMENT_WORDS;
        let off = idx % SEGMENT_WORDS;
        let segment = self.segments[seg]
            .get()
            .unwrap_or_else(|| panic!("access to unallocated persistent address {addr:?}"));
        &segment[off]
    }

    /// Persist every word of the cache line containing `addr`.
    pub fn flush_line(&self, addr: PAddr) {
        let base = addr.line_base().0.max(1);
        let limit = self.allocated_words();
        for w in base..(addr.line_base().0 + LINE_WORDS).min(limit) {
            self.word(PAddr(w)).persist_now();
        }
    }

    /// Roll every allocated word back to its durable copy (a full-system crash in
    /// the shared-cache model). The caller must guarantee quiescence: no other
    /// thread may be executing simulated instructions during the rollback.
    pub fn rollback_all(&self) {
        let limit = self.allocated_words();
        for idx in 1..limit {
            self.word(PAddr(idx)).rollback();
        }
    }

    /// Persist every allocated word (used to establish a consistent initial state
    /// before an experiment starts injecting crashes).
    pub fn persist_all(&self) {
        let limit = self.allocated_words();
        for idx in 1..limit {
            self.word(PAddr(idx)).persist_now();
        }
    }
}

impl std::fmt::Debug for Arena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Arena")
            .field("allocated_words", &self.allocated_words())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_distinct_non_null_addresses() {
        let arena = Arena::new(8);
        let a = arena.alloc(1);
        let b = arena.alloc(1);
        assert!(!a.is_null());
        assert!(!b.is_null());
        assert_ne!(a, b);
    }

    #[test]
    fn alloc_does_not_straddle_lines_for_small_records() {
        let arena = Arena::new(8);
        // Allocate 3-word records repeatedly; none should straddle a line boundary.
        for _ in 0..100 {
            let a = arena.alloc(3);
            let start_line = a.line_base();
            let end_line = PAddr(a.0 + 2).line_base();
            assert_eq!(start_line, end_line, "3-word record straddles a cache line");
        }
    }

    #[test]
    fn large_allocations_may_span_lines() {
        let arena = Arena::new(8);
        let a = arena.alloc(100);
        // All 100 words must be addressable.
        for i in 0..100 {
            arena.word(a.offset(i)).store(i);
        }
        for i in 0..100 {
            assert_eq!(arena.word(a.offset(i)).load(), i);
        }
    }

    #[test]
    fn store_load_round_trip() {
        let arena = Arena::new(8);
        let a = arena.alloc(1);
        arena.word(a).store(123);
        assert_eq!(arena.word(a).load(), 123);
    }

    #[test]
    fn cas_succeeds_and_fails_correctly() {
        let arena = Arena::new(8);
        let a = arena.alloc(1);
        arena.word(a).store(5);
        assert_eq!(arena.word(a).compare_exchange(5, 6), Ok(5));
        assert_eq!(arena.word(a).compare_exchange(5, 7), Err(6));
        assert_eq!(arena.word(a).load(), 6);
    }

    #[test]
    fn rollback_reverts_unflushed_writes() {
        let arena = Arena::new(8);
        let a = arena.alloc(1);
        arena.word(a).store(1);
        arena.flush_line(a);
        arena.word(a).store(2);
        // Not flushed: a crash loses the 2.
        arena.rollback_all();
        assert_eq!(arena.word(a).load(), 1);
    }

    #[test]
    fn flush_line_persists_all_words_in_line() {
        let arena = Arena::new(8);
        let a = arena.alloc(8); // a whole line
        for i in 0..8 {
            arena.word(a.offset(i)).store(100 + i);
        }
        arena.flush_line(a.offset(3)); // flushing any word flushes the line
        arena.rollback_all();
        for i in 0..8 {
            assert_eq!(arena.word(a.offset(i)).load(), 100 + i);
        }
    }

    #[test]
    fn persist_all_makes_everything_durable() {
        let arena = Arena::new(8);
        let a = arena.alloc(4);
        for i in 0..4 {
            arena.word(a.offset(i)).store(i + 1);
        }
        arena.persist_all();
        arena.rollback_all();
        for i in 0..4 {
            assert_eq!(arena.word(a.offset(i)).load(), i + 1);
        }
    }

    #[test]
    fn crossing_segment_boundary_works() {
        let arena = Arena::new(8);
        // Allocate past the first segment.
        let big = arena.alloc(SEGMENT_WORDS as u64 + 16);
        let last = big.offset(SEGMENT_WORDS as u64 + 15);
        arena.word(last).store(77);
        assert_eq!(arena.word(last).load(), 77);
    }

    #[test]
    fn concurrent_allocation_yields_disjoint_ranges() {
        use std::sync::Arc;
        let arena = Arc::new(Arena::new(8));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let arena = Arc::clone(&arena);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| arena.alloc(2).0).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "allocations overlapped");
    }

    #[test]
    #[should_panic]
    fn zero_sized_alloc_panics() {
        let arena = Arena::new(8);
        let _ = arena.alloc(0);
    }
}
