//! The persistent word arena.
//!
//! Persistent memory is a flat array of 64-bit words, stored in lazily created
//! fixed-size segments so that allocation never moves existing words (threads hold
//! raw indices across the whole run). Each word carries two values:
//!
//! * `current` — what a load observes (the cache contents in the shared-cache
//!   model, the memory contents in the private-cache model), and
//! * `persisted` — what survives a simulated crash in the shared-cache model.
//!
//! Flushing a cache line copies `current` into `persisted` for the 8 words of the
//! line; a full-system crash copies `persisted` back into `current` for every
//! allocated word. In the private-cache model the `persisted` half is unused
//! (shared memory is durable by definition) and crashes do not touch memory.
//!
//! ## Atomic orderings
//!
//! This module sits on the hot path of every simulated instruction, so each atomic
//! access uses the weakest ordering that preserves the simulated machine's
//! semantics (the per-site reasoning is on each method; the model-level argument is
//! DESIGN.md §5):
//!
//! * `current` uses `Acquire`/`Release` (`AcqRel` for RMWs). All cross-thread
//!   hand-off in the paper's algorithms goes through a CAS or a read of a word
//!   another thread published with a write, so release/acquire pairs on the
//!   *simulated* word carry exactly the happens-before edges the modelled
//!   sequentially consistent machine would provide to those algorithms. The
//!   simulator's own [`fence`](crate::PThread::fence) additionally issues a real
//!   `SeqCst` fence.
//! * `persisted` uses `Relaxed`. It is written by flushes (per-location atomic
//!   copies; coherence alone guarantees a flush publishes a value that was
//!   `current` at some point) and read only under quiescence — crash rollback and
//!   [`durable`](Word::durable) assertions run after every worker has been joined
//!   or unwound, and the join/catch itself is the synchronising edge.
//! * the allocation cursor `next` uses `Relaxed` RMWs: it is a monotone counter
//!   whose atomicity (not its ordering) provides disjointness, and addresses only
//!   reach other threads through `current` (release/acquire) after allocation.
//! * segment publication relies on `OnceLock`'s internal `Release`/`Acquire` pair,
//!   plus a `segments_ready` high-watermark (`Release` on grow, `Acquire` on read)
//!   so the common "capacity already there" allocation never rescans the table.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use parking_lot::Mutex;

use crate::addr::PAddr;
use crate::LINE_WORDS;

/// Number of words per segment (1 MiWords = 8 MiB of `current` + 8 MiB of shadow).
/// A multiple of [`LINE_WORDS`], so a cache line never straddles two segments.
pub const SEGMENT_WORDS: usize = 1 << 20;

/// Maximum number of segments (caps the arena at 64 Gi words; far more than any
/// test or benchmark needs, while keeping the segment table small).
pub const MAX_SEGMENTS: usize = 1 << 16;

/// One simulated persistent word: the cached value and the durable value.
#[derive(Debug)]
pub struct Word {
    current: AtomicU64,
    persisted: AtomicU64,
}

impl Word {
    fn new() -> Word {
        Word {
            current: AtomicU64::new(0),
            persisted: AtomicU64::new(0),
        }
    }

    /// Load the cached value. `Acquire`: pairs with [`store`](Word::store) /
    /// successful [`compare_exchange`](Word::compare_exchange) releases, so a
    /// reader that observes a published pointer also observes the writes made
    /// before it was published.
    #[inline]
    pub fn load(&self) -> u64 {
        self.current.load(Ordering::Acquire)
    }

    /// Store to the cached value. `Release`: publishes earlier writes to any
    /// thread that `Acquire`-loads this word (on x86-64 this is a plain `mov`
    /// where the previous `SeqCst` store compiled to an `xchg`, which is the
    /// single biggest per-instruction saving in the simulator).
    #[inline]
    pub fn store(&self, v: u64) {
        self.current.store(v, Ordering::Release)
    }

    /// Compare-and-swap on the cached value; returns the witnessed value on
    /// failure. `AcqRel` on success (the CAS both publishes and observes),
    /// `Acquire` on failure (the witnessed value may be a pointer to follow).
    #[inline]
    pub fn compare_exchange(&self, expected: u64, new: u64) -> Result<u64, u64> {
        self.current
            .compare_exchange(expected, new, Ordering::AcqRel, Ordering::Acquire)
    }

    /// Atomic fetch-and-add on the cached value (`AcqRel`, as for a CAS).
    #[inline]
    pub fn fetch_add(&self, delta: u64) -> u64 {
        self.current.fetch_add(delta, Ordering::AcqRel)
    }

    /// Copy the cached value into the durable copy (what a `clflushopt` does once
    /// the following fence completes; the simulator persists eagerly at the flush).
    ///
    /// `Relaxed` on both sides: per-location coherence already guarantees the
    /// copied value was `current` at some moment, and the durable copy is only
    /// *read* under quiescence (rollback / test assertions after joining workers).
    #[inline]
    pub fn persist_now(&self) {
        self.persisted
            .store(self.current.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Roll the cached value back to the durable copy (a crash). Quiescent by
    /// contract (see [`Arena::rollback_all`]), hence `Relaxed`.
    #[inline]
    pub fn rollback(&self) {
        self.current
            .store(self.persisted.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Read the durable copy (used by tests asserting durability invariants,
    /// under quiescence).
    #[inline]
    pub fn durable(&self) -> u64 {
        self.persisted.load(Ordering::Relaxed)
    }

    /// Whether the durable copy already equals the cached value, i.e. a flush
    /// of this word would be a no-op. Racy by nature: a concurrent store can
    /// land between the two loads. That is fine for the flush-coalescing use —
    /// eliding a flush because the word *was* clean is indistinguishable from
    /// a real flush that linearized just before the racing store, which the
    /// crash model already allows.
    #[inline]
    pub fn is_clean(&self) -> bool {
        self.persisted.load(Ordering::Relaxed) == self.current.load(Ordering::Relaxed)
    }
}

/// Process-global arena identity counter. Identities start at 1 so that 0 can
/// serve as "no arena" in caches keyed by identity.
static NEXT_ARENA_ID: AtomicU64 = AtomicU64::new(1);

/// Lazily grown, never-moving array of persistent words.
pub struct Arena {
    /// Process-unique identity. Per-thread `(segment, slice)` caches are keyed
    /// by this, so a handle whose machine swaps to (or recovers onto) a
    /// different arena can never serve a stale slice from the old one.
    id: u64,
    segments: Box<[OnceLock<Box<[Word]>>]>,
    /// Bump-allocation cursor (word index of the next free word).
    next: AtomicU64,
    /// High-watermark: every segment below this index is initialised. Lets
    /// `ensure_capacity` answer the common "already big enough" case with one
    /// `Acquire` load instead of rescanning the segment table from 0.
    segments_ready: AtomicUsize,
    /// Serialises segment creation (not on the access fast path).
    grow_lock: Mutex<()>,
}

impl Arena {
    /// Create an arena whose first `reserved` words (at least 1, for the null word)
    /// are pre-allocated and considered reserved for the system area.
    pub fn new(reserved: u64) -> Arena {
        let reserved = reserved.max(1);
        let mut segments = Vec::with_capacity(MAX_SEGMENTS);
        segments.resize_with(MAX_SEGMENTS, OnceLock::new);
        let arena = Arena {
            id: NEXT_ARENA_ID.fetch_add(1, Ordering::Relaxed),
            segments: segments.into_boxed_slice(),
            next: AtomicU64::new(reserved),
            segments_ready: AtomicUsize::new(0),
            grow_lock: Mutex::new(()),
        };
        arena.ensure_capacity(reserved);
        arena
    }

    /// This arena's process-unique identity (never 0, never reused within a
    /// process). Two arenas always compare unequal, even if their contents are
    /// word-for-word identical.
    #[inline]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The index one past the highest allocated word.
    ///
    /// `Relaxed`: a monotone counter. Callers that iterate up to it (rollback,
    /// persist-all) run under quiescence, where thread join already ordered every
    /// allocation before the load.
    pub fn allocated_words(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    fn ensure_capacity(&self, upto_word: u64) {
        if upto_word == 0 {
            // A zero-allocation arena owns no words: there is no segment to
            // create, and the rollback/persist walks below must see an empty
            // range. The historical `.max(1)` here silently materialised (and
            // walked) segment 0 for a capacity request of nothing.
            return;
        }
        let last_segment = ((upto_word - 1) / SEGMENT_WORDS as u64) as usize;
        assert!(
            last_segment < MAX_SEGMENTS,
            "simulated persistent memory exhausted ({} segments)",
            MAX_SEGMENTS
        );
        // Fast path: the watermark says everything up to `last_segment` exists.
        if last_segment < self.segments_ready.load(Ordering::Acquire) {
            return;
        }
        let _guard = self.grow_lock.lock();
        // All growth happens under the lock, so the watermark is stable here and
        // segments below it never need re-checking. A concurrent grower may have
        // already raised it past our target, so only ever move it up.
        let ready = self.segments_ready.load(Ordering::Acquire);
        for seg in ready..=last_segment {
            self.segments[seg].get_or_init(|| {
                let mut words = Vec::with_capacity(SEGMENT_WORDS);
                words.resize_with(SEGMENT_WORDS, Word::new);
                words.into_boxed_slice()
            });
        }
        if last_segment + 1 > ready {
            self.segments_ready
                .store(last_segment + 1, Ordering::Release);
        }
    }

    /// Bump-allocate `nwords` consecutive words and return the address of the first.
    ///
    /// Allocations never straddle a cache line *unless* they are larger than a line,
    /// so that single-record flushes behave like they would on real hardware.
    pub fn alloc(&self, nwords: u64) -> PAddr {
        assert!(nwords > 0, "zero-sized persistent allocation");
        loop {
            let cur = self.next.load(Ordering::Relaxed);
            // Avoid straddling a cache line for sub-line allocations.
            let line_off = cur % LINE_WORDS;
            let base = if nwords <= LINE_WORDS && line_off + nwords > LINE_WORDS {
                cur + (LINE_WORDS - line_off)
            } else {
                cur
            };
            let end = base + nwords;
            // `Relaxed` RMW: atomicity alone makes the claimed ranges disjoint;
            // the address only becomes visible to other threads through a
            // release/acquire chain on `current` (or a thread spawn/join).
            if self
                .next
                .compare_exchange(cur, end, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                self.ensure_capacity(end);
                return PAddr(base);
            }
        }
    }

    /// Bump-allocate `nwords` consecutive words starting at a cache-line boundary.
    /// Used for records whose flush behaviour must not depend on allocation order
    /// (e.g. capsule frames).
    pub fn alloc_aligned(&self, nwords: u64) -> PAddr {
        assert!(nwords > 0, "zero-sized persistent allocation");
        loop {
            let cur = self.next.load(Ordering::Relaxed);
            let base = (cur + LINE_WORDS - 1) & !(LINE_WORDS - 1);
            let end = base + nwords;
            if self
                .next
                .compare_exchange(cur, end, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                self.ensure_capacity(end);
                return PAddr(base);
            }
        }
    }

    /// The initialised segment `seg`, if it exists. `OnceLock::get` provides the
    /// `Acquire` pairing with the initialiser's `Release`, so the returned slice's
    /// words are fully constructed. Used by `PThread`'s per-thread segment cache.
    #[inline]
    pub(crate) fn segment(&self, seg: usize) -> Option<&[Word]> {
        self.segments.get(seg)?.get().map(|b| &b[..])
    }

    /// Access a word. Panics if the address was never allocated.
    #[inline]
    pub fn word(&self, addr: PAddr) -> &Word {
        debug_assert!(!addr.is_null(), "dereferencing the null PAddr");
        let idx = addr.0 as usize;
        let segment = self
            .segment(idx / SEGMENT_WORDS)
            .unwrap_or_else(|| panic!("access to unallocated persistent address {addr:?}"));
        &segment[idx % SEGMENT_WORDS]
    }

    /// The whole cache line containing `addr`, as a slice — the segment is
    /// resolved once for all [`LINE_WORDS`] words. A line never straddles
    /// segments ([`SEGMENT_WORDS`] is a multiple of [`LINE_WORDS`]), and the
    /// reserved null word 0 is included when `addr` is on line 0 (flushing or
    /// rolling back the never-written null word is a no-op copy of 0 over 0), so
    /// the range is the full physical line with no per-call clamping.
    #[inline]
    pub fn line_slice(&self, addr: PAddr) -> &[Word] {
        let base = addr.line_base().0 as usize;
        let segment = self
            .segment(base / SEGMENT_WORDS)
            .unwrap_or_else(|| panic!("flush of unallocated persistent address {addr:?}"));
        let off = base % SEGMENT_WORDS;
        &segment[off..off + LINE_WORDS as usize]
    }

    /// Persist every word of the cache line containing `addr`.
    ///
    /// The line range is single-sourced through [`line_slice`](Arena::line_slice):
    /// the full physical line is persisted, including words past the current
    /// allocation frontier (they are still durably zero, which is exactly the
    /// freshly-allocated contract) — the historical per-word clamp to
    /// `allocated_words()` silently skipped the tail of a partially allocated
    /// line.
    pub fn flush_line(&self, addr: PAddr) {
        for word in self.line_slice(addr) {
            word.persist_now();
        }
    }

    /// Run `f` over every allocated word, walking whole segment slices (one
    /// segment-table resolution per [`SEGMENT_WORDS`] words instead of one per
    /// word).
    fn for_each_allocated(&self, f: impl Fn(&Word)) {
        let limit = self.allocated_words() as usize;
        let mut done = 0usize;
        for seg in self.segments.iter() {
            if done >= limit {
                break;
            }
            let Some(words) = seg.get() else { break };
            let take = (limit - done).min(SEGMENT_WORDS);
            for word in &words[..take] {
                f(word);
            }
            done += take;
        }
    }

    /// Roll every allocated word back to its durable copy (a full-system crash in
    /// the shared-cache model). The caller must guarantee quiescence: no other
    /// thread may be executing simulated instructions during the rollback.
    pub fn rollback_all(&self) {
        self.for_each_allocated(Word::rollback);
    }

    /// Persist every allocated word (used to establish a consistent initial state
    /// before an experiment starts injecting crashes). Quiescent, like
    /// [`rollback_all`](Arena::rollback_all).
    pub fn persist_all(&self) {
        self.for_each_allocated(Word::persist_now);
    }
}

impl std::fmt::Debug for Arena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Arena")
            .field("allocated_words", &self.allocated_words())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_identities_are_unique_and_nonzero() {
        let a = Arena::new(8);
        let b = Arena::new(8);
        assert_ne!(a.id(), 0);
        assert_ne!(b.id(), 0);
        assert_ne!(a.id(), b.id(), "two arenas must never share an identity");
    }

    #[test]
    fn alloc_returns_distinct_non_null_addresses() {
        let arena = Arena::new(8);
        let a = arena.alloc(1);
        let b = arena.alloc(1);
        assert!(!a.is_null());
        assert!(!b.is_null());
        assert_ne!(a, b);
    }

    #[test]
    fn alloc_does_not_straddle_lines_for_small_records() {
        let arena = Arena::new(8);
        // Allocate 3-word records repeatedly; none should straddle a line boundary.
        for _ in 0..100 {
            let a = arena.alloc(3);
            let start_line = a.line_base();
            let end_line = PAddr(a.0 + 2).line_base();
            assert_eq!(start_line, end_line, "3-word record straddles a cache line");
        }
    }

    #[test]
    fn large_allocations_may_span_lines() {
        let arena = Arena::new(8);
        let a = arena.alloc(100);
        // All 100 words must be addressable.
        for i in 0..100 {
            arena.word(a.offset(i)).store(i);
        }
        for i in 0..100 {
            assert_eq!(arena.word(a.offset(i)).load(), i);
        }
    }

    #[test]
    fn store_load_round_trip() {
        let arena = Arena::new(8);
        let a = arena.alloc(1);
        arena.word(a).store(123);
        assert_eq!(arena.word(a).load(), 123);
    }

    #[test]
    fn cas_succeeds_and_fails_correctly() {
        let arena = Arena::new(8);
        let a = arena.alloc(1);
        arena.word(a).store(5);
        assert_eq!(arena.word(a).compare_exchange(5, 6), Ok(5));
        assert_eq!(arena.word(a).compare_exchange(5, 7), Err(6));
        assert_eq!(arena.word(a).load(), 6);
    }

    #[test]
    fn rollback_reverts_unflushed_writes() {
        let arena = Arena::new(8);
        let a = arena.alloc(1);
        arena.word(a).store(1);
        arena.flush_line(a);
        arena.word(a).store(2);
        // Not flushed: a crash loses the 2.
        arena.rollback_all();
        assert_eq!(arena.word(a).load(), 1);
    }

    #[test]
    fn flush_line_persists_all_words_in_line() {
        let arena = Arena::new(8);
        let a = arena.alloc(8); // a whole line
        for i in 0..8 {
            arena.word(a.offset(i)).store(100 + i);
        }
        arena.flush_line(a.offset(3)); // flushing any word flushes the line
        arena.rollback_all();
        for i in 0..8 {
            assert_eq!(arena.word(a.offset(i)).load(), 100 + i);
        }
    }

    #[test]
    fn flush_on_line_zero_covers_the_reserved_words() {
        // Line 0 holds the reserved null word; flushing an address on that line
        // must persist the whole line without panicking or skipping words
        // (regression test for the old `.max(1)` / unclamped-bound mismatch).
        let arena = Arena::new(8);
        for i in 1..LINE_WORDS {
            arena.word(PAddr(i)).store(i * 10);
        }
        arena.flush_line(PAddr(1));
        arena.rollback_all();
        for i in 1..LINE_WORDS {
            assert_eq!(arena.word(PAddr(i)).load(), i * 10, "word {i} lost by line-0 flush");
        }
        // The null word itself stays durably zero.
        assert_eq!(arena.line_slice(PAddr(1))[0].durable(), 0);
    }

    #[test]
    fn flush_at_the_allocation_frontier_persists_the_whole_line() {
        // Regression test: a flush of a partially allocated line used to clamp
        // the range to `allocated_words()`, so words of the same record's line
        // allocated *later* started from a stale durable image. The range is
        // now the full physical line.
        let arena = Arena::new(LINE_WORDS); // next allocation starts a fresh line
        let a = arena.alloc(3); // frontier is now a+3, mid-line
        assert_eq!(a.0 % LINE_WORDS, 0, "test setup: record at line start");
        for i in 0..3 {
            arena.word(a.offset(i)).store(7 + i);
        }
        arena.flush_line(a); // must cover all 8 physical words, not just 3
        let line = arena.line_slice(a);
        for (i, word) in line.iter().enumerate() {
            let expected = if i < 3 { 7 + i as u64 } else { 0 };
            assert_eq!(word.durable(), expected, "word {i} of frontier line");
        }
        // Extending the allocation into the same line and crashing yields the
        // allocation contract: fresh words are durably zero.
        let b = arena.alloc(2);
        assert_eq!(b.line_base(), a.line_base(), "test setup: same line");
        arena.word(b).store(99); // never flushed
        arena.rollback_all();
        assert_eq!(arena.word(b).load(), 0, "unflushed fresh word rolls back to zero");
        assert_eq!(arena.word(a).load(), 7, "flushed word survives");
    }

    #[test]
    fn line_slice_is_line_aligned_and_full_length() {
        let arena = Arena::new(8);
        let a = arena.alloc(LINE_WORDS);
        for off in 0..LINE_WORDS {
            let slice = arena.line_slice(a.offset(off));
            assert_eq!(slice.len(), LINE_WORDS as usize);
            // Same physical line regardless of which word resolved it.
            assert!(std::ptr::eq(slice.as_ptr(), arena.line_slice(a).as_ptr()));
        }
    }

    #[test]
    fn persist_all_makes_everything_durable() {
        let arena = Arena::new(8);
        let a = arena.alloc(4);
        for i in 0..4 {
            arena.word(a.offset(i)).store(i + 1);
        }
        arena.persist_all();
        arena.rollback_all();
        for i in 0..4 {
            assert_eq!(arena.word(a.offset(i)).load(), i + 1);
        }
    }

    #[test]
    fn crossing_segment_boundary_works() {
        let arena = Arena::new(8);
        // Allocate past the first segment.
        let big = arena.alloc(SEGMENT_WORDS as u64 + 16);
        let last = big.offset(SEGMENT_WORDS as u64 + 15);
        arena.word(last).store(77);
        assert_eq!(arena.word(last).load(), 77);
    }

    #[test]
    fn multi_segment_rollback_round_trips() {
        // Quiescent crash/rollback across a segment boundary: persisted values
        // survive, unpersisted ones roll back, in both segments.
        let arena = Arena::new(8);
        let big = arena.alloc(SEGMENT_WORDS as u64 + 64);
        let in_seg0 = big;
        let in_seg1 = big.offset(SEGMENT_WORDS as u64 + 8);
        arena.word(in_seg0).store(1);
        arena.word(in_seg1).store(2);
        arena.persist_all();
        arena.word(in_seg0).store(10);
        arena.word(in_seg1).store(20);
        arena.rollback_all();
        assert_eq!(arena.word(in_seg0).load(), 1);
        assert_eq!(arena.word(in_seg1).load(), 2);
        arena.word(in_seg1).store(30);
        arena.flush_line(in_seg1);
        arena.rollback_all();
        assert_eq!(arena.word(in_seg1).load(), 30);
    }

    #[test]
    fn ensure_capacity_watermark_tracks_growth() {
        let arena = Arena::new(8);
        assert_eq!(arena.segments_ready.load(Ordering::Acquire), 1);
        let _ = arena.alloc(SEGMENT_WORDS as u64 * 2);
        assert!(arena.segments_ready.load(Ordering::Acquire) >= 3);
        // Allocating below the watermark must not move it.
        let ready = arena.segments_ready.load(Ordering::Acquire);
        let _ = arena.alloc(4);
        assert_eq!(arena.segments_ready.load(Ordering::Acquire), ready);
    }

    #[test]
    fn concurrent_allocation_yields_disjoint_ranges() {
        use std::sync::Arc;
        let arena = Arc::new(Arena::new(8));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let arena = Arc::clone(&arena);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| arena.alloc(2).0).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "allocations overlapped");
    }

    #[test]
    #[should_panic]
    fn zero_sized_alloc_panics() {
        let arena = Arena::new(8);
        let _ = arena.alloc(0);
    }

    #[test]
    fn zero_allocation_arena_creates_and_walks_no_segments() {
        // Regression test at the zero-allocation boundary: an arena holding no
        // words must not materialise segment 0 on `ensure_capacity(0)`, and the
        // rollback/persist walks must be empty rather than touching words that
        // were never allocated. (`Arena::new` always reserves the null word, so
        // the truly empty arena is built field-by-field here.)
        let mut segments = Vec::with_capacity(MAX_SEGMENTS);
        segments.resize_with(MAX_SEGMENTS, OnceLock::new);
        let arena = Arena {
            id: NEXT_ARENA_ID.fetch_add(1, Ordering::Relaxed),
            segments: segments.into_boxed_slice(),
            next: AtomicU64::new(0),
            segments_ready: AtomicUsize::new(0),
            grow_lock: Mutex::new(()),
        };
        arena.ensure_capacity(0);
        assert_eq!(
            arena.segments_ready.load(Ordering::Acquire),
            0,
            "ensure_capacity(0) must not raise the watermark"
        );
        assert!(arena.segment(0).is_none(), "segment 0 must not be created");
        // The quiescent walks are bounded by allocated_words() == 0: they must
        // complete without creating or visiting any segment.
        arena.rollback_all();
        arena.persist_all();
        assert!(arena.segment(0).is_none());
        assert_eq!(arena.allocated_words(), 0);
        // And the first real capacity request still works as before.
        arena.ensure_capacity(1);
        assert!(arena.segment(0).is_some());
        assert_eq!(arena.segments_ready.load(Ordering::Acquire), 1);
    }
}
