//! Persistent word addresses.
//!
//! The simulated persistent memory is an array of 64-bit words; a [`PAddr`] is an
//! index into that array. Address 0 is reserved (never handed out by the allocator)
//! so it doubles as a null pointer for linked data structures, exactly like a real
//! `nullptr` in persistent memory.

/// An address (word index) in the simulated persistent memory.
///
/// `PAddr` is `Copy` and fits in a single word, so data structures can store
/// addresses *inside* persistent words — this is how linked structures such as the
/// Michael–Scott queue are built on the simulator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PAddr(pub u64);

impl PAddr {
    /// The reserved null address (word index 0).
    pub const NULL: PAddr = PAddr(0);

    /// Returns `true` if this is the null address.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// The raw word index.
    #[inline]
    pub fn index(self) -> u64 {
        self.0
    }

    /// Address of the word `offset` words after `self`.
    ///
    /// Used to address fields of multi-word persistent records
    /// (e.g. `node.offset(1)` is the `next` field of a queue node).
    #[inline]
    pub fn offset(self, offset: u64) -> PAddr {
        debug_assert!(!self.is_null(), "offsetting the null PAddr");
        PAddr(self.0 + offset)
    }

    /// The first word of the cache line containing this address.
    #[inline]
    pub fn line_base(self) -> PAddr {
        PAddr(self.0 & !(crate::LINE_WORDS - 1))
    }

    /// Round-trips an address through a raw `u64`, e.g. after storing it inside a
    /// persistent word.
    #[inline]
    pub fn from_raw(raw: u64) -> PAddr {
        PAddr(raw)
    }

    /// The raw representation stored in persistent words.
    #[inline]
    pub fn to_raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Debug for PAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_null() {
            write!(f, "PAddr(NULL)")
        } else {
            write!(f, "PAddr({:#x})", self.0)
        }
    }
}

impl std::fmt::Display for PAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_zero() {
        assert!(PAddr::NULL.is_null());
        assert_eq!(PAddr::NULL.index(), 0);
        assert!(!PAddr(1).is_null());
    }

    #[test]
    fn offset_adds_words() {
        let a = PAddr(100);
        assert_eq!(a.offset(3).index(), 103);
        assert_eq!(a.offset(0), a);
    }

    #[test]
    fn line_base_masks_low_bits() {
        assert_eq!(PAddr(8).line_base(), PAddr(8));
        assert_eq!(PAddr(9).line_base(), PAddr(8));
        assert_eq!(PAddr(15).line_base(), PAddr(8));
        assert_eq!(PAddr(16).line_base(), PAddr(16));
    }

    #[test]
    fn raw_round_trip() {
        let a = PAddr(0xdead_beef);
        assert_eq!(PAddr::from_raw(a.to_raw()), a);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn offset_null_panics_in_debug() {
        let _ = PAddr::NULL.offset(1);
    }

    #[test]
    fn debug_formatting() {
        assert_eq!(format!("{:?}", PAddr::NULL), "PAddr(NULL)");
        assert_eq!(format!("{:?}", PAddr(16)), "PAddr(0x10)");
    }
}
